//! Dining philosophers on QSM mutexes — the classic deadlock-avoidance
//! demo, here used to show (a) `qsm::Mutex` guards composing lexically,
//! (b) the ordered-acquisition discipline that makes the composition safe,
//! and (c) the spin and blocking lock variants being interchangeable
//! behind the same `RawLock` interface.
//!
//! Each philosopher always picks up the lower-numbered fork first, so the
//! wait-for graph is acyclic and the run always completes.
//!
//! ```text
//! cargo run --release --example philosophers              # spin QSM forks
//! cargo run --release --example philosophers -- --blocking  # futex-parking forks
//! ```
//!
//! `--blocking` swaps the forks to [`parking::QsmMutexBlocking`] — same
//! queue discipline, but a contended philosopher parks on the futex
//! instead of spinning. With five threads on fewer than five cores the
//! blocking variant is the one that doesn't fight the host scheduler.

use parking::QsmMutexBlocking;
use qsm::{Mutex, RawLock};
use std::sync::Arc;

const PHILOSOPHERS: usize = 5;
const MEALS: u64 = 200;

fn dine<L: RawLock + Default + 'static>(variant: &str) {
    let forks: Arc<Vec<Mutex<u64, L>>> =
        Arc::new((0..PHILOSOPHERS).map(|_| Mutex::new(0)).collect());

    let diners: Vec<_> = (0..PHILOSOPHERS)
        .map(|seat| {
            let forks = Arc::clone(&forks);
            std::thread::spawn(move || {
                let left = seat;
                let right = (seat + 1) % PHILOSOPHERS;
                // Global order: lower index first — no circular wait.
                let (first, second) = if left < right { (left, right) } else { (right, left) };
                for _ in 0..MEALS {
                    let mut f1 = forks[first].lock();
                    let mut f2 = forks[second].lock();
                    *f1 += 1; // each fork counts the meals it served
                    *f2 += 1;
                }
                seat
            })
        })
        .collect();

    for d in diners {
        let seat = d.join().unwrap();
        println!("philosopher {seat} finished {MEALS} meals ({variant} forks)");
    }

    let total: u64 = forks.iter().map(|f| *f.lock()).sum();
    // Every meal uses exactly two forks.
    assert_eq!(total, 2 * MEALS * PHILOSOPHERS as u64);
    println!("philosophers OK: {total} fork uses, no deadlock, no lost update");
}

fn main() {
    let mut blocking = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--blocking" => blocking = true,
            other => {
                eprintln!("unrecognized argument {other:?}");
                eprintln!("usage: philosophers [--blocking]");
                std::process::exit(2);
            }
        }
    }
    if blocking {
        dine::<QsmMutexBlocking>("blocking");
    } else {
        dine::<qsm::Qsm>("spin");
    }
}
