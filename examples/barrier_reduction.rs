//! Iterative barrier-synchronized computation: a Jacobi-style smoothing of
//! a 1-D array, the motivating workload for scalable barriers (one barrier
//! episode per sweep, computation partitioned across threads).
//!
//! Each sweep replaces every interior element with the average of its
//! neighbours; the barrier guarantees sweep k is complete everywhere before
//! sweep k+1 reads it. A wrong barrier makes the result diverge from the
//! sequential reference — which this example checks.
//!
//! ```text
//! cargo run --release --example barrier_reduction
//! ```

use qsm::QsmBarrier;
use std::sync::Arc;

const N: usize = 1024;
const THREADS: usize = 4;
const SWEEPS: usize = 50;

/// One Jacobi sweep of `src` into `dst` over `range`.
fn sweep(src: &[f64], dst: &mut [f64], lo: usize, hi: usize) {
    for i in lo..hi {
        if i == 0 || i == N - 1 {
            dst[i] = src[i];
        } else {
            dst[i] = 0.5 * (src[i - 1] + src[i + 1]);
        }
    }
}

/// Sequential reference.
fn reference(mut a: Vec<f64>) -> Vec<f64> {
    let mut b = a.clone();
    for _ in 0..SWEEPS {
        sweep(&a, &mut b, 0, N);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

fn main() {
    // Initial condition: a spike in the middle.
    let mut init = vec![0.0f64; N];
    init[N / 2] = 1.0;
    init[0] = 0.25;
    init[N - 1] = 0.75;
    let expected = reference(init.clone());

    // Two buffers shared across threads; the barrier alternates roles.
    // SAFETY invariant: thread t only writes its own [lo, hi) slice of the
    // destination buffer each sweep, and the barrier separates sweeps.
    struct Buffers(std::cell::UnsafeCell<(Vec<f64>, Vec<f64>)>);
    unsafe impl Sync for Buffers {}
    let buffers = Arc::new(Buffers(std::cell::UnsafeCell::new((
        init.clone(),
        init.clone(),
    ))));
    let barrier = Arc::new(QsmBarrier::new(THREADS));

    let chunk = N.div_ceil(THREADS);
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let buffers = Arc::clone(&buffers);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(N);
                for s in 0..SWEEPS {
                    // SAFETY: disjoint write ranges per thread; the barrier
                    // below orders whole sweeps, so no reader observes a
                    // partially written destination.
                    let (a, b) = unsafe { &mut *buffers.0.get() };
                    let (src, dst) = if s % 2 == 0 { (&*a, b) } else { (&*b, a) };
                    sweep(src, dst, lo, hi);
                    barrier.wait();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let (a, b) = unsafe { &*buffers.0.get() };
    let result = if SWEEPS.is_multiple_of(2) { a } else { b };
    let max_err = result
        .iter()
        .zip(&expected)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_err < 1e-12,
        "parallel result diverged from sequential reference by {max_err}"
    );
    println!(
        "barrier_reduction OK: {SWEEPS} sweeps x {N} cells on {THREADS} threads, max error {max_err:.2e}"
    );
}
