//! Quickstart: the three services of the Queueing Synchronization
//! Mechanism on real hardware — lock, barrier, eventcount.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qsm::{EventCount, Mutex, QsmBarrier};
use std::sync::Arc;

fn main() {
    const THREADS: usize = 4;
    const ROUNDS: u64 = 1000;

    // 1. Mutual exclusion: a QSM-protected counter.
    let counter: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));

    // 2. Barrier episodes: everyone finishes round k before round k+1.
    let barrier = Arc::new(QsmBarrier::new(THREADS));

    // 3. Condition synchronization: thread 0 announces completion of each
    //    phase through an eventcount; a monitor thread awaits it.
    let phases = Arc::new(EventCount::new());

    let monitor = {
        let phases = Arc::clone(&phases);
        std::thread::spawn(move || {
            let seen = phases.await_at_least(2);
            println!("monitor: observed phase count {seen}");
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|id| {
            let counter = Arc::clone(&counter);
            let barrier = Arc::clone(&barrier);
            let phases = Arc::clone(&phases);
            std::thread::spawn(move || {
                // Phase 1: contended increments.
                for _ in 0..ROUNDS {
                    *counter.lock() += 1;
                }
                if barrier.wait().is_leader() {
                    phases.advance();
                    println!("phase 1 complete: counter = {}", *counter.lock());
                }
                // Every thread verifies phase 1's total — possible only
                // because the barrier ordered the phases. A second barrier
                // keeps phase-2 increments from racing these checks.
                assert_eq!(*counter.lock(), THREADS as u64 * ROUNDS);
                barrier.wait();
                // Phase 2.
                for _ in 0..ROUNDS {
                    *counter.lock() += 1;
                }
                if barrier.wait().is_leader() {
                    phases.advance();
                    println!("phase 2 complete: counter = {}", *counter.lock());
                }
                id
            })
        })
        .collect();

    for w in workers {
        w.join().unwrap();
    }
    monitor.join().unwrap();

    let total = *counter.lock();
    assert_eq!(total, 2 * THREADS as u64 * ROUNDS);
    println!("quickstart OK: {total} increments, protected by {}", counter.raw_name());
}
