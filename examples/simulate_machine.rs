//! Drive the simulated 1991 multiprocessor directly: run one lock kernel on
//! the bus machine and on the NUMA machine, and print the traffic ledger
//! the figures are built from.
//!
//! ```text
//! cargo run --release --example simulate_machine [lock-name] [nprocs]
//! ```
//! e.g. `cargo run --release --example simulate_machine mcs 16`

use kernels::locks::{all_locks, lock_by_name};
use memsim::{Machine, MachineParams};
use workloads::csbench::{run, CsConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "qsm".to_string());
    let nprocs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    let Some(lock) = lock_by_name(&name) else {
        eprintln!(
            "unknown lock '{name}'. available: {}",
            all_locks()
                .iter()
                .map(|l| l.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };

    let cfg = CsConfig {
        hold: 20,
        think: 0,
        jitter: false,
        ..CsConfig::new(nprocs, 10)
    };

    for (label, machine) in [
        ("bus", Machine::new(MachineParams::bus_1991(nprocs))),
        ("numa", Machine::new(MachineParams::numa_1991(nprocs))),
    ] {
        let r = run(&machine, lock.as_ref(), &cfg).expect("simulation failed");
        println!("== {name} on the {label} machine, P = {nprocs} ==");
        println!("  critical sections        {}", cfg.total_cs());
        println!("  elapsed cycles           {}", r.total_cycles);
        println!("  lock passing time        {:.1} cycles/CS", r.passing_time);
        println!("  interconnect txns / CS   {:.2}", r.transactions_per_cs);
        println!("  cache hit rate           {:.1}%", r.metrics.hit_rate() * 100.0);
        println!("  invalidations            {}", r.metrics.invalidations);
        println!("  watchpoint wakeups       {}", r.metrics.wakeups());
        let spin: u64 = r
            .metrics
            .per_proc
            .iter()
            .map(|p| p.spin_wait_cycles)
            .sum();
        println!("  total spin-wait cycles   {spin}");
        println!();
    }
}
