//! A bounded producer/consumer pipeline built **only** from eventcounts and
//! a sequencer — no mutex anywhere. This is the workload the QSM paper's
//! condition-synchronization service exists for: multiple producers take
//! turns through the sequencer, the consumer paces itself on the `produced`
//! count, and producers respect ring capacity via the `consumed` count.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```

use qsm::{EventCount, Sequencer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CAPACITY: usize = 8;
const PRODUCERS: usize = 3;
const ITEMS_PER_PRODUCER: u64 = 2000;
const TOTAL: u64 = PRODUCERS as u64 * ITEMS_PER_PRODUCER;

struct Ring {
    cells: Vec<AtomicU64>,
    turns: Sequencer,
    produced: EventCount,
    consumed: EventCount,
}

impl Ring {
    fn new() -> Self {
        Ring {
            cells: (0..CAPACITY).map(|_| AtomicU64::new(0)).collect(),
            turns: Sequencer::new(),
            produced: EventCount::new(),
            consumed: EventCount::new(),
        }
    }

    /// Publish one item; returns its sequence number.
    fn produce(&self, item: u64) -> u64 {
        // The sequencer serializes producers without a lock.
        let seq = self.turns.ticket();
        // Respect capacity: the cell we reuse must have been consumed.
        if seq >= CAPACITY as u64 {
            self.consumed.await_at_least(seq - CAPACITY as u64 + 1);
        }
        // Wait our turn so cells fill strictly in order even with
        // multiple producers racing.
        self.produced.await_at_least(seq);
        self.cells[(seq as usize) % CAPACITY].store(item, Ordering::Relaxed);
        self.produced.advance();
        seq
    }

    /// Retrieve the item with sequence number `seq`.
    fn consume(&self, seq: u64) -> u64 {
        self.produced.await_at_least(seq + 1);
        let item = self.cells[(seq as usize) % CAPACITY].load(Ordering::Relaxed);
        self.consumed.advance();
        item
    }
}

fn main() {
    let ring = Arc::new(Ring::new());

    let consumer = {
        let ring = Arc::clone(&ring);
        std::thread::spawn(move || {
            let mut sum = 0u64;
            for seq in 0..TOTAL {
                sum += ring.consume(seq);
            }
            sum
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|id| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..ITEMS_PER_PRODUCER {
                    // Item value encodes producer and index so the checksum
                    // below verifies nothing was lost or duplicated.
                    ring.produce(id as u64 * ITEMS_PER_PRODUCER + i + 1);
                }
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    let sum = consumer.join().unwrap();
    let expected: u64 = (1..=TOTAL).sum();
    assert_eq!(sum, expected, "pipeline lost or duplicated items");
    println!("pipeline OK: {TOTAL} items through a {CAPACITY}-slot ring, checksum {sum}");
}
