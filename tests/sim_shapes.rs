//! Reproduction-shape assertions: the qualitative claims of the
//! reconstructed evaluation, asserted as inequalities the way EXPERIMENTS.md
//! reports them. These are the tests that fail if the simulator or an
//! algorithm regresses in a way that would silently change the figures.

use kernels::locks::{lock_by_name, LockKernel};
use memsim::{Machine, MachineParams};
use workloads::barrierbench::{self, BarrierConfig};
use workloads::csbench::{self, CsConfig};
use workloads::fairness::{self, FairnessConfig};
use workloads::sweeps::MachineKind;

fn passing_time(kind: MachineKind, lock: &dyn LockKernel, p: usize) -> f64 {
    let machine = kind.machine(p);
    let cfg = CsConfig {
        think: 0,
        jitter: false,
        hold: 20,
        ..CsConfig::new(p, 8)
    };
    csbench::run(&machine, lock, &cfg).unwrap().passing_time
}

/// fig1's shape: TAS degrades linearly with P while QSM stays flat, and
/// the gap at P=32 is an order of magnitude.
#[test]
fn fig1_shape_tas_linear_qsm_flat() {
    let tas = lock_by_name("tas").unwrap();
    let qsm = lock_by_name("qsm").unwrap();
    let tas8 = passing_time(MachineKind::Bus, tas.as_ref(), 8);
    let tas32 = passing_time(MachineKind::Bus, tas.as_ref(), 32);
    let qsm8 = passing_time(MachineKind::Bus, qsm.as_ref(), 8);
    let qsm32 = passing_time(MachineKind::Bus, qsm.as_ref(), 32);
    assert!(
        tas32 > 3.0 * tas8,
        "tas must degrade ~linearly: {tas8:.0} @8 vs {tas32:.0} @32"
    );
    assert!(
        qsm32 < 1.2 * qsm8,
        "qsm must stay flat: {qsm8:.0} @8 vs {qsm32:.0} @32"
    );
    assert!(
        tas32 > 10.0 * qsm32,
        "headline gap at P=32: tas {tas32:.0} vs qsm {qsm32:.0}"
    );
}

/// fig2's shape: the same ordering holds on the NUMA machine.
#[test]
fn fig2_shape_holds_on_numa() {
    let tas = lock_by_name("tas").unwrap();
    let qsm = lock_by_name("qsm").unwrap();
    let mcs = lock_by_name("mcs").unwrap();
    let tas32 = passing_time(MachineKind::Numa, tas.as_ref(), 32);
    let qsm32 = passing_time(MachineKind::Numa, qsm.as_ref(), 32);
    let mcs32 = passing_time(MachineKind::Numa, mcs.as_ref(), 32);
    // The NUMA gap is smaller than the bus gap (module service is cheaper
    // than a bus slot relative to the hand-off) but still decisive: ~3x.
    assert!(tas32 > 2.5 * qsm32, "tas {tas32:.0} vs qsm {qsm32:.0}");
    assert!(
        qsm32 < 1.5 * mcs32 && mcs32 < 1.5 * qsm32,
        "qsm {qsm32:.0} and mcs {mcs32:.0} must ride together"
    );
}

/// fig3's shape: traffic per critical section — TAS unbounded, TTAS grows,
/// queue locks constant.
#[test]
fn fig3_shape_traffic_ordering() {
    let traffic = |name: &str, p: usize| {
        let lock = lock_by_name(name).unwrap();
        let machine = Machine::new(MachineParams::bus_1991(p));
        let cfg = CsConfig {
            think: 0,
            jitter: false,
            hold: 20,
            ..CsConfig::new(p, 8)
        };
        csbench::run(&machine, lock.as_ref(), &cfg)
            .unwrap()
            .transactions_per_cs
    };
    let tas8 = traffic("tas", 8);
    let tas32 = traffic("tas", 32);
    let qsm8 = traffic("qsm", 8);
    let qsm32 = traffic("qsm", 32);
    assert!(tas32 > 2.5 * tas8, "tas traffic grows: {tas8:.1} -> {tas32:.1}");
    assert!(
        qsm32 < qsm8 * 1.3,
        "qsm traffic ~constant: {qsm8:.1} -> {qsm32:.1}"
    );
    assert!(tas32 > 5.0 * qsm32);
}

/// fig4's shape: a crossover exists — under no contention the simple locks
/// are no worse (lower constants), under heavy hold times the queue locks
/// win on throughput.
#[test]
fn fig4_shape_crossover() {
    let throughput = |name: &str, hold: u64| {
        let lock = lock_by_name(name).unwrap();
        let machine = Machine::new(MachineParams::bus_1991(16));
        let cfg = CsConfig {
            hold,
            think: 100,
            jitter: true,
            ..CsConfig::new(16, 10)
        };
        csbench::run(&machine, lock.as_ref(), &cfg).unwrap().throughput
    };
    // Heavy contention: queue lock clearly ahead of plain tas.
    assert!(throughput("qsm", 256) > 1.2 * throughput("tas", 256));
    // Uncontended-ish single processor: tas acquire+release is cheaper.
    let machine = Machine::new(MachineParams::bus_1991(1));
    let tas = lock_by_name("tas").unwrap();
    let qsm = lock_by_name("qsm").unwrap();
    let tas_lat = csbench::uncontended_latency(&machine, tas.as_ref(), 300);
    let qsm_lat = csbench::uncontended_latency(&machine, qsm.as_ref(), 300);
    assert!(
        tas_lat < qsm_lat,
        "uncontended constants favour tas: {tas_lat:.1} vs {qsm_lat:.1}"
    );
}

/// fig5/fig6's shape: central barrier linear in P; on NUMA the log-depth
/// barriers beat it decisively at scale.
#[test]
fn fig56_shape_barrier_scaling() {
    let episode = |kind: MachineKind, name: &str, p: usize| {
        let barrier = kernels::barriers::barrier_by_name(name).unwrap();
        let machine = kind.machine(p);
        barrierbench::run(
            &machine,
            barrier.as_ref(),
            &BarrierConfig {
                nprocs: p,
                episodes: 10,
                work: 50,
            },
        )
        .unwrap()
        .episode_time
    };
    let c8 = episode(MachineKind::Bus, "central", 8);
    let c48 = episode(MachineKind::Bus, "central", 48);
    assert!(c48 > 4.0 * c8, "central must serialize: {c8:.0} @8 vs {c48:.0} @48");

    // Every log-depth barrier beats the central counter's hot spot on the
    // NUMA machine at scale, and grows sublinearly in P.
    let central48 = episode(MachineKind::Numa, "central", 48);
    for name in [
        "combining-tree",
        "mcs-tree",
        "qsm-tree",
        "tournament",
        "dissemination",
    ] {
        let at12 = episode(MachineKind::Numa, name, 12);
        let at48 = episode(MachineKind::Numa, name, 48);
        assert!(
            at48 < central48,
            "{name} ({at48:.0}) must beat central ({central48:.0}) on numa @48"
        );
        // combining-tree and qsm-tree release by broadcast (every waiter
        // re-reads one epoch word), a linear tail that the tree-release
        // barriers avoid — allow them a looser growth bound.
        let bound = if name.ends_with("tree") && name != "mcs-tree" {
            3.5
        } else {
            2.5
        };
        assert!(
            at48 < bound * at12,
            "{name} must grow sublinearly: {at12:.0} @12 vs {at48:.0} @48 (4x procs)"
        );
    }
}

/// table2's shape: queue locks are perfectly fair; TTAS admits starvation.
#[test]
fn table2_shape_fairness() {
    let machine = Machine::new(MachineParams::bus_1991(8));
    let cfg = FairnessConfig {
        nprocs: 8,
        total_cs: 96,
        hold: 30,
    };
    for name in ["ticket", "anderson", "clh", "mcs", "qsm"] {
        let lock = lock_by_name(name).unwrap();
        let r = fairness::run(&machine, lock.as_ref(), &cfg).unwrap();
        assert!(r.jain > 0.95, "{name} jain {}", r.jain);
        assert!(r.max_denial <= 16, "{name} denial {}", r.max_denial);
    }
    let ttas = fairness::run(&machine, lock_by_name("ttas").unwrap().as_ref(), &cfg).unwrap();
    assert!(
        ttas.max_denial > 16,
        "ttas should admit long denial runs, got {}",
        ttas.max_denial
    );
}

/// fig7c's property: the QSM fast path pays for itself — uncontended
/// acquisition is cheaper than MCS's swap-based one in RMW count terms, and
/// no slower contended.
#[test]
fn fig7_shape_fast_path() {
    let machine = Machine::new(MachineParams::bus_1991(1));
    let qsm = lock_by_name("qsm").unwrap();
    let lat_solo = csbench::uncontended_latency(&machine, qsm.as_ref(), 300);
    assert!(lat_solo < 60.0, "uncontended qsm {lat_solo:.1} too slow");
    let qsm16 = passing_time(MachineKind::Bus, qsm.as_ref(), 16);
    let mcs16 = passing_time(MachineKind::Bus, lock_by_name("mcs").unwrap().as_ref(), 16);
    assert!(qsm16 < 1.25 * mcs16, "contended qsm {qsm16:.0} vs mcs {mcs16:.0}");
}

/// Everything above is deterministic: a full trial repeated bit-for-bit.
#[test]
fn whole_trials_are_deterministic() {
    let qsm = lock_by_name("qsm").unwrap();
    let a = passing_time(MachineKind::Bus, qsm.as_ref(), 16);
    let b = passing_time(MachineKind::Bus, qsm.as_ref(), 16);
    assert_eq!(a, b);
    let c = passing_time(MachineKind::Numa, qsm.as_ref(), 16);
    let d = passing_time(MachineKind::Numa, qsm.as_ref(), 16);
    assert_eq!(c, d);
}
