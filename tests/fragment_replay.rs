//! Fragment-parallel replay determinism suite: record-then-replay must be
//! **byte-identical** to the plain sequential run at every layer — machine
//! reports, rendered figures, and exported Perfetto timelines — at every
//! worker count.
//!
//! Tests that toggle the `SYNCMECH_REPLAY_*` environment knobs serialize
//! on a process-local lock: the knobs are read freshly per run, and other
//! test binaries run in their own processes, so the lock is the only
//! coordination needed.

use bench::figures;
use bench::trace_export::{export_trace, WORKLOADS};
use bench::Opts;
use memsim::{FragmentReplayer, Machine, MachineParams, Proc};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use trace::{EventClass, EventKind, Tracer};

/// Guards all `SYNCMECH_REPLAY_*` mutation in this test binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

struct EnvGuard<'a> {
    _lock: MutexGuard<'a, ()>,
}

impl EnvGuard<'_> {
    fn set(fragment: Option<&str>, workers: Option<&str>) -> Self {
        let lock = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        match fragment {
            Some(v) => std::env::set_var("SYNCMECH_REPLAY_FRAGMENT", v),
            None => std::env::remove_var("SYNCMECH_REPLAY_FRAGMENT"),
        }
        match workers {
            Some(v) => std::env::set_var("SYNCMECH_REPLAY_WORKERS", v),
            None => std::env::remove_var("SYNCMECH_REPLAY_WORKERS"),
        }
        EnvGuard { _lock: lock }
    }
}

impl Drop for EnvGuard<'_> {
    fn drop(&mut self) {
        std::env::remove_var("SYNCMECH_REPLAY_FRAGMENT");
        std::env::remove_var("SYNCMECH_REPLAY_WORKERS");
    }
}

/// A figure-representative workload: contended RMWs, watchpoint spins,
/// futex park/wake, local delays, and closure-side trace events.
fn mixed_body(p: &mut Proc) {
    p.trace_event(EventKind::EpisodeBegin { id: p.pid() as u64 });
    if p.pid() == 0 {
        p.delay(400);
        p.store(1, 1);
        p.futex_wake(1, usize::MAX);
        p.store(0, 1);
    } else {
        while p.futex_wait(1, 0) == 0 {}
        p.spin_until(0, 1);
    }
    for i in 0..30 {
        p.fetch_add(2, 1);
        p.delay((p.pid() as u64 * 11 + i) % 17);
    }
    p.trace_event(EventKind::EpisodeEnd { id: p.pid() as u64 });
}

#[test]
fn machine_reports_are_identical_for_golden_worker_counts() {
    let _env = EnvGuard::set(None, None);
    let machine = Machine::new(MachineParams::bus_1991(6));
    let plain = machine.run(6, 3, mixed_body).unwrap();
    let rec = machine.run_recorded(6, vec![0; 3], 250, mixed_body).unwrap();
    assert!(rec.fragments() >= 3, "want several fragments to distribute");
    assert_eq!(rec.report().metrics, plain.metrics);
    assert_eq!(rec.report().memory, plain.memory);
    for workers in [1, 2, 8] {
        let rep = FragmentReplayer::new(&rec, workers).run();
        assert_eq!(rep.metrics, plain.metrics, "{workers} workers");
        assert_eq!(rep.memory, plain.memory, "{workers} workers");
    }
}

#[test]
fn snapshot_restore_round_trips_mid_run() {
    // Snapshot → restore → continue must equal the uninterrupted run from
    // every captured boundary, on both machine topologies.
    let _env = EnvGuard::set(None, None);
    for machine in [
        Machine::new(MachineParams::bus_1991(4)),
        Machine::new(MachineParams::numa_1991(4)),
    ] {
        let plain = machine.run(4, 3, mixed_body).unwrap();
        let rec = machine.run_recorded(4, vec![0; 3], 300, mixed_body).unwrap();
        for i in 0..rec.fragments() {
            let resumed = rec.resume(i);
            assert_eq!(resumed.metrics, plain.metrics, "snapshot {i}");
            assert_eq!(resumed.memory, plain.memory, "snapshot {i}");
        }
    }
}

#[test]
fn stitched_traces_match_a_sequential_traced_run() {
    let _env = EnvGuard::set(None, None);
    let nprocs = 6;
    let seq_tracer = Tracer::full(nprocs);
    let plain = Machine::new(MachineParams::bus_1991(nprocs))
        .with_tracer(Arc::clone(&seq_tracer))
        .run(nprocs, 3, mixed_body)
        .unwrap();

    let machine = Machine::new(MachineParams::bus_1991(nprocs));
    let rec = machine
        .run_recorded(nprocs, vec![0; 3], 250, mixed_body)
        .unwrap();
    for workers in [1, 2, 8] {
        let stitched = Tracer::full(nprocs);
        let rep = FragmentReplayer::new(&rec, workers).run_traced(Some(&stitched));
        assert_eq!(rep.metrics, plain.metrics, "{workers} workers");
        assert_eq!(rep.memory, plain.memory, "{workers} workers");
        for pid in 0..nprocs {
            assert_eq!(
                stitched.events(pid),
                seq_tracer.events(pid),
                "{workers} workers: p{pid} event stream diverged"
            );
            for class in EventClass::ALL {
                assert_eq!(
                    stitched.count(pid, class),
                    seq_tracer.count(pid, class),
                    "{workers} workers: p{pid} {class:?} count diverged"
                );
            }
        }
        // The Perfetto export is a pure function of the tracer contents;
        // byte-equality here is what `--trace-out` stitching promises.
        assert_eq!(
            trace::chrome::export_tracer(&stitched, "fragment-replay"),
            trace::chrome::export_tracer(&seq_tracer, "fragment-replay"),
            "{workers} workers: exported timeline diverged"
        );
    }
}

#[test]
fn env_routed_runs_match_plain_runs() {
    let machine = Machine::new(MachineParams::bus_1991(4));
    let plain = {
        let _env = EnvGuard::set(None, None);
        machine.run(4, 3, mixed_body).unwrap()
    };
    for workers in ["1", "2", "8"] {
        let _env = EnvGuard::set(Some("200"), Some(workers));
        let routed = machine.run(4, 3, mixed_body).unwrap();
        assert_eq!(routed.metrics, plain.metrics, "{workers} workers");
        assert_eq!(routed.memory, plain.memory, "{workers} workers");
    }
}

#[test]
fn env_routed_traced_runs_populate_the_tracer_identically() {
    let nprocs = 4;
    let seq_tracer = Tracer::full(nprocs);
    let plain = {
        let _env = EnvGuard::set(None, None);
        Machine::new(MachineParams::bus_1991(nprocs))
            .with_tracer(Arc::clone(&seq_tracer))
            .run(nprocs, 3, mixed_body)
            .unwrap()
    };

    let _env = EnvGuard::set(Some("300"), Some("2"));
    let frag_tracer = Tracer::full(nprocs);
    let routed = Machine::new(MachineParams::bus_1991(nprocs))
        .with_tracer(Arc::clone(&frag_tracer))
        .run(nprocs, 3, mixed_body)
        .unwrap();
    assert_eq!(routed.metrics, plain.metrics);
    for pid in 0..nprocs {
        assert_eq!(frag_tracer.events(pid), seq_tracer.events(pid), "p{pid}");
    }
}

#[test]
fn figures_are_byte_identical_with_fragment_replay() {
    // The slow single-run figures the tentpole targets, rendered in quick
    // mode: plain vs fragment-parallel must agree byte for byte at every
    // worker count (the golden-figures test pins the plain render to the
    // committed goldens, so these renders are pinned transitively).
    let opts = Opts {
        csv: false,
        quick: true,
    };
    for id in ["fig1", "fig3", "table2"] {
        let figure = figures::by_id(id).unwrap();
        let plain = {
            let _env = EnvGuard::set(None, None);
            (figure.render)(&opts)
        };
        for workers in ["1", "2", "8"] {
            let _env = EnvGuard::set(Some("2000"), Some(workers));
            let frag = (figure.render)(&opts);
            assert_eq!(frag, plain, "{id} diverged with {workers} replay workers");
        }
    }
}

#[test]
fn golden_traces_are_unchanged_under_fragment_replay() {
    // The parallel --trace-out path: exports with fragment replay on must
    // match the committed golden traces byte for byte.
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_traces");
    for workload in WORKLOADS {
        let golden = std::fs::read_to_string(golden_dir.join(format!("{workload}.json")))
            .expect("golden trace file");
        for workers in ["1", "2", "8"] {
            let _env = EnvGuard::set(Some("1500"), Some(workers));
            let exported = export_trace(workload, true);
            assert_eq!(
                exported, golden,
                "{workload} trace diverged with {workers} replay workers"
            );
        }
    }
}

#[test]
fn sweeps_delegation_reports_the_effective_fragment() {
    {
        let _env = EnvGuard::set(Some("12345"), None);
        assert_eq!(workloads::sweeps::replay_fragment(), Some(12_345));
    }
    let _env = EnvGuard::set(None, None);
    assert_eq!(workloads::sweeps::replay_fragment(), None);
}
