//! Worker-count independence of parallel DPOR exploration.
//!
//! `Explorer::check_parallel` must return a byte-identical `Verdict` —
//! schedule, message and `Stats` included — for any worker count, because
//! the fan-out enumerates depth-bounded prefixes serially and merges
//! worker results in task order (see `explorer::fan_out`). The CI
//! `interleave-dpor` job re-checks the same property through the CLI by
//! diffing `--workers 1` against `SYNCMECH_DPOR_WORKERS=8`; this test pins
//! it at the library level for both a passing and a violating program, so
//! the tier-1 suite catches a merge-order regression without CI.

use interleave::harness::{check_lock, check_lock_parallel};
use interleave::{DporMode, Explorer, Program};
use kernels::locks::qsm::QsmLock;
use kernels::{SyncCtx, Word};
use std::sync::Arc;

const WORKERS: [usize; 3] = [1, 2, 8];

fn lost_update(nthreads: usize) -> Program {
    Program::new(nthreads, 1, |ctx| {
        let v = ctx.load(0);
        ctx.store(0, v + 1);
    })
}

fn renders(explorer: &Explorer, program: &Program, goal: Word) -> Vec<String> {
    WORKERS
        .iter()
        .map(|&w| {
            let v = explorer.check_parallel(
                program,
                |mem| {
                    if mem[0] == goal {
                        Ok(())
                    } else {
                        Err(format!("lost update: {}", mem[0]))
                    }
                },
                w,
            );
            format!("{v:?}")
        })
        .collect()
}

#[test]
fn violating_verdict_is_byte_identical_across_worker_counts() {
    for mode in [DporMode::Sleep, DporMode::Source, DporMode::Tree] {
        let explorer = Explorer::exhaustive().with_dpor(mode);
        let out = renders(&explorer, &lost_update(3), 3);
        assert!(out[0].contains("Violation"), "{mode}: expected a violation, got {}", out[0]);
        assert_eq!(out[0], out[1], "{mode}: workers 1 vs 2 diverged");
        assert_eq!(out[0], out[2], "{mode}: workers 1 vs 8 diverged");
    }
}

#[test]
fn passing_verdict_and_stats_are_byte_identical_across_worker_counts() {
    let program = Program::new(2, 2, |ctx| {
        let v = ctx.swap(0, 1);
        ctx.store(1, v);
    });
    for mode in [DporMode::Sleep, DporMode::Source, DporMode::Tree] {
        let explorer = Explorer::exhaustive().with_dpor(mode);
        let out: Vec<String> = WORKERS
            .iter()
            .map(|&w| format!("{:?}", explorer.check_parallel(&program, |_| Ok(()), w)))
            .collect();
        assert!(out[0].contains("Passed"), "{mode}: {}", out[0]);
        assert_eq!(out[0], out[1], "{mode}: workers 1 vs 2 diverged");
        assert_eq!(out[0], out[2], "{mode}: workers 1 vs 8 diverged");
    }
}

#[test]
fn harness_parallel_check_matches_itself_for_a_real_lock() {
    let out: Vec<String> = WORKERS
        .iter()
        .map(|&w| {
            let v = check_lock_parallel(Arc::new(QsmLock), 3, 1, Explorer::exhaustive(), w);
            format!("{v:?}")
        })
        .collect();
    assert!(out[0].contains("Passed"), "qsm 3x1: {}", out[0]);
    assert_eq!(out[0], out[1]);
    assert_eq!(out[0], out[2]);
    // The serial path is a different algorithm (no fan-out) and may explore
    // a different number of runs; it must still agree on the verdict class.
    let serial = check_lock(Arc::new(QsmLock), 3, 1, Explorer::exhaustive());
    serial.expect_pass("qsm 3x1 serial");
}
