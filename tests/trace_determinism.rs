//! Trace-layer regression tests: the exported Chrome trace JSON is a pure
//! function of (seed, workload) — byte-identical across runs and against a
//! committed golden — and tracing itself is timing-invisible: attaching a
//! tracer must not move a single simulated cycle.
//!
//! To re-bless the trace golden after an *intentional* format change:
//!
//! ```text
//! SYNCMECH_BLESS=1 cargo test --release --test trace_determinism
//! ```
//!
//! The goldens live in `tests/golden_traces/` (not `tests/golden/`, whose
//! orphan check admits only figure-binary names).

use bench::trace_export::{export_trace, WORKLOADS};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_traces")
        .join(format!("{name}.json"))
}

#[test]
fn exported_traces_are_byte_identical_across_runs() {
    for workload in WORKLOADS {
        let a = export_trace(workload, true);
        let b = export_trace(workload, true);
        assert_eq!(a, b, "{workload}: trace export is not deterministic");
    }
}

#[test]
fn exported_traces_match_golden_files() {
    let bless = std::env::var("SYNCMECH_BLESS").map(|v| v == "1").unwrap_or(false);
    for workload in WORKLOADS {
        let rendered = export_trace(workload, true);
        let path = golden_path(workload);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "reading {}: {e} (run with SYNCMECH_BLESS=1 to create)",
                path.display()
            )
        });
        assert_eq!(
            rendered,
            golden,
            "{workload}: trace drifted from {} (SYNCMECH_BLESS=1 to re-bless)",
            path.display()
        );
    }
}

#[test]
fn exported_traces_validate_with_one_track_per_processor() {
    // The fig9 oversubscription workload: 8 simulated processors.
    let json = export_trace("oversub", true);
    let stats = trace::chrome::validate(&json).expect("oversub trace validates");
    assert_eq!(stats.tracks, 8, "one Perfetto track per simulated processor");
    assert!(stats.spans > 0, "lock wait/hold spans must be present");
    // The always-park lock on an oversubscribed machine must show wake
    // flow arrows (phase s/f lines).
    assert!(json.contains("\"ph\":\"s\""), "missing flow-start events");
    assert!(json.contains("\"ph\":\"f\""), "missing flow-end events");

    let bus = export_trace("bus", true);
    let stats = trace::chrome::validate(&bus).expect("bus trace validates");
    assert_eq!(stats.tracks, 4);
}

#[test]
fn tracing_is_timing_invisible() {
    // Same oversubscribed workload with and without a tracer attached:
    // every metric — total cycles included — must be bit-identical. This is
    // the integration-level half of the zero-overhead guarantee; the other
    // half is the golden-figures test running with SYNCMECH_TRACE unset.
    use workloads::csbench::{self, CsConfig};

    let cores = 4;
    let nprocs = 2 * cores;
    let cfg = CsConfig::new(nprocs, 4);
    let lock = kernels::locks::lock_by_name("qsm-block-park").unwrap();

    let plain = csbench::run(
        &workloads::oversub::oversub_machine(nprocs, cores),
        &*lock,
        &cfg,
    )
    .unwrap();

    let tracer = trace::Tracer::full(nprocs);
    let machine =
        workloads::oversub::oversub_machine(nprocs, cores).with_tracer(Arc::clone(&tracer));
    let traced = csbench::run(&machine, &*lock, &cfg).unwrap();

    assert_eq!(plain.total_cycles, traced.total_cycles);
    assert_eq!(plain.metrics, traced.metrics);
    // And the tracer did actually observe the run.
    assert!(tracer.class_total(trace::EventClass::FutexPark) > 0);
    assert_eq!(
        tracer.class_total(trace::EventClass::FutexPark),
        traced.metrics.futex_parks()
    );
}
