//! Fuzz-layer regressions: seeded bugs the randomized scheduler must
//! rediscover on a fixed budget, plus the cross-backend differential
//! smoke.
//!
//! `tests/analysis_seeded_bugs.rs` proves the *exhaustive* explorer
//! catches each seeded bug; this suite proves the *sampling* path —
//! `interleave::Fuzzer` with PCT priorities — finds the same bugs within
//! a fixed seed and iteration budget, shrinks the failing schedule to (at
//! most) the hand-minimized length, and reproduces byte-identically from
//! the seed. Everything here is deterministic: a failure is a real
//! regression, never flake.

use interleave::{Explorer, Fuzzer, Program, ReplayEnd, Strategy, Verdict};
use kernels::SyncCtx;
use workloads::differential::{differential_lock, DiffConfig};

/// The wake-before-publish flag handshake from the seeded-bug suite: the
/// waker fires its futex wake while the queue is still empty, then
/// publishes; a waiter that read the stale flag parks on a compare that
/// still succeeds and sleeps forever.
fn flag_handshake_program(fixed: bool) -> Program {
    Program::new(2, 1, move |ctx| {
        if ctx.pid() == 0 {
            let mut cur = ctx.load(0);
            while cur == 0 {
                cur = ctx.futex_wait(0, cur);
            }
        } else if fixed {
            ctx.store(0, 1);
            ctx.futex_wake(0, usize::MAX);
        } else {
            ctx.futex_wake(0, usize::MAX); // bug: wake into an empty queue...
            ctx.store(0, 1); // ...then publish, too late for a parked waiter.
        }
    })
}

/// The eventcount whose `advance` forgets its wake, also from the seeded
/// suite: two waiters park on the count, the advancer bumps it and never
/// wakes anyone.
fn forgotten_wake_program() -> Program {
    Program::new(3, 1, |ctx| {
        if ctx.pid() < 2 {
            loop {
                let cur = ctx.load(0);
                if cur >= 1 {
                    break;
                }
                ctx.futex_wait(0, cur);
            }
        } else {
            ctx.fetch_add(0, 1); // advance, but never wake
        }
    })
}

/// The hand-minimized reproduction of the handshake bug: t0 reads the
/// stale flag, t1 fires the wake into the empty queue, t0 parks — three
/// scheduled steps; everything after is forced.
const HANDSHAKE_MINIMAL_LEN: usize = 3;

#[test]
fn pct_finds_wake_before_publish_within_budget() {
    let fuzzer = Fuzzer::new(1991, 200, Strategy::Pct { change_points: 3 });
    let report = fuzzer.run(&flag_handshake_program(false), |_| Ok(()));
    let parked = match &report.verdict {
        Verdict::LostWakeup { parked, .. } => parked.clone(),
        other => panic!("PCT must lose the wakeup within 200 schedules, got {other:?}"),
    };
    assert_eq!(parked, vec![(0, 0)], "the waiter sleeps on word 0");
    assert!(report.failing_iter.is_some());

    // The shrinker must reach (at most) the hand-minimized schedule, and
    // the shrunk schedule must replay to the same verdict class.
    let shrunk = report.shrunk.expect("shrinking is on by default");
    assert!(
        shrunk.schedule.len() <= HANDSHAKE_MINIMAL_LEN,
        "shrunk schedule {:?} is longer than the hand-minimal {HANDSHAKE_MINIMAL_LEN} steps",
        shrunk.schedule
    );
    let replay = fuzzer
        .explorer()
        .replay(&flag_handshake_program(false), &shrunk.schedule);
    assert!(
        matches!(replay.end, ReplayEnd::LostWakeup(ref p) if *p == parked),
        "shrunk schedule must reproduce the lost wakeup, got {:?}",
        replay.end
    );
}

#[test]
fn uniform_also_finds_wake_before_publish() {
    let fuzzer = Fuzzer::new(7, 500, Strategy::Uniform);
    let report = fuzzer.run(&flag_handshake_program(false), |_| Ok(()));
    assert!(
        matches!(report.verdict, Verdict::LostWakeup { .. }),
        "uniform random walk must also find the bug, got {:?}",
        report.verdict
    );
}

#[test]
fn fuzzing_the_fixed_handshake_passes_its_budget() {
    let fuzzer = Fuzzer::new(1991, 200, Strategy::Pct { change_points: 3 });
    fuzzer
        .run(&flag_handshake_program(true), |_| Ok(()))
        .expect_pass("fixed flag handshake under fuzzing");
}

#[test]
fn pct_finds_the_forgotten_eventcount_wake() {
    let fuzzer = Fuzzer::new(1991, 300, Strategy::Pct { change_points: 3 });
    let report = fuzzer.run(&forgotten_wake_program(), |_| Ok(()));
    match &report.verdict {
        Verdict::LostWakeup { parked, .. } => {
            // However the schedule fell, every parked thread sleeps on the
            // count word.
            assert!(!parked.is_empty());
            assert!(parked.iter().all(|&(_, addr)| addr == 0));
        }
        other => panic!("forgotten wake must strand the waiters, got {other:?}"),
    }
}

/// Same seed, same strategy, same program → byte-identical verdict and
/// shrunk schedule. This is what makes a fuzz failure in CI a replayable
/// artifact rather than a flake report.
#[test]
fn fuzz_failures_are_reproducible_from_the_seed() {
    for strategy in [Strategy::Uniform, Strategy::Pct { change_points: 3 }] {
        let run = || {
            let fuzzer = Fuzzer::new(1991, 500, strategy);
            fuzzer.run(&flag_handshake_program(false), |_| Ok(()))
        };
        let (a, b) = (run(), run());
        assert_eq!(
            format!("{:?}", a.verdict),
            format!("{:?}", b.verdict),
            "verdicts diverged under {strategy}"
        );
        assert_eq!(a.failing_iter, b.failing_iter);
        assert_eq!(
            a.shrunk.map(|s| s.schedule),
            b.shrunk.map(|s| s.schedule),
            "shrunk schedules diverged under {strategy}"
        );
    }
}

/// A parked waiter at preemption bound 0 is a lost wakeup, not a deadlock
/// — the end-to-end version of the explorer-level regression. The
/// forgotten-wake program parks its waiters without needing a single
/// preemption (each thread runs to its park voluntarily), so even the
/// strictest bound must reach — and correctly classify — the hang.
#[test]
fn bounded_explorer_classifies_the_park_hang_as_lost_wakeup() {
    for explorer in [Explorer::bounded(0), Explorer::bounded(0).with_bypass_bound(1)] {
        let verdict = explorer.check(&forgotten_wake_program(), |_| Ok(()));
        assert!(
            matches!(verdict, Verdict::LostWakeup { .. }),
            "bounded(0) must classify the park hang as LostWakeup, got {verdict:?}"
        );
    }
}

/// The differential harness agrees across all four backends for healthy
/// registry locks — including a blocking variant, which exercises the
/// futex park/wake accounting on the simulator and real threads.
#[test]
fn differential_backends_agree_on_registry_locks() {
    for name in ["qsm", "mcs", "qsm-block"] {
        let report = differential_lock(name, &DiffConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.all_agree(),
            "{name} backends disagreed:\n{}",
            report.render()
        );
    }
}
