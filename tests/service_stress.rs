//! Real-thread stress of the sharded lock service: churn far more
//! distinct keys through one `LockService` than the slab will ever hold
//! live, with enough cross-thread overlap to force real parking, then
//! assert the teardown invariants the service promises:
//!
//!   - the table drains to zero live keys (every attach was detached),
//!   - slab capacity stayed bounded by peak liveness, not by the number
//!     of distinct keys (slots were recycled),
//!   - the service's **lot-local** futex ledger balances *exactly*:
//!     every park this service caused was matched by a wake and a
//!     resume, with no `since()` delta and no slack for other parkers
//!     in the process ([`service::LockService::futex_totals`] reads the
//!     table's own lot, so the counts are this run's and nothing else's),
//!   - the telemetry counters account for every single acquisition.
//!
//! The semaphore phase still parks through the process-global lot, so
//! it keeps the delta-based balance check and shares this ONE `#[test]`
//! fn — a second concurrently-running test that parks would make its
//! `since()` delta meaningless.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn million_key_churn_drains_and_balances() {
    let threads = 8usize;
    // 8 threads x 128k keys + the shared band = >1M distinct keys.
    let private_keys = 128 * 1024u64;
    let shared_keys = 64u64;
    let shared_rounds = 2_000u64;

    let svc = Arc::new(service::LockService::with_shards(64));
    let hits = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for id in 0..threads as u64 {
            let svc = Arc::clone(&svc);
            let hits = Arc::clone(&hits);
            s.spawn(move || {
                // Private band: a fresh key per request. Nothing ever
                // contends here, so this measures pure attach/detach
                // churn and slot recycling.
                let base = 1 + id * private_keys;
                for k in 0..private_keys {
                    let key = parking::futex::mix64(base + k);
                    let _g = svc.lock(key);
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                // Shared band: a small hot set all threads hammer, so
                // the slow path actually parks and wakes.
                for i in 0..shared_rounds {
                    let key = u64::MAX - (i.wrapping_mul(id + 1) % shared_keys);
                    let g = svc.lock(key);
                    hits.fetch_add(1, Ordering::Relaxed);
                    std::hint::black_box(&g);
                }
            });
        }
    });

    let total = threads as u64 * (private_keys + shared_rounds);
    assert_eq!(hits.load(Ordering::Relaxed), total);
    assert!(
        threads as u64 * private_keys >= 1_000_000,
        "stress must churn at least a million distinct keys"
    );

    let stats = svc.stats();
    assert_eq!(stats.live, 0, "all keys must detach at teardown: {stats:?}");
    // Capacity tracks peak concurrent liveness (rounded up to whole
    // 64-slot slabs per shard), not the million distinct keys churned.
    assert!(
        stats.capacity <= stats.peak_live + 64 * stats.shards,
        "slab capacity {} not bounded by peak liveness {} ({} shards)",
        stats.capacity,
        stats.peak_live,
        stats.shards
    );
    assert!(
        stats.capacity < 100_000,
        "capacity {} suggests slots leaked instead of recycling",
        stats.capacity
    );

    // Lot-local ledger: the service's table parks on its own lot, so
    // these are exactly this run's events — no baseline subtraction, no
    // tolerance for unrelated parkers.
    let futex = svc.futex_totals();
    assert!(
        futex.balanced(),
        "futex accounting unbalanced at teardown: parks {} wakes {} resumes {}",
        futex.parks,
        futex.wakes,
        futex.resumes
    );
    assert_eq!(futex.parks, futex.resumes, "every park resumed exactly once");

    // Telemetry (default `counters` mode) must account for every one of
    // the million-plus acquisitions, and fast/parked must partition
    // consistently.
    let snap = svc.metrics_snapshot();
    assert_eq!(snap.acquires, total, "telemetry lost acquisitions");
    assert!(
        snap.fast_path + snap.parked <= snap.acquires,
        "fast {} + parked {} exceed acquires {}",
        snap.fast_path,
        snap.parked,
        snap.acquires
    );
    // Every drained slot lifetime returned its slot to a free list; with
    // over a million single-holder keys that is most of the traffic.
    assert!(
        snap.slot_recycles >= threads as u64 * private_keys && snap.slot_recycles <= total,
        "slot recycles {} out of range for {} acquisitions",
        snap.slot_recycles,
        total
    );

    // The waiting-array semaphore shares the accounting: overflowing a
    // small array with more waiters than slots must still balance.
    let before_sem = parking::futex::totals();
    let sem = Arc::new(service::WaitingArraySemaphore::new(2, 4));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let sem = Arc::clone(&sem);
            s.spawn(move || {
                for _ in 0..2_000 {
                    sem.acquire();
                    std::hint::black_box(&sem);
                    sem.release();
                }
            });
        }
    });
    assert_eq!(sem.permits(), 2);
    let futex = parking::futex::totals().since(&before_sem);
    assert!(
        futex.balanced(),
        "semaphore futex accounting unbalanced: parks {} wakes {} resumes {}",
        futex.parks,
        futex.wakes,
        futex.resumes
    );
}
