//! Real-thread stress of the sharded lock service: churn far more
//! distinct keys through one `LockService` than the slab will ever hold
//! live, with enough cross-thread overlap to force real parking, then
//! assert the teardown invariants the service promises:
//!
//!   - the table drains to zero live keys (every attach was detached),
//!   - slab capacity stayed bounded by peak liveness, not by the number
//!     of distinct keys (slots were recycled),
//!   - machine-wide futex accounting balances: every park was matched
//!     by a wake and a resume (`parks == wakes == resumes`).
//!
//! The futex counters are process-global, so everything here lives in
//! ONE `#[test]` fn — a second concurrently-running test that parks
//! would make the `since()` delta meaningless.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn million_key_churn_drains_and_balances() {
    let before = parking::futex::totals();

    let threads = 8usize;
    // 8 threads x 128k keys + the shared band = >1M distinct keys.
    let private_keys = 128 * 1024u64;
    let shared_keys = 64u64;
    let shared_rounds = 2_000u64;

    let svc = Arc::new(service::LockService::with_shards(64));
    let hits = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for id in 0..threads as u64 {
            let svc = Arc::clone(&svc);
            let hits = Arc::clone(&hits);
            s.spawn(move || {
                // Private band: a fresh key per request. Nothing ever
                // contends here, so this measures pure attach/detach
                // churn and slot recycling.
                let base = 1 + id * private_keys;
                for k in 0..private_keys {
                    let key = parking::futex::mix64(base + k);
                    let _g = svc.lock(key);
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                // Shared band: a small hot set all threads hammer, so
                // the slow path actually parks and wakes.
                for i in 0..shared_rounds {
                    let key = u64::MAX - (i.wrapping_mul(id + 1) % shared_keys);
                    let g = svc.lock(key);
                    hits.fetch_add(1, Ordering::Relaxed);
                    std::hint::black_box(&g);
                }
            });
        }
    });

    let total = threads as u64 * (private_keys + shared_rounds);
    assert_eq!(hits.load(Ordering::Relaxed), total);
    assert!(
        threads as u64 * private_keys >= 1_000_000,
        "stress must churn at least a million distinct keys"
    );

    let stats = svc.stats();
    assert_eq!(stats.live, 0, "all keys must detach at teardown: {stats:?}");
    // Capacity tracks peak concurrent liveness (rounded up to whole
    // 64-slot slabs per shard), not the million distinct keys churned.
    assert!(
        stats.capacity <= stats.peak_live + 64 * stats.shards,
        "slab capacity {} not bounded by peak liveness {} ({} shards)",
        stats.capacity,
        stats.peak_live,
        stats.shards
    );
    assert!(
        stats.capacity < 100_000,
        "capacity {} suggests slots leaked instead of recycling",
        stats.capacity
    );

    let futex = parking::futex::totals().since(&before);
    assert!(
        futex.balanced(),
        "futex accounting unbalanced at teardown: parks {} wakes {} resumes {}",
        futex.parks,
        futex.wakes,
        futex.resumes
    );

    // The waiting-array semaphore shares the accounting: overflowing a
    // small array with more waiters than slots must still balance.
    let before_sem = parking::futex::totals();
    let sem = Arc::new(service::WaitingArraySemaphore::new(2, 4));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let sem = Arc::clone(&sem);
            s.spawn(move || {
                for _ in 0..2_000 {
                    sem.acquire();
                    std::hint::black_box(&sem);
                    sem.release();
                }
            });
        }
    });
    assert_eq!(sem.permits(), 2);
    let futex = parking::futex::totals().since(&before_sem);
    assert!(
        futex.balanced(),
        "semaphore futex accounting unbalanced: parks {} wakes {} resumes {}",
        futex.parks,
        futex.wakes,
        futex.resumes
    );
}
