//! Golden-output regression test: every deterministic figure, rendered in
//! quick mode, must match its committed golden file **byte for byte**.
//!
//! This is the cheap always-on version of the guarantee the perf work was
//! done under ("not a single simulated cycle may change"): the full-mode
//! outputs are committed under `results/` and take seconds to regenerate,
//! while the quick sweeps exercise the same engine, kernels, and sweep
//! fan-out in well under a second. Any engine change that alters simulated
//! timing — however subtly — shows up here as a diff.
//!
//! To re-bless after an *intentional* output change:
//!
//! ```text
//! SYNCMECH_BLESS=1 cargo test --release --test golden_figures
//! ```
//!
//! fig8 is excluded: it measures real host wall-clock and is the one
//! legitimately nondeterministic figure.

use bench::figures::FIGURES;
use bench::Opts;
use std::path::PathBuf;

fn golden_path(binary: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{binary}.txt"))
}

#[test]
fn quick_mode_figures_match_golden_files() {
    let opts = Opts {
        csv: false,
        quick: true,
    };
    let bless = std::env::var("SYNCMECH_BLESS").map(|v| v == "1").unwrap_or(false);
    let mut failures = Vec::new();
    for figure in FIGURES.iter().filter(|f| f.deterministic) {
        let rendered = (figure.render)(&opts);
        let path = golden_path(figure.binary);
        if bless {
            std::fs::write(&path, &rendered)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e} (run with SYNCMECH_BLESS=1 to create)", path.display()));
        if rendered != golden {
            // Find the first differing line for a readable failure.
            let diff_line = rendered
                .lines()
                .zip(golden.lines())
                .position(|(a, b)| a != b)
                .map(|i| {
                    format!(
                        "first diff at line {}:\n  golden: {}\n  actual: {}",
                        i + 1,
                        golden.lines().nth(i).unwrap_or(""),
                        rendered.lines().nth(i).unwrap_or("")
                    )
                })
                .unwrap_or_else(|| "outputs differ in length only".to_string());
            failures.push(format!("{}: {diff_line}", figure.id));
        }
    }
    assert!(
        failures.is_empty(),
        "simulated output drifted from the committed goldens — if intentional, \
         re-bless with SYNCMECH_BLESS=1 and regenerate results/:\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_directory_has_no_orphans() {
    // Every committed golden corresponds to a registered deterministic
    // figure — catches a renamed binary leaving a stale golden behind.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in std::fs::read_dir(&dir).expect("golden dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".txt") else {
            panic!("unexpected file in tests/golden: {name}");
        };
        assert!(
            FIGURES.iter().any(|f| f.deterministic && f.binary == stem),
            "tests/golden/{name} does not match any deterministic figure"
        );
    }
}
