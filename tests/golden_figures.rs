//! Golden-output regression test: every deterministic figure, rendered in
//! quick mode, must match its committed golden file **byte for byte**.
//!
//! This is the cheap always-on version of the guarantee the perf work was
//! done under ("not a single simulated cycle may change"): the full-mode
//! outputs are committed under `results/` and take seconds to regenerate,
//! while the quick sweeps exercise the same engine, kernels, and sweep
//! fan-out in well under a second. Any engine change that alters simulated
//! timing — however subtly — shows up here as a diff.
//!
//! To re-bless after an *intentional* output change:
//!
//! ```text
//! SYNCMECH_BLESS=1 cargo test --release --test golden_figures
//! ```
//!
//! fig8 is excluded: it measures real host wall-clock and is the one
//! legitimately nondeterministic figure.

use bench::figures::FIGURES;
use bench::Opts;
use std::path::PathBuf;

fn golden_path(binary: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{binary}.txt"))
}

/// A minimal unified diff (3 context lines, `@@ -a,b +c,d @@` hunk
/// headers) between two small texts — what the failure message prints
/// instead of both blobs. Line-level LCS; figure files are a few hundred
/// lines at most, so the quadratic table is immaterial.
fn unified_diff(old: &str, new: &str) -> String {
    const CONTEXT: usize = 3;
    #[derive(Clone, Copy)]
    enum Edit {
        Keep(usize),
        Del(usize),
        Add(usize),
    }
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let (n, m) = (a.len(), b.len());
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut edits = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            edits.push(Edit::Keep(i));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            edits.push(Edit::Del(i));
            i += 1;
        } else {
            edits.push(Edit::Add(j));
            j += 1;
        }
    }
    edits.extend((i..n).map(Edit::Del));
    edits.extend((j..m).map(Edit::Add));

    let changed: Vec<usize> = edits
        .iter()
        .enumerate()
        .filter(|(_, e)| !matches!(e, Edit::Keep(..)))
        .map(|(k, _)| k)
        .collect();
    if changed.is_empty() {
        // Same lines, different bytes: only a trailing-newline difference
        // survives the `lines()` view.
        return "  (line contents identical; trailing newline differs)".to_string();
    }

    // Track the old/new line index reached before each edit, for headers.
    let mut pos = Vec::with_capacity(edits.len() + 1);
    let (mut oi, mut nj) = (0usize, 0usize);
    for e in &edits {
        pos.push((oi, nj));
        match e {
            Edit::Keep(..) => {
                oi += 1;
                nj += 1;
            }
            Edit::Del(_) => oi += 1,
            Edit::Add(_) => nj += 1,
        }
    }
    pos.push((oi, nj));

    let mut out = String::new();
    let mut k = 0;
    while k < changed.len() {
        let first = changed[k];
        let mut last = first;
        k += 1;
        // Merge changes whose context windows touch into one hunk.
        while k < changed.len() && changed[k] - last <= 2 * CONTEXT + 1 {
            last = changed[k];
            k += 1;
        }
        let lo = first.saturating_sub(CONTEXT);
        let hi = (last + CONTEXT + 1).min(edits.len());
        let old_count = pos[hi].0 - pos[lo].0;
        let new_count = pos[hi].1 - pos[lo].1;
        out.push_str(&format!(
            "  @@ -{},{} +{},{} @@\n",
            pos[lo].0 + 1,
            old_count,
            pos[lo].1 + 1,
            new_count
        ));
        for e in &edits[lo..hi] {
            let (sign, line) = match e {
                Edit::Keep(x) => (' ', a[*x]),
                Edit::Del(x) => ('-', a[*x]),
                Edit::Add(y) => ('+', b[*y]),
            };
            out.push_str(&format!("  {sign}{line}\n"));
        }
    }
    out.pop(); // drop the final newline; the caller joins failures
    out
}

#[test]
fn quick_mode_figures_match_golden_files() {
    let opts = Opts {
        csv: false,
        quick: true,
    };
    let bless = std::env::var("SYNCMECH_BLESS").map(|v| v == "1").unwrap_or(false);
    let mut failures = Vec::new();
    for figure in FIGURES.iter().filter(|f| f.deterministic) {
        let rendered = (figure.render)(&opts);
        let path = golden_path(figure.binary);
        if bless {
            std::fs::write(&path, &rendered)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e} (run with SYNCMECH_BLESS=1 to create)", path.display()));
        if rendered != golden {
            failures.push(format!(
                "{}: golden (-) vs actual (+):\n{}",
                figure.id,
                unified_diff(&golden, &rendered)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "simulated output drifted from the committed goldens — if intentional, \
         re-bless with SYNCMECH_BLESS=1 and regenerate results/:\n{}",
        failures.join("\n")
    );
}

#[test]
fn unified_diff_prints_hunks_with_context() {
    let old: String = (1..=30).map(|i| format!("line {i}\n")).collect();
    let new = old.replace("line 10\n", "line ten\n").replace("line 25\n", "");
    let d = unified_diff(&old, &new);
    // First hunk: one changed line at 10 with three lines of context.
    assert!(d.contains("@@ -7,7 +7,7 @@"), "got:\n{d}");
    assert!(d.contains("-line 10"), "got:\n{d}");
    assert!(d.contains("+line ten"), "got:\n{d}");
    // Second hunk: a pure deletion, far enough away to be its own hunk.
    assert!(d.contains("@@ -22,7 +22,6 @@"), "got:\n{d}");
    assert!(d.contains("-line 25"), "got:\n{d}");
    // Lines far from any change are elided.
    assert!(!d.contains("line 3\n"), "far context not elided:\n{d}");
    // A trailing-newline-only difference is still reported.
    let d2 = unified_diff("a\nb\n", "a\nb");
    assert!(d2.contains("trailing newline"), "got:\n{d2}");
}

#[test]
fn golden_directory_has_no_orphans() {
    // Every committed golden corresponds to a registered deterministic
    // figure — catches a renamed binary leaving a stale golden behind.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in std::fs::read_dir(&dir).expect("golden dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".txt") else {
            panic!("unexpected file in tests/golden: {name}");
        };
        assert!(
            FIGURES.iter().any(|f| f.deterministic && f.binary == stem),
            "tests/golden/{name} does not match any deterministic figure"
        );
    }
}
