//! Exhaustive coverage for the blocking programs that were fuzz-only
//! before optimal DPOR (ROADMAP item: "3-4-thread blocking QSM and
//! eventcount programs").
//!
//! Two program families, each in a fixed and a seeded-bug variant:
//!
//! * **blocking QSM handoff** — the grant/eventcount lock
//!   ([`interleave::corpus::BlockingGrantLock`], the two-word reduction of
//!   the paper's queueing mechanism) plus the registry's full
//!   `qsm-block-park`; the bug is the classic wake-before-advance release;
//! * **eventcount wraparound** — advance across `u64::MAX` with
//!   signed-distance compare; the bug forgets the wake.
//!
//! Every fixed variant must pass exhaustively and every seeded bug must
//! yield its exact verdict class under all three reduction modes — the
//! park/unpark-aware enabled sets mean `LostWakeup` hangs are maximal
//! executions no reduction may prune. The run-count assertions pin the
//! tentpole's reason to exist: source sets explore strictly fewer runs on
//! every fully-explorable suite program, and the 4-thread eventcount
//! search that exhausts sleep-set DFS's budget completes exhaustively
//! under source sets (numbers in EXPERIMENTS.md).

use interleave::corpus::{blocking_grant_program, corpus_program, eventcount_wrap_program};
use interleave::{DporMode, Explorer, Verdict, VerdictClass};

const MODES: [DporMode; 3] = [DporMode::Sleep, DporMode::Source, DporMode::Tree];

type Suite = Vec<(&'static str, Box<dyn Fn() -> interleave::Program>)>;

fn pass(_mem: &[kernels::Word]) -> Result<(), String> {
    Ok(())
}

#[test]
fn fixed_blocking_grant_three_threads_passes_under_every_mode() {
    for mode in MODES {
        let v = Explorer::exhaustive()
            .with_dpor(mode)
            .with_max_runs(200_000)
            .check(&blocking_grant_program(3, 1, true), pass);
        v.expect_pass("blocking-grant 3x1");
        assert!(v.stats().complete, "{mode}: search must be exhaustive");
    }
}

#[test]
fn broken_blocking_grant_three_threads_loses_a_wakeup_under_every_mode() {
    for mode in MODES {
        let v = Explorer::exhaustive()
            .with_dpor(mode)
            .with_max_runs(200_000)
            .check(&blocking_grant_program(3, 1, false), pass);
        assert_eq!(
            VerdictClass::of(&v),
            VerdictClass::LostWakeup,
            "{mode}: wake-before-advance must strand a waiter, got {v:?}"
        );
    }
}

#[test]
fn broken_blocking_grant_four_threads_loses_a_wakeup_under_every_mode() {
    for mode in MODES {
        let v = Explorer::exhaustive()
            .with_dpor(mode)
            .with_max_runs(200_000)
            .check(&blocking_grant_program(4, 1, false), pass);
        assert_eq!(
            VerdictClass::of(&v),
            VerdictClass::LostWakeup,
            "{mode}: wake-before-advance must strand a waiter, got {v:?}"
        );
    }
}

#[test]
fn fixed_eventcount_wrap_passes_under_every_mode_for_3_and_4_threads() {
    for nthreads in [3, 4] {
        for mode in MODES {
            let v = Explorer::exhaustive()
                .with_dpor(mode)
                .with_max_runs(200_000)
                .check(&eventcount_wrap_program(nthreads, true), pass);
            v.expect_pass("eventcount wrap, fixed");
            assert!(v.stats().complete, "{nthreads}t {mode}: must be exhaustive");
        }
    }
}

#[test]
fn broken_eventcount_wrap_loses_a_wakeup_under_every_mode_for_3_and_4_threads() {
    for nthreads in [3, 4] {
        for mode in MODES {
            let v = Explorer::exhaustive()
                .with_dpor(mode)
                .with_max_runs(200_000)
                .check(&eventcount_wrap_program(nthreads, false), pass);
            assert_eq!(
                VerdictClass::of(&v),
                VerdictClass::LostWakeup,
                "{nthreads}t {mode}: missed wake must strand the awaiters, got {v:?}"
            );
        }
    }
}

/// The acceptance benchmark. On every program of the seeded-bug suite
/// whose search runs to completion, source sets explore strictly fewer
/// executions than sleep sets (and so does tree mode); on the buggy
/// variants the search stops at the first violation, so the comparison
/// relaxes to "never more" — a two-thread bug both modes hit on run 2 is
/// a tie, not a regression. EXPERIMENTS.md records the factors.
#[test]
fn source_and_tree_never_explore_more_runs_than_sleep_on_the_suite() {
    let strict: Suite = vec![
        ("blocking-grant-3-fixed", Box::new(|| blocking_grant_program(3, 1, true))),
        ("eventcount-wrap-3-fixed", Box::new(|| eventcount_wrap_program(3, true))),
        ("eventcount-wrap-4-fixed", Box::new(|| eventcount_wrap_program(4, true))),
        (
            "check-then-set",
            Box::new(|| corpus_program("check-then-set").unwrap().0),
        ),
    ];
    let bugs: Suite = vec![
        (
            "wake-before-publish",
            Box::new(|| corpus_program("wake-before-publish").unwrap().0),
        ),
        ("blocking-grant-3-bug", Box::new(|| blocking_grant_program(3, 1, false))),
        ("eventcount-wrap-3-bug", Box::new(|| eventcount_wrap_program(3, false))),
    ];
    let runs = |name: &str, build: &dyn Fn() -> interleave::Program, mode| {
        let v = Explorer::exhaustive()
            .with_dpor(mode)
            .with_max_runs(200_000)
            .check(&build(), pass);
        assert!(v.stats().complete, "{name} {mode}: search must finish");
        v.stats().runs
    };
    for (name, build) in &strict {
        let sleep = runs(name, build, DporMode::Sleep);
        let source = runs(name, build, DporMode::Source);
        let tree = runs(name, build, DporMode::Tree);
        assert!(
            source < sleep,
            "{name}: source must explore strictly fewer runs ({source} vs {sleep})"
        );
        assert!(
            tree < sleep,
            "{name}: tree must explore strictly fewer runs ({tree} vs {sleep})"
        );
    }
    for (name, build) in &bugs {
        let sleep = {
            let v = Explorer::exhaustive()
                .with_dpor(DporMode::Sleep)
                .with_max_runs(200_000)
                .check(&build(), pass);
            v.stats().runs
        };
        for mode in [DporMode::Source, DporMode::Tree] {
            let v = Explorer::exhaustive()
                .with_dpor(mode)
                .with_max_runs(200_000)
                .check(&build(), pass);
            assert!(
                v.stats().runs <= sleep,
                "{name}: {mode} took more runs to the bug ({} vs {sleep})",
                v.stats().runs
            );
        }
    }
}

/// The flagship scaling result: under one shared 8k-run budget, the
/// 4-thread eventcount-wraparound search is unfinishable for sleep-set
/// DFS (it needs 10 364 runs; measured in EXPERIMENTS.md) while source
/// sets and wakeup trees complete the whole search in 5 480. The same
/// inversion holds on the real blocking QSM lock at sizes no test budget
/// reaches: 3-thread `qsm-block-park` is 47 738 vs 3 098 runs (15×), and
/// the 4-thread lock exceeds a 4-minute wall-clock timeout under sleep
/// sets before source mode even becomes the bottleneck.
#[test]
fn four_thread_eventcount_completes_under_source_but_not_sleep() {
    const BUDGET: usize = 8_000;
    let explore = |mode| {
        Explorer::exhaustive()
            .with_dpor(mode)
            .with_max_runs(BUDGET)
            .check(&eventcount_wrap_program(4, true), pass)
    };
    match explore(DporMode::Sleep) {
        Verdict::Passed(s) => assert!(
            !s.complete,
            "sleep-set DFS finishing 4-thread eventcount wrap in {BUDGET} runs would be news"
        ),
        other => panic!("fixed eventcount wrap is correct; got {other:?}"),
    }
    for mode in [DporMode::Source, DporMode::Tree] {
        let v = explore(mode);
        v.expect_pass("eventcount wrap 4t");
        assert!(
            v.stats().complete,
            "{mode} must finish the search within the budget sleep exhausts: {:?}",
            v.stats()
        );
    }
}

/// Prints the run-count table for DESIGN.md / EXPERIMENTS.md. Ignored:
/// run with `-- --ignored --nocapture measure` to refresh the numbers.
#[test]
#[ignore = "measurement helper, prints the mode comparison table"]
fn measure() {
    let suite: Suite = vec![
        ("blocking-grant-3-fixed", Box::new(|| blocking_grant_program(3, 1, true))),
        ("blocking-grant-4-fixed", Box::new(|| blocking_grant_program(4, 1, true))),
        ("blocking-grant-3-bug", Box::new(|| blocking_grant_program(3, 1, false))),
        ("blocking-grant-4-bug", Box::new(|| blocking_grant_program(4, 1, false))),
        ("eventcount-wrap-3-fixed", Box::new(|| eventcount_wrap_program(3, true))),
        ("eventcount-wrap-4-fixed", Box::new(|| eventcount_wrap_program(4, true))),
        ("eventcount-wrap-3-bug", Box::new(|| eventcount_wrap_program(3, false))),
        ("eventcount-wrap-4-bug", Box::new(|| eventcount_wrap_program(4, false))),
        (
            "check-then-set",
            Box::new(|| corpus_program("check-then-set").unwrap().0),
        ),
        (
            "wake-before-publish",
            Box::new(|| corpus_program("wake-before-publish").unwrap().0),
        ),
        (
            "lost-update",
            Box::new(|| corpus_program("lost-update").unwrap().0),
        ),
    ];
    println!("program | sleep | source | tree");
    for (name, build) in suite {
        let run = |mode| {
            let v = Explorer::exhaustive()
                .with_dpor(mode)
                .with_max_runs(200_000)
                .check(&build(), pass);
            let s = v.stats();
            format!(
                "{}{}",
                s.runs,
                if s.complete { "" } else { "+" }
            )
        };
        println!(
            "{name} | {} | {} | {}",
            run(DporMode::Sleep),
            run(DporMode::Source),
            run(DporMode::Tree)
        );
    }
}
