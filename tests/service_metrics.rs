//! Integration tests for the service telemetry subsystem: snapshot
//! readers racing live writers, exact accounting at quiescence, the
//! exporters round-tripping through their own validators, and the stall
//! watchdog firing exactly once on a genuine stall while staying silent
//! on a slow-but-live workload.
//!
//! Everything here builds its *own* `LockService` with an explicit
//! metrics mode, so the process-global registry and other tests'
//! environment never leak in.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// 8 writer threads hammer a small hot key band while 2 readers snapshot
/// continuously: every snapshot must be monotone over the previous one,
/// and at quiescence the counters must account for every acquisition and
/// the lot-local futex ledger must balance exactly.
#[test]
fn snapshots_stay_monotone_under_writers_and_exact_at_quiesce() {
    let threads = 8u64;
    let rounds = 4_000u64;
    // Sample every contended wait: on a small host the hammer phase may
    // contend rarely (threads serialize), and the point here is the
    // concurrent-snapshot machinery, not the sampling rate.
    let svc = Arc::new(service::LockService::with_metrics_mode(
        64,
        service::MetricsMode::Sampled(1),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let snapshots_taken = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for _ in 0..2 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            let snapshots_taken = Arc::clone(&snapshots_taken);
            s.spawn(move || {
                let mut prev = svc.metrics_snapshot();
                while !stop.load(Ordering::Relaxed) {
                    let cur = svc.metrics_snapshot();
                    assert!(
                        cur.monotone_since(&prev),
                        "snapshot went backwards: {} acquires after {}",
                        cur.acquires,
                        prev.acquires
                    );
                    snapshots_taken.fetch_add(1, Ordering::Relaxed);
                    prev = cur;
                }
            });
        }
        for id in 0..threads {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                for i in 0..rounds {
                    // 16 hot keys shared by all writers force real
                    // contention (spins, parks, CAS retries).
                    let key = parking::futex::mix64(i.wrapping_mul(id + 1) % 16);
                    let g = svc.lock(key);
                    std::hint::black_box(&g);
                }
                // A private tail so the fast path is represented too.
                for i in 0..rounds {
                    let _g = svc.lock(parking::futex::mix64(0x1000 + id * rounds + i));
                }
            });
        }
        // Writers all joined when the scope's non-reader threads finish;
        // we can't observe that from inside, so writers signal by count:
        // the last spawned thread group joining is what `scope` waits
        // for — readers need an explicit stop, set after writers are
        // done via a monitor thread.
        let svc2 = Arc::clone(&svc);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            let total = threads * rounds * 2;
            while svc2.metrics_snapshot().acquires < total {
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    assert!(
        snapshots_taken.load(Ordering::Relaxed) > 0,
        "readers never snapshotted"
    );

    // One guaranteed-contended acquisition: a single host core can
    // serialize the hammer phase into pure fast-path wins, but a waiter
    // blocked behind a held guard *must* park, sample its wait, and note
    // the hot key.
    let parks_before = svc.futex_totals().parks;
    let key = parking::futex::mix64(0xBEEF);
    let guard = svc.lock(key);
    let victim = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            let _g = svc.lock(key);
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.futex_totals().parks == parks_before {
        assert!(Instant::now() < deadline, "contended victim never parked");
        std::thread::yield_now();
    }
    drop(guard);
    victim.join().unwrap();

    let snap = svc.metrics_snapshot();
    let total = threads * rounds * 2 + 2;
    assert_eq!(snap.acquires, total, "telemetry lost acquisitions");
    assert!(snap.fast_path + snap.parked <= snap.acquires);
    assert!(snap.wait_samples() > 0, "sampled mode never sampled");
    assert!(!snap.hot_keys.is_empty(), "hot-key sketch stayed empty");

    let futex = snap.futex.expect("service snapshot carries its lot totals");
    assert!(
        futex.balanced(),
        "lot ledger unbalanced at quiesce: parks {} wakes {} resumes {}",
        futex.parks,
        futex.wakes,
        futex.resumes
    );
}

/// The exporters must round-trip a snapshot of a real contended run
/// through their own validators, and both must carry the table and lot
/// sections a service-level snapshot includes.
#[test]
fn exporters_validate_after_a_real_run() {
    let svc = Arc::new(service::LockService::with_metrics_mode(
        32,
        service::MetricsMode::Sampled(8),
    ));
    std::thread::scope(|s| {
        for id in 0..4u64 {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let _g = svc.lock(parking::futex::mix64(i.wrapping_mul(id + 1) % 8));
                }
            });
        }
    });
    let snap = svc.metrics_snapshot();
    assert!(snap.table.is_some() && snap.futex.is_some());

    let prom = service::telemetry::prometheus(&snap);
    let pstats = service::telemetry::validate_prometheus(&prom)
        .unwrap_or_else(|e| panic!("prometheus export invalid: {e}\n{prom}"));
    assert!(pstats.families >= 10, "families missing: {}", pstats.families);
    assert!(prom.contains("syncmech_service_acquires_total 8000"));
    assert!(prom.contains("syncmech_service_table{stat=\"live\"} 0"));

    let json = service::telemetry::json(&snap);
    let jstats = service::telemetry::validate_json(&json)
        .unwrap_or_else(|e| panic!("json export invalid: {e}\n{json}"));
    assert!(jstats.fields >= 17, "fields missing: {}", jstats.fields);
    assert!(json.contains("\"acquires\": 8000"));
}

/// A waiter deliberately parked past the threshold must trip the
/// watchdog exactly once, and the report must carry the stall roster and
/// the flight-recorder tail.
#[test]
fn watchdog_fires_once_on_a_genuine_stall() {
    let svc = Arc::new(service::LockService::with_metrics_mode(
        8,
        service::MetricsMode::Counters,
    ));
    let key = parking::futex::mix64(0xDEAD);
    let guard = svc.lock(key);
    let released = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        {
            let svc = Arc::clone(&svc);
            let released = Arc::clone(&released);
            s.spawn(move || {
                // Parks behind the held guard until the main thread
                // releases it; this is the deliberate stall.
                let _g = svc.lock(key);
                released.store(true, Ordering::Relaxed);
            });
        }

        // Wait until the victim is really parked in the service's lot
        // (not merely spawned), then let it age past the threshold.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.futex_totals().parks == 0 {
            assert!(Instant::now() < deadline, "victim never parked");
            std::thread::yield_now();
        }
        let threshold = Duration::from_millis(10);
        std::thread::sleep(threshold * 4);

        let dog = service::StallWatchdog::new(threshold);
        assert!(!dog.fired());
        assert!(dog.check(&svc), "aged parked waiter must trip the watchdog");
        assert!(dog.fired());
        assert!(!dog.check(&svc), "the dump must fire exactly once");

        let report = dog.report(&svc, threshold * 4);
        assert!(report.contains("stall"), "no stall line:\n{report}");
        assert!(report.contains("parked"), "no roster:\n{report}");
        assert!(report.contains("futex"), "no lot ledger:\n{report}");

        assert!(!released.load(Ordering::Relaxed), "victim resumed early");
        drop(guard);
    });

    assert!(released.load(Ordering::Relaxed), "victim never resumed");
    assert_eq!(svc.stats().live, 0);
}

/// A workload that parks constantly but keeps making progress must never
/// trip a watchdog whose threshold exceeds any single wait: parked age
/// resets on every grant, so only a *stuck* waiter can age past it.
#[test]
fn watchdog_stays_silent_on_a_slow_but_live_workload() {
    let svc = Arc::new(service::LockService::with_metrics_mode(
        8,
        service::MetricsMode::Counters,
    ));
    let dog = service::StallWatchdog::new(Duration::from_secs(30));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                for _ in 0..3_000 {
                    // One hot key: every acquisition queues, parks, and
                    // is handed on — slow, but always live.
                    let g = svc.lock(parking::futex::mix64(7));
                    std::hint::black_box(&g);
                }
            });
        }
        for _ in 0..50 {
            assert!(!dog.check(&svc), "watchdog false-positived on live load");
            std::thread::yield_now();
        }
    });
    assert!(!dog.fired());
    let snap = svc.metrics_snapshot();
    assert_eq!(snap.acquires, 12_000);
}
