//! Property-based tests of the simulated machine: randomly generated
//! programs must satisfy the architectural invariants regardless of
//! topology, processor count, or operation mix.
//!
//! The corpus is generated with the workspace's own deterministic
//! `simcore::Rng` (fixed seeds, so failures reproduce exactly) rather than
//! an external property-testing framework — the workspace builds with no
//! registry access.

use memsim::{Machine, MachineParams, Topology};
use simcore::Rng;

/// A single random operation in a generated program.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Load(usize),
    Store(usize, u64),
    FetchAdd(usize, u64),
    Swap(usize, u64),
    Cas(usize, u64, u64),
    Delay(u64),
}

const WORDS: usize = 24;
/// Random programs checked per property.
const CASES: usize = 48;

fn gen_op(rng: &mut Rng) -> GenOp {
    let addr = rng.next_below(WORDS as u64) as usize;
    match rng.next_below(6) {
        0 => GenOp::Load(addr),
        1 => GenOp::Store(addr, rng.next_below(50)),
        2 => GenOp::FetchAdd(addr, 1 + rng.next_below(4)),
        3 => GenOp::Swap(addr, rng.next_below(50)),
        4 => GenOp::Cas(addr, rng.next_below(5), rng.next_below(50)),
        _ => GenOp::Delay(rng.next_below(40)),
    }
}

/// 1..=6 processors, each with up to 30 operations.
fn gen_program(rng: &mut Rng) -> Vec<Vec<GenOp>> {
    let nprocs = 1 + rng.next_below(6) as usize;
    (0..nprocs)
        .map(|_| {
            let len = rng.next_below(30) as usize;
            (0..len).map(|_| gen_op(rng)).collect()
        })
        .collect()
}

fn run_program(params: MachineParams, prog: &[Vec<GenOp>]) -> memsim::RunReport {
    let machine = Machine::new(params);
    machine
        .run(prog.len(), WORDS, |p| {
            for &op in &prog[p.pid()] {
                match op {
                    GenOp::Load(a) => {
                        p.load(a);
                    }
                    GenOp::Store(a, v) => p.store(a, v),
                    GenOp::FetchAdd(a, d) => {
                        p.fetch_add(a, d);
                    }
                    GenOp::Swap(a, v) => {
                        p.swap(a, v);
                    }
                    GenOp::Cas(a, e, n) => {
                        let _ = p.cas(a, e, n);
                    }
                    GenOp::Delay(c) => p.delay(c),
                }
            }
        })
        .expect("straight-line programs cannot deadlock")
}

/// Determinism: the same program produces identical metrics and memory
/// on repeated runs, on both topologies.
#[test]
fn random_programs_are_deterministic() {
    let mut rng = Rng::new(1);
    for case in 0..CASES {
        let prog = gen_program(&mut rng);
        for params in [
            MachineParams::bus_1991(prog.len()),
            MachineParams::numa_1991(prog.len()),
        ] {
            let a = run_program(params.clone(), &prog);
            let b = run_program(params, &prog);
            assert_eq!(a.memory, b.memory, "case {case}: memory diverged");
            assert_eq!(a.metrics, b.metrics, "case {case}: metrics diverged");
        }
    }
}

/// Accounting: hits + misses + upgrades == every access classified exactly
/// once.
#[test]
fn access_accounting_balances() {
    let mut rng = Rng::new(2);
    for case in 0..CASES {
        let prog = gen_program(&mut rng);
        let report = run_program(MachineParams::bus_1991(prog.len()), &prog);
        for pm in &report.metrics.per_proc {
            assert_eq!(
                pm.hits + pm.misses + pm.upgrades,
                pm.ops(),
                "case {case}: access classes do not partition"
            );
        }
    }
}

/// Conservation: an address touched only by fetch_add ends at the sum
/// of its deltas.
#[test]
fn fetch_add_conserves() {
    let mut rng = Rng::new(3);
    for case in 0..CASES {
        let nprocs = 1 + rng.next_below(5) as usize;
        let deltas: Vec<Vec<u64>> = (0..nprocs)
            .map(|_| {
                let len = rng.next_below(20) as usize;
                (0..len).map(|_| 1 + rng.next_below(6)).collect()
            })
            .collect();
        let machine = Machine::new(MachineParams::bus_1991(deltas.len()));
        let expected: u64 = deltas.iter().flatten().sum();
        let report = machine
            .run(deltas.len(), 1, |p| {
                for &d in &deltas[p.pid()] {
                    p.fetch_add(0, d);
                }
            })
            .unwrap();
        assert_eq!(report.memory[0], expected, "case {case}: deltas lost");
    }
}

/// Value domain: a word only ever holds a value some operation wrote
/// (or its initial zero) — the final memory is drawn from the write set.
#[test]
fn final_values_come_from_writes() {
    let mut rng = Rng::new(4);
    for case in 0..CASES {
        let prog = gen_program(&mut rng);
        let report = run_program(MachineParams::bus_1991(prog.len()), &prog);
        // Collect every value any op could produce per address. Fetch-add
        // makes exact value sets expensive; only check addresses it never
        // touches.
        let mut possible: Vec<std::collections::HashSet<u64>> =
            vec![std::iter::once(0).collect(); WORDS];
        let mut has_fa = [false; WORDS];
        for ops in &prog {
            for &op in ops {
                match op {
                    GenOp::Store(a, v) | GenOp::Swap(a, v) => {
                        possible[a].insert(v);
                    }
                    GenOp::Cas(a, _, n) => {
                        possible[a].insert(n);
                    }
                    GenOp::FetchAdd(a, _) => has_fa[a] = true,
                    _ => {}
                }
            }
        }
        for a in 0..WORDS {
            if !has_fa[a] {
                assert!(
                    possible[a].contains(&report.memory[a]),
                    "case {case}: word {a} holds {} which nothing wrote",
                    report.memory[a]
                );
            }
        }
    }
}

/// Time monotonicity: elapsed time is at least each processor's total
/// explicit delay, and interconnect transactions are bounded by misses
/// plus upgrades.
#[test]
fn timing_and_traffic_bounds() {
    let mut rng = Rng::new(5);
    for case in 0..CASES {
        let prog = gen_program(&mut rng);
        let report = run_program(MachineParams::bus_1991(prog.len()), &prog);
        let m = &report.metrics;
        for (pid, ops) in prog.iter().enumerate() {
            let delays: u64 = ops
                .iter()
                .map(|op| match op {
                    GenOp::Delay(c) => *c,
                    _ => 0,
                })
                .sum();
            assert!(
                m.per_proc[pid].finish_time >= delays,
                "case {case}: proc {pid} finished before its own delays"
            );
        }
        let classified: u64 =
            m.misses() + m.per_proc.iter().map(|p| p.upgrades).sum::<u64>();
        assert_eq!(
            m.interconnect_transactions, classified,
            "case {case}: unclassified interconnect traffic"
        );
    }
}

#[test]
fn numa_topology_is_reported() {
    let params = MachineParams::numa_1991(8);
    assert!(matches!(params.topology, Topology::Numa { nodes: 2 }));
}
