//! Property-based tests of the simulated machine: randomly generated
//! programs must satisfy the architectural invariants regardless of
//! topology, processor count, or operation mix.

use memsim::{Machine, MachineParams, Topology};
use proptest::prelude::*;

/// A single random operation in a generated program.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Load(usize),
    Store(usize, u64),
    FetchAdd(usize, u64),
    Swap(usize, u64),
    Cas(usize, u64, u64),
    Delay(u64),
}

const WORDS: usize = 24;

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0..WORDS).prop_map(GenOp::Load),
        (0..WORDS, 0..50u64).prop_map(|(a, v)| GenOp::Store(a, v)),
        (0..WORDS, 1..5u64).prop_map(|(a, d)| GenOp::FetchAdd(a, d)),
        (0..WORDS, 0..50u64).prop_map(|(a, v)| GenOp::Swap(a, v)),
        (0..WORDS, 0..5u64, 0..50u64).prop_map(|(a, e, n)| GenOp::Cas(a, e, n)),
        (0..40u64).prop_map(GenOp::Delay),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<GenOp>>> {
    // 1..=6 processors, each with up to 30 operations.
    prop::collection::vec(prop::collection::vec(op_strategy(), 0..30), 1..=6)
}

fn run_program(params: MachineParams, prog: &[Vec<GenOp>]) -> memsim::RunReport {
    let machine = Machine::new(params);
    machine
        .run(prog.len(), WORDS, |p| {
            for &op in &prog[p.pid()] {
                match op {
                    GenOp::Load(a) => {
                        p.load(a);
                    }
                    GenOp::Store(a, v) => p.store(a, v),
                    GenOp::FetchAdd(a, d) => {
                        p.fetch_add(a, d);
                    }
                    GenOp::Swap(a, v) => {
                        p.swap(a, v);
                    }
                    GenOp::Cas(a, e, n) => {
                        let _ = p.cas(a, e, n);
                    }
                    GenOp::Delay(c) => p.delay(c),
                }
            }
        })
        .expect("straight-line programs cannot deadlock")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Determinism: the same program produces identical metrics and memory
    /// on repeated runs, on both topologies.
    #[test]
    fn random_programs_are_deterministic(prog in program_strategy()) {
        for params in [MachineParams::bus_1991(prog.len()), MachineParams::numa_1991(prog.len())] {
            let a = run_program(params.clone(), &prog);
            let b = run_program(params, &prog);
            prop_assert_eq!(&a.memory, &b.memory);
            prop_assert_eq!(&a.metrics, &b.metrics);
        }
    }

    /// Accounting: hits + misses == loads + stores + rmws (every access is
    /// classified exactly once), and every upgrade is also counted as a hit
    /// or... rather: upgrades never exceed write-class operations.
    #[test]
    fn access_accounting_balances(prog in program_strategy()) {
        let report = run_program(MachineParams::bus_1991(prog.len()), &prog);
        let m = &report.metrics;
        for pm in &m.per_proc {
            // Upgrades are neither hits nor misses in our classification;
            // the three classes partition all accesses.
            prop_assert_eq!(pm.hits + pm.misses + pm.upgrades, pm.ops());
        }
    }

    /// Conservation: an address touched only by fetch_add ends at the sum
    /// of its deltas.
    #[test]
    fn fetch_add_conserves(deltas in prop::collection::vec(prop::collection::vec(1..7u64, 0..20), 1..=5)) {
        let machine = Machine::new(MachineParams::bus_1991(deltas.len()));
        let expected: u64 = deltas.iter().flatten().sum();
        let report = machine.run(deltas.len(), 1, |p| {
            for &d in &deltas[p.pid()] {
                p.fetch_add(0, d);
            }
        }).unwrap();
        prop_assert_eq!(report.memory[0], expected);
    }

    /// Value domain: a word only ever holds a value some operation wrote
    /// (or its initial zero) — the final memory is drawn from the write set.
    #[test]
    fn final_values_come_from_writes(prog in program_strategy()) {
        let report = run_program(MachineParams::bus_1991(prog.len()), &prog);
        // Collect every value any op could produce per address.
        let mut possible: Vec<std::collections::HashSet<u64>> =
            vec![std::iter::once(0).collect(); WORDS];
        // Fetch-add makes exact value sets expensive; only check addresses
        // never touched by fetch_add.
        let mut has_fa = [false; WORDS];
        for ops in &prog {
            for &op in ops {
                match op {
                    GenOp::Store(a, v) | GenOp::Swap(a, v) => { possible[a].insert(v); }
                    GenOp::Cas(a, _, n) => { possible[a].insert(n); }
                    GenOp::FetchAdd(a, _) => has_fa[a] = true,
                    _ => {}
                }
            }
        }
        for a in 0..WORDS {
            if !has_fa[a] {
                prop_assert!(
                    possible[a].contains(&report.memory[a]),
                    "word {} holds {} which nothing wrote", a, report.memory[a]
                );
            }
        }
    }

    /// Time monotonicity: elapsed time is at least each processor's total
    /// explicit delay, and interconnect transactions are bounded by misses
    /// plus upgrades.
    #[test]
    fn timing_and_traffic_bounds(prog in program_strategy()) {
        let report = run_program(MachineParams::bus_1991(prog.len()), &prog);
        let m = &report.metrics;
        for (pid, ops) in prog.iter().enumerate() {
            let delays: u64 = ops.iter().map(|op| match op {
                GenOp::Delay(c) => *c,
                _ => 0,
            }).sum();
            prop_assert!(m.per_proc[pid].finish_time >= delays);
        }
        let classified: u64 = m.misses() + m.per_proc.iter().map(|p| p.upgrades).sum::<u64>();
        prop_assert_eq!(m.interconnect_transactions, classified);
    }
}

#[test]
fn numa_topology_is_reported() {
    let params = MachineParams::numa_1991(8);
    assert!(matches!(params.topology, Topology::Numa { nodes: 2 }));
}
