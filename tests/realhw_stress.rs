//! Multi-thread stress of the real-hardware (`qsm` crate) primitives —
//! heavier and longer-running than the crate's unit tests, exercising
//! mixed workloads across every lock.

use qsm::raw::RawLock;
use qsm::{EventCount, Mutex, QsmBarrier, Sequencer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn all_locks_protect_a_shared_vec() {
    for lock in qsm::all_locks(4) {
        let name = lock.name();
        let lock: Arc<dyn RawLock> = Arc::from(lock);
        struct Shared(std::cell::UnsafeCell<Vec<u64>>);
        unsafe impl Sync for Shared {}
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new(Vec::new())));
        let threads: Vec<_> = (0..4)
            .map(|id| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        let t = lock.lock();
                        // SAFETY: protected by the lock under test.
                        unsafe { (*shared.0.get()).push(id * 1000 + i) };
                        unsafe { lock.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = unsafe { &*shared.0.get() };
        assert_eq!(v.len(), 1200, "{name} lost pushes");
        // Per-thread subsequences must appear in order (a torn push or a
        // lost update would break this).
        for id in 0..4u64 {
            let mine: Vec<u64> = v.iter().copied().filter(|x| x / 1000 == id).collect();
            assert_eq!(mine.len(), 300, "{name}: thread {id} lost entries");
            assert!(
                mine.windows(2).all(|w| w[0] < w[1]),
                "{name}: thread {id} entries out of order"
            );
        }
    }
}

#[test]
fn mutex_with_every_raw_lock_via_type_params() {
    fn hammer<L: RawLock + Default + 'static>() {
        let m: Arc<Mutex<u64, L>> = Arc::new(Mutex::new(0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..400 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 1200);
    }
    hammer::<qsm::TasLock>();
    hammer::<qsm::TasBackoffLock>();
    hammer::<qsm::TtasLock>();
    hammer::<qsm::TicketLock>();
    hammer::<qsm::ClhLock>();
    hammer::<qsm::McsLock>();
    hammer::<qsm::Qsm>();
}

#[test]
fn barrier_phases_order_effects() {
    const THREADS: usize = 4;
    const EPISODES: u64 = 200;
    let barrier = Arc::new(QsmBarrier::new(THREADS));
    let phase_sum = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let phase_sum = Arc::clone(&phase_sum);
            std::thread::spawn(move || {
                for ep in 1..=EPISODES {
                    phase_sum.fetch_add(1, Ordering::Relaxed);
                    barrier.wait();
                    // After the episode, exactly THREADS*ep arrivals happened.
                    let seen = phase_sum.load(Ordering::Relaxed);
                    assert!(seen >= THREADS as u64 * ep, "episode {ep}: {seen}");
                    barrier.wait();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(phase_sum.load(Ordering::Relaxed), THREADS as u64 * EPISODES);
}

#[test]
fn eventcount_and_sequencer_run_a_lockless_queue() {
    // Two producers + one consumer over a 4-slot ring (the pipeline example
    // in miniature, asserted strictly).
    const TOTAL: u64 = 4000;
    const CAP: u64 = 4;
    let turns = Arc::new(Sequencer::new());
    let produced = Arc::new(EventCount::new());
    let consumed = Arc::new(EventCount::new());
    let cells: Arc<Vec<AtomicU64>> = Arc::new((0..CAP).map(|_| AtomicU64::new(0)).collect());

    let consumer = {
        let produced = Arc::clone(&produced);
        let consumed = Arc::clone(&consumed);
        let cells = Arc::clone(&cells);
        std::thread::spawn(move || {
            let mut sum = 0u64;
            for seq in 0..TOTAL {
                produced.await_at_least(seq + 1);
                sum += cells[(seq % CAP) as usize].load(Ordering::Acquire);
                consumed.advance();
            }
            sum
        })
    };

    let producers: Vec<_> = (0..2)
        .map(|_| {
            let turns = Arc::clone(&turns);
            let produced = Arc::clone(&produced);
            let consumed = Arc::clone(&consumed);
            let cells = Arc::clone(&cells);
            std::thread::spawn(move || {
                loop {
                    let seq = turns.ticket();
                    if seq >= TOTAL {
                        return;
                    }
                    if seq >= CAP {
                        consumed.await_at_least(seq - CAP + 1);
                    }
                    produced.await_at_least(seq); // strict fill order
                    cells[(seq % CAP) as usize].store(seq + 1, Ordering::Release);
                    produced.advance();
                }
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    let sum = consumer.join().unwrap();
    assert_eq!(sum, (1..=TOTAL).sum::<u64>());
}

#[test]
fn anderson_respects_capacity_bound() {
    // Exactly `capacity` threads — the documented maximum — must work.
    let lock = Arc::new(qsm::AndersonLock::new(3));
    let count = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..3)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let count = Arc::clone(&count);
            std::thread::spawn(move || {
                for _ in 0..300 {
                    let t = lock.lock();
                    count.fetch_add(1, Ordering::Relaxed);
                    unsafe { lock.unlock(t) };
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(count.load(Ordering::Relaxed), 900);
}
