//! Deadlock-freedom of `AsyncLockService::lock_many`, checked
//! exhaustively on the deterministic executor.
//!
//! `lock_many` sorts its keys into the canonical (shard, key) order and
//! two-phase-acquires, so *any* assignment of key orders to tasks must
//! complete: the caller's order is irrelevant. The tests enumerate every
//! assignment of 2-key and 3-key acquisition orders across 3 concurrent
//! tasks — with staggered virtual sleeps so lock interleavings actually
//! overlap — and require [`workloads::executor::Outcome::Completed`]
//! from each run.
//!
//! The control: the same reversed-order scenario acquired *sequentially*
//! (what `lock_many` exists to prevent) must report `Stalled` — a
//! detected deadlock, not a hang — and dropping the executor must drain
//! the table through the futures' cancellation paths.

use service::AsyncLockService;
use workloads::executor::{Executor, Outcome};

/// Runs one combo: three tasks, each `lock_many`-ing its own key order,
/// staggered so the windows overlap. Returns the outcome; the service is
/// asserted drained afterwards.
fn run_combo(orders: [&[u64]; 3]) -> Outcome {
    let svc = AsyncLockService::with_shards(4);
    let mut ex = Executor::new(40);
    let h = ex.handle();
    for (i, keys) in orders.into_iter().enumerate() {
        let (h, svc) = (h.clone(), &svc);
        ex.spawn(async move {
            // Stagger and repeat: the second round runs with every task
            // alive, so partially-overlapped holds actually occur.
            h.sleep(i as u64 * 3).await;
            for _ in 0..2 {
                let guards = svc.lock_many(keys).await;
                assert_eq!(guards.len(), keys.len());
                h.sleep(10).await;
                drop(guards);
                h.sleep(1).await;
            }
        });
    }
    let outcome = ex.run();
    drop(ex);
    assert_eq!(svc.stats().live, 0, "table must drain after {orders:?}");
    outcome
}

#[test]
fn all_two_key_order_assignments_complete() {
    const A: u64 = 11;
    const B: u64 = 22;
    let orders: [&[u64]; 2] = [&[A, B], &[B, A]];
    for x in 0..2 {
        for y in 0..2 {
            for z in 0..2 {
                let combo = [orders[x], orders[y], orders[z]];
                assert_eq!(
                    run_combo(combo),
                    Outcome::Completed,
                    "2-key combo {combo:?} deadlocked"
                );
            }
        }
    }
}

#[test]
fn all_three_key_order_assignments_complete() {
    const A: u64 = 11;
    const B: u64 = 22;
    const C: u64 = 33;
    let perms: [&[u64]; 6] = [
        &[A, B, C],
        &[A, C, B],
        &[B, A, C],
        &[B, C, A],
        &[C, A, B],
        &[C, B, A],
    ];
    for x in 0..6 {
        for y in 0..6 {
            for z in 0..6 {
                let combo = [perms[x], perms[y], perms[z]];
                assert_eq!(
                    run_combo(combo),
                    Outcome::Completed,
                    "3-key combo {combo:?} deadlocked"
                );
            }
        }
    }
}

/// The baseline `lock_many` is measured against: two tasks acquiring the
/// same two keys sequentially in *opposite* orders, staged with sleeps so
/// each holds its first key before wanting the second. This must
/// deadlock — reported as a stall, never a hang — and the sorted
/// `lock_many` path above must never exhibit it.
#[test]
fn reversed_sequential_orders_deadlock_and_cancel_cleanly() {
    const A: u64 = 11;
    const B: u64 = 22;
    let svc = AsyncLockService::with_shards(4);
    let mut ex = Executor::new(40);
    let h = ex.handle();
    {
        let (h, svc) = (h.clone(), &svc);
        ex.spawn(async move {
            let _a = svc.lock(A).await;
            h.sleep(10).await;
            let _b = svc.lock(B).await;
        });
    }
    {
        let (h, svc) = (h.clone(), &svc);
        ex.spawn(async move {
            let _b = svc.lock(B).await;
            h.sleep(10).await;
            let _a = svc.lock(A).await;
        });
    }
    assert_eq!(
        ex.run(),
        Outcome::Stalled {
            unfinished: vec![0, 1]
        }
    );
    // Dropping the executor drops both deadlocked tasks: their held
    // guards release and their parked futures cancel, so nothing leaks.
    drop(ex);
    assert_eq!(svc.stats().live, 0, "cancellation must drain the table");
}
