//! Integration tests for the real-hardware blocking runtime (`parking`):
//! the word-sized futex, the blocking eventcount, and the blocking QSM
//! mutex, exercised with real host threads.
//!
//! These are the hardware counterparts of the interleave-model futex tests
//! (`crates/interleave` and `tests/analysis_seeded_bugs.rs`): the model
//! proves the discipline has no lost-wakeup window under every schedule,
//! and these tests check that the `std::thread`-backed implementation
//! honours the same contract under a real scheduler.

use parking::futex::{futex_wait, futex_wake, parked_count};
use parking::{EventcountBlocking, QsmMutexBlocking};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Spins (with sleeps) until `cond` holds or a generous deadline passes —
/// real-thread tests can't assert on instantaneous scheduler behavior.
fn eventually(cond: impl Fn() -> bool, what: &str) {
    for _ in 0..2_000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn futex_wake_n_of_m_wakes_exactly_n() {
    const M: usize = 6;
    const N: usize = 2;
    let word = Arc::new(AtomicU64::new(0));
    let released = Arc::new(AtomicU64::new(0));

    let waiters: Vec<_> = (0..M)
        .map(|_| {
            let word = Arc::clone(&word);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                // Futex discipline: re-check the word after every return;
                // only a published word change ends the wait.
                while word.load(Ordering::SeqCst) == 0 {
                    futex_wait(&word, 0);
                }
                released.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();

    eventually(|| parked_count(&word) == M, "all waiters parked");

    // Waking N without changing the word releases nobody for good: the
    // woken threads re-check, see 0, and park again.
    let woken = futex_wake(&word, N);
    assert!(woken <= N, "woke {woken} > requested {N}");
    eventually(|| parked_count(&word) == M, "spuriously woken waiters re-parked");
    assert_eq!(released.load(Ordering::SeqCst), 0);

    // Publish the change, then wake exactly N: exactly N get out.
    word.store(1, Ordering::SeqCst);
    assert_eq!(futex_wake(&word, N), N);
    eventually(
        || released.load(Ordering::SeqCst) == N as u64,
        "exactly n waiters released",
    );
    assert_eq!(parked_count(&word), M - N, "the rest must still be parked");

    // Wake the remainder; everyone finishes.
    assert_eq!(futex_wake(&word, usize::MAX), M - N);
    for w in waiters {
        w.join().unwrap();
    }
    assert_eq!(released.load(Ordering::SeqCst), M as u64);
    assert_eq!(parked_count(&word), 0);
}

#[test]
fn eventcount_advance_and_await_survive_wraparound() {
    // Start two ticks below wraparound so the watched sequence crosses
    // u64::MAX -> 0 while a waiter is parked on the far side.
    let ec = Arc::new(EventcountBlocking::with_initial(u64::MAX - 1));
    let waiter = {
        let ec = Arc::clone(&ec);
        std::thread::spawn(move || ec.await_at_least(1))
    };
    // Three advances: MAX-1 -> MAX -> 0 -> 1. The signed-distance compare
    // must treat 1 as "at or past" the target despite 1 < u64::MAX - 1.
    assert_eq!(ec.advance(), u64::MAX);
    assert_eq!(ec.advance(), 0);
    assert_eq!(ec.advance(), 1);
    assert_eq!(waiter.join().unwrap(), 1);
}

#[test]
fn simulated_blocking_run_balances_parks_and_wakes() {
    // Machine-wide futex accounting: a completed run must have woken every
    // parked waiter. The engine debug_asserts this at teardown; this is
    // the explicit release-mode check on the configuration that parks the
    // most (always-park QSM, 2 threads per simulated core).
    let lock = kernels::locks::lock_by_name("qsm-block-park").unwrap();
    let (nprocs, cores) = (8, 4);
    let machine = workloads::oversub::oversub_machine(nprocs, cores);
    let (count, report) =
        kernels::locks::counter_trial(&machine, &*lock, nprocs, 4, 10).unwrap();
    assert_eq!(count, (nprocs * 4) as u64);
    assert!(
        report.metrics.futex_parks() > 0,
        "always-park lock never parked; the check is vacuous"
    );
    assert_eq!(report.metrics.futex_parks(), report.metrics.futex_woken());
}

#[test]
fn blocking_mutex_counts_correctly_oversubscribed() {
    // More threads than host cores: the configuration the park path is
    // for. A lost wakeup here shows up as a hang (caught by test timeout).
    let threads = 2 * std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let iters = 300;
    let mutex = Arc::new(qsm::Mutex::with_raw(QsmMutexBlocking::spin_then_park(), 0u64));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let mutex = Arc::clone(&mutex);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    let mut g = mutex.lock();
                    let v = *g; // non-atomic read-modify-write: only mutual
                    *g = v + 1; // exclusion keeps the count exact.
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*mutex.lock(), (threads * iters) as u64);
}
