//! The correctness theorem sweep: every lock and barrier in the kernel
//! registry is model-checked by the interleave explorer.
//!
//! Budgets are preemption-bounded (bound 2, the setting that exposes
//! virtually all synchronization bugs) so the full sweep stays fast enough
//! for CI; the per-algorithm exhaustive checks live in the `interleave`
//! crate's own tests.

use interleave::harness::{check_barrier, check_lock};
use interleave::{Explorer, Program};
use kernels::barriers::all_barriers;
use kernels::locks::all_locks;
use kernels::rwlock::RwKernel;
use kernels::{Region, SyncCtx};
use std::sync::Arc;

fn lock_explorer() -> Explorer {
    Explorer::bounded(2).with_max_steps(60).with_max_runs(4000)
}

#[test]
fn every_lock_preserves_mutual_exclusion_two_threads() {
    for lock in all_locks() {
        let name = lock.name();
        let lock: Arc<dyn kernels::locks::LockKernel + Send + Sync> = Arc::from(lock);
        check_lock(lock, 2, 1, lock_explorer()).expect_pass(name);
    }
}

#[test]
fn every_lock_preserves_mutual_exclusion_two_threads_two_iters() {
    for lock in all_locks() {
        let name = lock.name();
        let lock: Arc<dyn kernels::locks::LockKernel + Send + Sync> = Arc::from(lock);
        check_lock(lock, 2, 2, lock_explorer()).expect_pass(name);
    }
}

#[test]
fn queue_locks_hold_with_three_threads() {
    // The queue-handoff algorithms have the interesting 3-party races
    // (mid-enqueue release). Bounded exploration over three threads.
    for name in ["anderson", "graunke-thakkar", "clh", "mcs", "qsm"] {
        let lock = kernels::locks::lock_by_name(name).unwrap();
        let lock: Arc<dyn kernels::locks::LockKernel + Send + Sync> = Arc::from(lock);
        check_lock(lock, 3, 1, lock_explorer()).expect_pass(name);
    }
}

/// The reader-writer kernel (table3's extension): writers exclude writers
/// and readers, reads see completed writes, and the bump/retreat entry
/// protocol neither deadlocks nor livelocks under bounded exploration.
#[test]
fn rwlock_kernel_is_safe_two_threads() {
    let region = Region::new(0, 2, RwKernel.lines_needed(2));
    let counter = region.end();
    let program = Program::new(2, counter + 1, move |ctx| {
        let mut ps = RwKernel.proc_init(ctx.pid(), &region);
        let token = RwKernel.write_acquire(ctx, &region, &mut ps);
        let c = ctx.load(counter);
        ctx.store(counter, c + 1);
        RwKernel.write_release(ctx, &region, &mut ps, token);

        RwKernel.read_acquire(ctx, &region);
        let seen = ctx.load(counter);
        assert!(seen >= 1, "read section saw no completed write");
        RwKernel.read_release(ctx, &region);
    });
    let verdict = lock_explorer().check(&program, move |mem| {
        if mem[counter] == 2 {
            Ok(())
        } else {
            Err(format!("write lost: counter {}", mem[counter]))
        }
    });
    verdict.expect_pass("rwlock 2 threads");
}

/// Three threads: two writers and one reader, exercising drain + retreat.
#[test]
fn rwlock_kernel_mixed_three_threads() {
    let region = Region::new(0, 2, RwKernel.lines_needed(3));
    let counter = region.end();
    let program = Program::new(3, counter + 1, move |ctx| {
        let mut ps = RwKernel.proc_init(ctx.pid(), &region);
        if ctx.pid() == 2 {
            RwKernel.read_acquire(ctx, &region);
            let _ = ctx.load(counter);
            RwKernel.read_release(ctx, &region);
        } else {
            let token = RwKernel.write_acquire(ctx, &region, &mut ps);
            let c = ctx.load(counter);
            ctx.store(counter, c + 1);
            RwKernel.write_release(ctx, &region, &mut ps, token);
        }
    });
    let verdict = Explorer::bounded(2)
        .with_max_steps(80)
        .with_max_runs(8000)
        .check(&program, move |mem| {
            if mem[counter] == 2 {
                Ok(())
            } else {
                Err(format!("write lost: counter {}", mem[counter]))
            }
        });
    verdict.expect_pass("rwlock 3 threads mixed");
}

#[test]
fn every_barrier_is_safe_two_threads() {
    for barrier in all_barriers() {
        let name = barrier.name();
        let barrier: Arc<dyn kernels::barriers::BarrierKernel + Send + Sync> = Arc::from(barrier);
        check_barrier(barrier, 2, 2, lock_explorer()).expect_pass(name);
    }
}

#[test]
fn every_barrier_is_safe_three_threads_one_episode() {
    for barrier in all_barriers() {
        let name = barrier.name();
        let barrier: Arc<dyn kernels::barriers::BarrierKernel + Send + Sync> = Arc::from(barrier);
        check_barrier(barrier, 3, 1, Explorer::bounded(2).with_max_runs(6000))
            .expect_pass(name);
    }
}
