//! Loader test for the checked-in corpus of fuzzer-shrunk
//! counterexamples (`tests/shrunk_corpus/*.corpus`).
//!
//! Every entry names a program from the seeded-bug registry
//! ([`interleave::corpus::corpus_program`]), carries the shrunk schedule
//! the nightly fuzz job found, and pins the verdict class. Each entry is
//! checked two ways:
//!
//! 1. **replay** — the schedule must still reproduce exactly that verdict
//!    class (a stale schedule maps to `Pass` and fails loudly);
//! 2. **exhaustive re-check** — the bug must still be reachable by search
//!    alone under both race-analysis reduction modes, so a regression in
//!    the source-set/wakeup-tree machinery cannot hide behind a replay.
//!
//! Regenerate the directory with:
//!
//! ```text
//! cargo test --release --test shrunk_corpus -- --ignored regenerate
//! ```

use interleave::corpus::{corpus_program, corpus_program_names, CorpusEntry, VerdictClass};
use interleave::fuzz::Fuzzer;
use interleave::{DporMode, Explorer, Strategy};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/shrunk_corpus")
}

fn load_entries() -> Vec<(PathBuf, CorpusEntry)> {
    let dir = corpus_dir();
    let mut entries: Vec<(PathBuf, CorpusEntry)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|f| f.expect("readable dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("corpus"))
        .map(|path| {
            let text = std::fs::read_to_string(&path).expect("readable corpus file");
            let entry = CorpusEntry::parse(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, entry)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

#[test]
fn every_corpus_entry_replays_to_its_verdict_class() {
    let entries = load_entries();
    assert!(
        entries.len() >= 5,
        "corpus went missing: only {} entries",
        entries.len()
    );
    for (path, entry) in entries {
        let (program, check) = corpus_program(&entry.program)
            .unwrap_or_else(|| panic!("{}: unknown program {:?}", path.display(), entry.program));
        let replay = Explorer::exhaustive().replay(&program, &entry.schedule);
        assert_eq!(
            VerdictClass::of_checked_replay(&replay.end, check),
            entry.verdict,
            "{}: schedule no longer reproduces, got {:?}",
            path.display(),
            replay.end
        );
    }
}

#[test]
fn every_corpus_bug_is_rediscovered_exhaustively() {
    for (path, entry) in load_entries() {
        let (program, check) = corpus_program(&entry.program)
            .unwrap_or_else(|| panic!("{}: unknown program {:?}", path.display(), entry.program));
        for mode in [DporMode::Source, DporMode::Tree] {
            let v = Explorer::exhaustive()
                .with_dpor(mode)
                .check(&program, check);
            assert_eq!(
                VerdictClass::of(&v),
                entry.verdict,
                "{}: {mode} search must rediscover the bug, got {v:?}",
                path.display()
            );
        }
    }
}

/// Rebuilds every corpus file from a fresh deterministic fuzz campaign
/// (seed 1991, shrinking on). Ignored by default — run explicitly after
/// adding a registry program or changing the fuzzer.
#[test]
#[ignore = "regenerates tests/shrunk_corpus/ from fresh fuzz campaigns"]
fn regenerate() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for name in corpus_program_names() {
        let (program, check) = corpus_program(name).expect("registry name");
        let report = Fuzzer::new(1991, 20_000, Strategy::default()).run(&program, check);
        let text = report
            .corpus_entry(name)
            .unwrap_or_else(|| panic!("{name}: fuzzing found no failure to check in"));
        let path = dir.join(format!("{name}.corpus"));
        std::fs::write(&path, text).expect("write corpus file");
        println!("wrote {}", path.display());
    }
}
