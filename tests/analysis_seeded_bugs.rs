//! Seeded-bug regression suite for the analysis layer.
//!
//! Each detector in the interleave checker is pinned against a kernel with
//! a deliberately planted bug of the class it exists to catch — and against
//! the shipped (correct) kernels, which must stay clean:
//!
//! * **race detector** — a check-then-set lock whose acquire is a separate
//!   observe and claim (the classic missing-atomicity bug) must surface as
//!   [`Verdict::Race`] on the critical-section data accesses;
//! * **deadlock detector** — a sense-reversing barrier whose release
//!   condition is off by one (waits for an arrival count the counter never
//!   reaches) must surface as [`Verdict::Deadlock`];
//! * **lockdep** — an AB/BA two-lock program must produce a lock-order
//!   cycle even when only serial schedules are explored (no schedule
//!   deadlocks, the *graph* does), and an actual deadlock once preemptions
//!   are allowed;
//! * **bounded-bypass** — the test-and-set family must starve a waiter;
//!   every FIFO lock in the registry must pass the same bound;
//! * **sleep-set reduction** — must cut run counts at least 2× on the lock
//!   suite while reaching the same (complete, passing) verdict;
//! * **lost-wakeup detector** — a flag handshake that wakes *before*
//!   publishing, and an eventcount whose advance forgets its wake, must
//!   both surface as [`Verdict::LostWakeup`]; the corrected versions of
//!   the same programs must pass exhaustively.

use interleave::harness::{check_barrier, check_lock, check_lock_bypass};
use interleave::{Explorer, Program, Verdict};
use kernels::barriers::{BarrierKernel, BarrierState};
use kernels::lockdep::InstrumentedLock;
use kernels::locks::ticket::TicketLock;
use kernels::locks::{lock_by_name, LockKernel};
use kernels::{LockOrderGraph, Region, SyncCtx};
use std::sync::Arc;

/// Seeded bug #1: acquire observes the lock word free, *then* claims it
/// with a separate store — the window between the two admits two owners.
/// On hardware this is the bug you get by "optimizing away" the atomic RMW.
#[derive(Debug)]
struct CheckThenSetLock;

impl LockKernel for CheckThenSetLock {
    fn name(&self) -> &'static str {
        "check-then-set"
    }
    fn lines_needed(&self, _nprocs: usize) -> usize {
        1
    }
    fn acquire(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64) -> u64 {
        let word = region.slot(0);
        ctx.spin_until(word, 0); // observe free...
        ctx.store(word, 1); // ...then claim: not atomic.
        0
    }
    fn release(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64, _token: u64) {
        ctx.store(region.slot(0), 0);
    }
}

/// Seeded bug #2: central sense-reversing barrier whose gate condition is
/// off by one — it waits for `nprocs` *prior* arrivals, but the last
/// arriver only ever sees `nprocs - 1`. Nobody opens the gate.
#[derive(Debug)]
struct OffByOneBarrier;

impl BarrierKernel for OffByOneBarrier {
    fn name(&self) -> &'static str {
        "central-off-by-one"
    }
    fn lines_needed(&self, _nprocs: usize) -> usize {
        2
    }
    fn arrive(&self, ctx: &mut dyn SyncCtx, region: &Region, st: &mut BarrierState) {
        let p = ctx.nprocs() as u64;
        let next_epoch = st.round + 1;
        let arrived = ctx.fetch_add(region.slot(0), 1);
        if arrived == p {
            // Unreachable: `arrived` is the count *before* this arrival,
            // so it tops out at p - 1. The correct condition is p - 1.
            ctx.store(region.slot(0), 0);
            ctx.store(region.slot(1), next_epoch);
        } else {
            ctx.spin_until(region.slot(1), next_epoch);
        }
        st.round = next_epoch;
    }
}

/// Seeded bug #3: a flag handshake whose waker issues the futex wake
/// *before* publishing the flag. The waiter can read the stale flag, the
/// waker can fire its wake into an empty queue and then publish, and the
/// waiter then parks on a compare that still succeeds — asleep forever
/// with the flag already set. The `fixed` variant publishes first, which
/// the waiter's compare-and-block makes airtight.
fn flag_handshake_program(fixed: bool) -> Program {
    Program::new(2, 1, move |ctx| {
        if ctx.pid() == 0 {
            let mut cur = ctx.load(0);
            while cur == 0 {
                cur = ctx.futex_wait(0, cur);
            }
        } else if fixed {
            ctx.store(0, 1);
            ctx.futex_wake(0, usize::MAX);
        } else {
            ctx.futex_wake(0, usize::MAX); // bug: wake into an empty queue...
            ctx.store(0, 1); // ...then publish, too late for a parked waiter.
        }
    })
}

/// Seeded bug #4: a blocking eventcount whose `advance` increments the
/// count but forgets the wake — the missed-advance bug. Waiters that
/// parked on the old count have no spin fallback; only the wake the
/// advancer never sends could release them.
fn eventcount_advance_program(fixed: bool) -> Program {
    Program::new(3, 1, move |ctx| {
        if ctx.pid() < 2 {
            // await_at_least(1)
            loop {
                let cur = ctx.load(0);
                if cur >= 1 {
                    break;
                }
                ctx.futex_wait(0, cur);
            }
        } else {
            ctx.fetch_add(0, 1); // advance...
            if fixed {
                ctx.futex_wake(0, usize::MAX); // ...must wake every waiter.
            }
        }
    })
}

#[test]
fn lost_wakeup_detector_flags_wake_before_publish() {
    let verdict = Explorer::exhaustive().check(&flag_handshake_program(false), |_| Ok(()));
    match verdict {
        Verdict::LostWakeup {
            ref parked,
            ref schedule,
            ..
        } => {
            assert_eq!(parked.as_slice(), &[(0, 0)], "the waiter sleeps on word 0");
            // The recorded schedule must replay to the same end state.
            let replay = Explorer::exhaustive().replay(&flag_handshake_program(false), schedule);
            assert!(
                matches!(replay.end, interleave::ReplayEnd::LostWakeup(ref p) if p == parked),
                "replay must reproduce the lost wakeup, got {:?}",
                replay.end
            );
        }
        ref other => panic!("wake-before-publish must lose a wakeup, got {other:?}"),
    }
}

#[test]
fn fixed_flag_handshake_passes_exhaustively() {
    let verdict = Explorer::exhaustive().check(&flag_handshake_program(true), |_| Ok(()));
    verdict.expect_pass("publish-then-wake handshake");
    assert!(verdict.stats().complete, "search must be exhaustive");
}

#[test]
fn lost_wakeup_detector_flags_missed_advance() {
    let verdict = Explorer::exhaustive().check(&eventcount_advance_program(false), |_| Ok(()));
    match verdict {
        Verdict::LostWakeup { ref parked, .. } => {
            assert!(!parked.is_empty());
            for &(pid, addr) in parked {
                assert!(pid < 2, "only awaiters can be stranded, got thread {pid}");
                assert_eq!(addr, 0, "awaiters sleep on the count word");
            }
        }
        ref other => panic!("wakeless advance must strand its waiters, got {other:?}"),
    }
}

#[test]
fn fixed_eventcount_advance_passes_exhaustively() {
    let verdict = Explorer::exhaustive().check(&eventcount_advance_program(true), |_| Ok(()));
    verdict.expect_pass("advance with wake-all");
    assert!(verdict.stats().complete, "search must be exhaustive");
}

#[test]
fn race_detector_flags_check_then_set_lock() {
    let v = check_lock(Arc::new(CheckThenSetLock), 2, 1, Explorer::exhaustive());
    match v {
        Verdict::Race {
            ref report,
            ref schedule,
            ..
        } => {
            assert!(!schedule.is_empty(), "race must carry its schedule");
            // The racing accesses are the two threads' counter increments.
            assert_ne!(report.prior.pid, report.current.pid);
        }
        ref other => panic!("check-then-set must be a data race, got {other:?}"),
    }
}

#[test]
fn race_schedule_replays_deterministically() {
    let explorer = Explorer::exhaustive();
    let v = check_lock(Arc::new(CheckThenSetLock), 2, 1, explorer);
    let schedule = v.schedule().expect("violation carries schedule").to_vec();
    let program = interleave::harness::lock_program(Arc::new(CheckThenSetLock), 2, 1);
    let replay = explorer.replay(&program, &schedule);
    assert!(
        matches!(replay.end, interleave::ReplayEnd::Race(_)),
        "replaying the recorded schedule must reproduce the race, got {:?}",
        replay.end
    );
    assert!(!replay.ops.is_empty());
}

#[test]
fn deadlock_detector_flags_off_by_one_barrier() {
    let v = check_barrier(Arc::new(OffByOneBarrier), 2, 1, Explorer::exhaustive());
    match v {
        Verdict::Deadlock { ref blocked, .. } => {
            assert_eq!(blocked.len(), 2, "both threads wedge at the gate");
        }
        ref other => panic!("off-by-one barrier must deadlock, got {other:?}"),
    }
}

/// Builds the AB/BA program: two ticket locks, thread 0 nests A→B,
/// thread 1 nests B→A. Lock events feed `graph` under ids A=0, B=1.
fn ab_ba_program(graph: &Arc<LockOrderGraph>) -> Program {
    let region_a = Region::new(0, 2, TicketLock.lines_needed(2));
    let region_b = Region::new(region_a.end(), 2, TicketLock.lines_needed(2));
    let a_id = graph.register("A");
    let b_id = graph.register("B");
    let lock_a = InstrumentedLock::new(TicketLock, a_id);
    let lock_b = InstrumentedLock::new(TicketLock, b_id);
    Program::new(2, region_b.end(), move |ctx| {
        let mut ps = 0u64;
        let (first, second, r1, r2) = if ctx.pid() == 0 {
            (&lock_a, &lock_b, &region_a, &region_b)
        } else {
            (&lock_b, &lock_a, &region_b, &region_a)
        };
        let t1 = first.acquire(ctx, r1, &mut ps);
        let t2 = second.acquire(ctx, r2, &mut ps);
        second.release(ctx, r2, &mut ps, t2);
        first.release(ctx, r1, &mut ps, t1);
    })
    .with_lockdep(Arc::clone(graph))
}

#[test]
fn lockdep_finds_ab_ba_inversion_without_any_deadlocking_schedule() {
    let graph = Arc::new(LockOrderGraph::new());
    let program = ab_ba_program(&graph);
    // Zero preemptions: each thread runs its nested pair to completion, so
    // no explored schedule can deadlock...
    let v = Explorer::bounded(0).check(&program, |_| Ok(()));
    v.expect_pass("serial AB/BA schedules complete fine");
    // ...yet the acquisition graph still carries A→B and B→A.
    let cycles = graph.cycles();
    assert_eq!(cycles.len(), 1, "exactly one inversion cycle");
    assert!(
        std::panic::catch_unwind(|| graph.assert_acyclic("ab-ba")).is_err(),
        "assert_acyclic must fail on the inversion"
    );
}

#[test]
fn deadlock_detector_finds_the_ab_ba_deadlock_with_preemption() {
    let graph = Arc::new(LockOrderGraph::new());
    let program = ab_ba_program(&graph);
    let v = Explorer::bounded(1).check(&program, |_| Ok(()));
    match v {
        Verdict::Deadlock { ref blocked, .. } => assert_eq!(blocked.len(), 2),
        ref other => panic!("AB/BA must deadlock once preempted, got {other:?}"),
    }
}

#[test]
fn test_and_set_family_starves_a_waiter() {
    for name in ["tas", "tas-backoff", "ttas"] {
        let lock: Arc<dyn LockKernel + Send + Sync> = lock_by_name(name).unwrap().into();
        let explorer = Explorer::bounded(2).with_max_steps(80).with_max_runs(20_000);
        // Three iterations: the bypass count only arms once the waiter is
        // past its doorway, so the overtaker needs three wins to exceed a
        // bound of one from the victim's perspective.
        let v = check_lock_bypass(lock, 2, 3, 1, explorer);
        assert!(
            matches!(v, Verdict::Starvation { .. }),
            "{name} must admit unbounded bypass, got {v:?}"
        );
    }
}

#[test]
fn fifo_locks_satisfy_bounded_bypass() {
    for name in [
        "ticket",
        "ticket-prop",
        "anderson",
        "graunke-thakkar",
        "clh",
        "mcs",
        "qsm",
    ] {
        let lock: Arc<dyn LockKernel + Send + Sync> = lock_by_name(name).unwrap().into();
        let explorer = Explorer::bounded(2).with_max_steps(80).with_max_runs(20_000);
        let v = check_lock_bypass(lock, 2, 2, 1, explorer);
        v.expect_pass(&format!("{name} bounded bypass"));
    }
}

#[test]
fn every_shipped_lock_is_race_free_under_lockdep_instrumentation() {
    // One shared graph across the whole registry: cross-lock ordering
    // stays acyclic because the counter workload never nests locks.
    let graph = Arc::new(LockOrderGraph::new());
    for lock in kernels::locks::all_locks() {
        let name = lock.name();
        let lock: Arc<dyn LockKernel + Send + Sync> = lock.into();
        let explorer = Explorer::bounded(2).with_max_steps(60).with_max_runs(6_000);
        let v = interleave::harness::check_lock_with_lockdep(lock, 2, 1, explorer, &graph);
        v.expect_pass(&format!("{name} under instrumentation"));
    }
    graph.assert_acyclic("shipped lock registry");
    assert_eq!(graph.len(), kernels::locks::all_locks().len());
}

#[test]
fn sleep_sets_halve_the_lock_suite_run_counts() {
    // The acceptance bar: ≥2× fewer runs at equal (complete) coverage on
    // exhaustively explorable members of the lock suite.
    for name in ["ticket", "mcs", "qsm"] {
        let reduced = check_lock(
            lock_by_name(name).unwrap().into(),
            2,
            1,
            Explorer::exhaustive(),
        );
        let full = check_lock(
            lock_by_name(name).unwrap().into(),
            2,
            1,
            Explorer::exhaustive().without_reduction(),
        );
        reduced.expect_pass(&format!("{name} reduced"));
        full.expect_pass(&format!("{name} unreduced"));
        assert!(
            reduced.stats().complete && full.stats().complete,
            "{name}: both searches must be complete"
        );
        assert!(
            reduced.stats().runs * 2 <= full.stats().runs,
            "{name}: expected ≥2× reduction, got {} vs {} runs",
            reduced.stats().runs,
            full.stats().runs
        );
    }
}
