//! Real-thread stress of the **async** lock service: million-key churn
//! through future-returning locks, then cancellation storms — randomly
//! timed-out/dropped futures racing blocking threads on the *same* hot
//! keys — asserting after every storm round that
//!
//!   - machine-wide futex accounting balances (`parks == wakes ==
//!     resumes`): a dropped future either removed its waiter (cancel
//!     self-accounts the wake) or inherited a published grant and passed
//!     the baton on, never stranding a count,
//!   - the table drains to zero live keys: every future's slot pin was
//!     released, including futures dropped mid-wait,
//!
//! and at teardown that slab capacity stayed bounded by peak liveness.
//!
//! The futex counters are process-global, so everything here lives in
//! ONE `#[test]` fn — a second concurrently-running test that parks
//! would make the `since()` deltas meaningless.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// A waker that records the wake in a flag — the manual-polling harness
/// the cancellation storms use to abandon futures at arbitrary protocol
/// stages.
struct FlagWaker(AtomicBool);

impl std::task::Wake for FlagWaker {
    fn wake(self: Arc<Self>) {
        self.0.store(true, Ordering::SeqCst);
    }
}

fn flag_waker() -> (Waker, Arc<FlagWaker>) {
    let flag = Arc::new(FlagWaker(AtomicBool::new(false)));
    (Waker::from(Arc::clone(&flag)), flag)
}

/// Cheap deterministic per-thread randomness without pulling in a
/// generator: full-avalanche hash of a counter.
fn rnd(seed: u64, i: u64) -> u64 {
    parking::futex::mix64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(i))
}

#[test]
fn async_churn_and_cancellation_storms_balance() {
    // ---- Phase 1: million-key churn through the async fast path ----
    // A fresh key per request, driven to completion with `block_on`:
    // attach → first-poll CAS → detach, a million times over, mixed with
    // a shared band where async and blocking lockers actually park.
    let before = parking::futex::totals();
    let threads = 8u64;
    let private_keys = 128 * 1024u64;
    let shared_keys = 16u64;
    let shared_rounds = 1_000u64;
    let svc = Arc::new(service::AsyncLockService::with_shards(64));
    let hits = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for id in 0..threads {
            let svc = Arc::clone(&svc);
            let hits = Arc::clone(&hits);
            s.spawn(move || {
                let base = 1 + id * private_keys;
                for k in 0..private_keys {
                    let key = parking::futex::mix64(base + k);
                    let _g = service::block_on(svc.lock(key));
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                for i in 0..shared_rounds {
                    let key = u64::MAX - (i.wrapping_mul(id + 1) % shared_keys);
                    // Alternate the protocol: even iterations async,
                    // odd ones through the sync front end on the same
                    // slot words.
                    if i % 2 == 0 {
                        let g = service::block_on(svc.lock(key));
                        std::hint::black_box(&g);
                    } else {
                        let g = svc.sync().lock(key);
                        std::hint::black_box(&g);
                    }
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(
        hits.load(Ordering::Relaxed),
        threads * (private_keys + shared_rounds)
    );
    assert!(
        threads * private_keys >= 1_000_000,
        "stress must churn at least a million distinct keys"
    );
    let stats = svc.stats();
    assert_eq!(stats.live, 0, "all keys must detach after churn: {stats:?}");
    let futex = parking::futex::totals().since(&before);
    assert!(
        futex.balanced(),
        "churn accounting unbalanced: parks {} wakes {} resumes {}",
        futex.parks,
        futex.wakes,
        futex.resumes
    );

    // ---- Phase 2: 100 cancellation-storm rounds ----
    // Each round mixes blocking lockers, completing async lockers, and
    // manually-polled futures that are dropped after a bounded number of
    // polls (a timeout) at whatever protocol stage they reached —
    // unpolled, spinning, parked, or woken-but-not-resumed — all on the
    // same hot keys, plus the same treatment for semaphore tickets.
    // Every round must end balanced with the table drained.
    for round in 0..100u64 {
        let before = parking::futex::totals();
        let sem = Arc::new(service::WaitingArraySemaphore::new(2, 4));
        std::thread::scope(|s| {
            // Blocking lockers on the hot keys.
            for id in 0..2u64 {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let key = u64::MAX - (rnd(round * 10 + id, i) % 8);
                        let g = svc.sync().lock(key);
                        std::hint::black_box(&g);
                    }
                });
            }
            // Async lockers that run to completion.
            {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let key = u64::MAX - (rnd(round * 10 + 2, i) % 8);
                        drop(service::block_on(svc.lock(key)));
                    }
                });
            }
            // Async lockers that time out: poll a few times, then drop.
            for id in 3..5u64 {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let r = rnd(round * 10 + id, i);
                        let key = u64::MAX - (r % 8);
                        let mut fut = svc.lock(key);
                        let polls = (r >> 8) % 3; // 0 = dropped unpolled
                        let mut granted = None;
                        for _ in 0..polls {
                            let (waker, _flag) = flag_waker();
                            let poll =
                                Pin::new(&mut fut).poll(&mut Context::from_waker(&waker));
                            if let Poll::Ready(g) = poll {
                                granted = Some(g);
                                break;
                            }
                            std::thread::yield_now();
                        }
                        drop(fut);
                        drop(granted);
                    }
                });
            }
            // Semaphore: a blocking acquire/release pairer...
            {
                let sem = Arc::clone(&sem);
                s.spawn(move || {
                    for _ in 0..100 {
                        sem.acquire();
                        std::hint::black_box(&sem);
                        sem.release();
                    }
                });
            }
            // ...racing async tickets that are cancelled on "timeout",
            // and a batch releaser sweeping grants over them.
            {
                let sem = Arc::clone(&sem);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let mut fut = sem.acquire_async();
                        let polls = rnd(round * 10 + 5, i) % 3;
                        let mut admitted = false;
                        for _ in 0..polls {
                            let (waker, _flag) = flag_waker();
                            if Pin::new(&mut fut)
                                .poll(&mut Context::from_waker(&waker))
                                .is_ready()
                            {
                                admitted = true;
                                break;
                            }
                            std::thread::yield_now();
                        }
                        drop(fut);
                        if admitted {
                            sem.release();
                        }
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(
            stats.live, 0,
            "round {round}: slots leaked after the cancellation storm: {stats:?}"
        );
        let futex = parking::futex::totals().since(&before);
        assert!(
            futex.balanced(),
            "round {round}: unbalanced after the storm: parks {} wakes {} resumes {}",
            futex.parks,
            futex.wakes,
            futex.resumes
        );
    }

    // Capacity stayed bounded by peak concurrent liveness (rounded up to
    // whole slabs per shard), not by the million keys churned.
    let stats = svc.stats();
    assert!(
        stats.capacity <= stats.peak_live + 64 * stats.shards,
        "slab capacity {} not bounded by peak liveness {} ({} shards)",
        stats.capacity,
        stats.peak_live,
        stats.shards
    );
}
