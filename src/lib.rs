//! # syncmech — umbrella crate for the ICPP 1991 reproduction
//!
//! Re-exports every crate of the workspace so downstream users (and the
//! `examples/` and `tests/` at the repository root) can depend on one name.
//!
//! * [`qsm`] — the Queueing Synchronization Mechanism and all real-hardware
//!   baselines (start here: `qsm::Mutex`, `qsm::QsmBarrier`,
//!   `qsm::EventCount`, `qsm::RwLock`, `qsm::Semaphore`).
//! * [`memsim`] — the simulated 1991 bus/NUMA multiprocessor.
//! * [`kernels`] — the algorithms over the abstract memory API.
//! * [`interleave`] — the schedule-exploring model checker.
//! * [`workloads`] — the experiment drivers behind each figure.
//! * [`simcore`] — deterministic RNG, statistics, and table rendering.
//!
//! See README.md for the quickstart, DESIGN.md for the reconstruction's
//! scope and decisions, and EXPERIMENTS.md for paper-vs-measured results.

pub use interleave;
pub use kernels;
pub use memsim;
pub use qsm;
pub use simcore;
pub use workloads;
