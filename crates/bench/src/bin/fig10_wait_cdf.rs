//! fig10 — lock wait-time CDF from the event-traced critical-section
//! workload: wait-cycle quantiles at fixed percentiles, per lock.
//!
//! ```text
//! cargo run -p bench --release --bin fig10_wait_cdf [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig10");
}
