//! fig2 — lock passing time vs processor count on the NUMA machine.
//!
//! Same sweep as fig1 on the distributed machine: hot-module queuing
//! replaces bus arbitration as the serializing resource, and the queue
//! locks' advantage appears at even lower processor counts.
//!
//! ```text
//! cargo run -p bench --release --bin fig2_lock_scaling_numa [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig2");
}
