//! fig2 — lock passing time vs processor count on the NUMA machine.
//!
//! Same sweep as fig1 on the distributed machine: hot-module queuing
//! replaces bus arbitration as the serializing resource, and the queue
//! locks' advantage appears at even lower processor counts.
//!
//! ```text
//! cargo run -p bench --release --bin fig2_lock_scaling_numa [-- --csv]
//! ```

use bench::{emit_final_ratio, emit_series, Opts};
use workloads::sweeps::{lock_scaling, MachineKind};

fn main() {
    let opts = Opts::from_env();
    let series = lock_scaling(MachineKind::Numa, &opts.procs(), opts.iters());
    emit_series(&opts, "Fig 2: lock passing time vs P (NUMA machine)", &series);
    if !opts.csv {
        emit_final_ratio(&series, "tas", "qsm");
    }
}
