//! fig8 — real-hardware microbenchmark of the `qsm` crate.
//!
//! Measures the std-atomics implementations with actual OS threads and
//! wall-clock time. **Caveat recorded in EXPERIMENTS.md:** this
//! reproduction's host has a single core, so contended throughput measures
//! scheduler hand-off, not coherence traffic; the simulator figures
//! (fig1–fig3) own the scaling claims. Uncontended latency is meaningful
//! here and mirrors table1's ordering.
//!
//! ```text
//! cargo run -p bench --release --bin fig8_realhw [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig8");
}
