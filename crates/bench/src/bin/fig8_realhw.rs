//! fig8 — real-hardware microbenchmark of the `qsm` crate.
//!
//! Measures the std-atomics implementations with actual OS threads and
//! wall-clock time. **Caveat recorded in EXPERIMENTS.md:** this
//! reproduction's host has a single core, so contended throughput measures
//! scheduler hand-off, not coherence traffic; the simulator figures
//! (fig1–fig3) own the scaling claims. Uncontended latency is meaningful
//! here and mirrors table1's ordering.
//!
//! ```text
//! cargo run -p bench --release --bin fig8_realhw [-- --csv]
//! ```

use bench::Opts;
use simcore::Table;
use workloads::realhw::sweep;

fn main() {
    let opts = Opts::from_env();
    let threads = if opts.quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    };
    let iters = if opts.quick { 20_000 } else { 200_000 };
    let rows = sweep(&threads, iters);
    let mut header = vec!["lock".to_string(), "uncontended ns/op".to_string()];
    for t in &threads {
        header.push(format!("CS/ms @{t}T"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs).with_title(format!(
        "Fig 8: real hardware ({} host cores), {iters} iterations",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    for row in rows {
        let mut cells = vec![row.name.to_string(), format!("{:.0}", row.uncontended_ns)];
        for (_, thr) in &row.throughput {
            cells.push(format!("{thr:.0}"));
        }
        table.row_owned(cells);
    }
    if opts.csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
