fn main() {
    bench::figures::run_main("fig12");
}
