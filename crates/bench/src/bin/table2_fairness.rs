//! table2 — fairness at P = 32: per-processor service distribution.
//!
//! Queue locks (anderson, graunke-thakkar, clh, mcs, **qsm**) serve in
//! FIFO order: coefficient of variation near 0, Jain's index near 1, and a
//! worst denial run of about one queue length. TAS-family locks admit long
//! denial runs (the released holder or a lucky neighbour often wins again).
//!
//! ```text
//! cargo run -p bench --release --bin table2_fairness [-- --csv]
//! ```

use bench::Opts;
use kernels::locks::all_locks;
use simcore::table::{fmt_cell, Table};
use workloads::fairness::{run, FairnessConfig};
use workloads::sweeps::MachineKind;

fn main() {
    let opts = Opts::from_env();
    let nprocs = if opts.quick { 4 } else { 32 };
    let cfg = FairnessConfig {
        nprocs,
        total_cs: nprocs * if opts.quick { 8 } else { 64 },
        hold: 30,
    };
    let mut table = Table::new(&[
        "lock",
        "cv(counts)",
        "jain",
        "max denial (hand-offs)",
        "min/max count",
    ])
    .with_title(format!(
        "Table 2: fairness under continuous contention (bus, P = {nprocs}, {} CS)",
        cfg.total_cs
    ));
    for lock in all_locks() {
        let machine = MachineKind::Bus.machine(nprocs);
        let r = run(&machine, lock.as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", lock.name()));
        let min = r.counts.iter().min().copied().unwrap_or(0);
        let max = r.counts.iter().max().copied().unwrap_or(0);
        table.row_owned(vec![
            lock.name().to_string(),
            format!("{:.3}", r.cv),
            format!("{:.3}", r.jain),
            r.max_denial.to_string(),
            format!("{}/{}", fmt_cell(min as f64), fmt_cell(max as f64)),
        ]);
    }
    if opts.csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
