//! table2 — fairness at P = 32: per-processor service distribution.
//!
//! Queue locks (anderson, graunke-thakkar, clh, mcs, **qsm**) serve in
//! FIFO order: coefficient of variation near 0, Jain's index near 1, and a
//! worst denial run of about one queue length. TAS-family locks admit long
//! denial runs (the released holder or a lucky neighbour often wins again).
//!
//! ```text
//! cargo run -p bench --release --bin table2_fairness [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("table2");
}
