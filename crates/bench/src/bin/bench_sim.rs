//! bench_sim — regenerates every figure **in one process** and records the
//! wall-clock cost per figure in a machine-readable `BENCH_sim.json`.
//!
//! This is the measurement the tentpole perf work is judged by: rendering
//! all figures in a single process is exactly what a full regeneration
//! does, minus per-binary process spawns, and it shares one warm worker
//! pool across every simulation. Per-figure progress goes to stderr;
//! stdout reports only where the JSON landed.
//!
//! Since schema v2 every deterministic figure is rendered **twice** — once
//! serially (one sweep thread, no fragment replay) and once with both
//! parallelism axes enabled (cross-cell sweep threads × intra-run fragment
//! replay) — and the two outputs are compared byte for byte before the
//! speedup is reported. A mismatch is a determinism bug and fails the run.
//!
//! Schema v3 adds the resolved `service_metrics` mode to the report
//! header: the table7 rows prove telemetry never perturbs the virtual
//! schedule, but a perf report should still say what mode the service
//! figures ran under.
//!
//! ```text
//! cargo run -p bench --release --bin bench_sim [-- --quick|--full] [--out PATH]
//! ```

use bench::figures::FIGURES;
use bench::Opts;
use std::fmt::Write as _;
use std::time::Instant;

const USAGE: &str = "\
usage: bench_sim [--quick | --full] [--only IDS] [--out PATH] [--fragments K]
                 [--trace-out PATH] [--trace-workload bus|oversub] [--help]

  --fragments K          fragment length in simulated cycles for the
                         fragment-parallel pass (positive; overrides
                         SYNCMECH_REPLAY_FRAGMENT; default 25000)
  --trace-out PATH       also export a Chrome trace-event JSON timeline of
                         one traced workload (validated before writing);
                         the export runs fragment-parallel and stitches the
                         per-fragment rings
  --trace-workload KIND  which workload to trace: `bus` (dedicated bus
                         machine, qsm) or `oversub` (the fig9
                         oversubscription machine, qsm-block-park; default)
  --quick     reduced sweeps (the CI perf-smoke configuration)
  --full      full sweeps (default; the publication figures)
  --only IDS  comma-separated figure ids to run (default: all)
  --out PATH  where to write the JSON report (default BENCH_sim.json)
  --help      show this help

environment:
  SYNCMECH_SWEEP_THREADS=N    host threads for the cross-cell sweep fan-out
  SYNCMECH_REPLAY_FRAGMENT=K  fragment length in simulated cycles
  SYNCMECH_REPLAY_WORKERS=N   host threads for the fragment replay fan-out";

struct Args {
    quick: bool,
    only: Option<Vec<String>>,
    out: String,
    fragments: Option<u64>,
    trace_out: Option<String>,
    trace_workload: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        only: None,
        out: "BENCH_sim.json".to_string(),
        fragments: None,
        trace_out: None,
        trace_workload: "oversub".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--full" => args.quick = false,
            "--only" => match it.next() {
                Some(ids) => {
                    args.only = Some(ids.split(',').map(str::to_string).collect());
                }
                None => {
                    eprintln!("error: --only needs a comma-separated id list");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(path) => args.out = path,
                None => {
                    eprintln!("error: --out needs a path");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--fragments" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(k)) if k > 0 => args.fragments = Some(k),
                _ => {
                    eprintln!("error: --fragments needs a positive cycle count");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => args.trace_out = Some(path),
                None => {
                    eprintln!("error: --trace-out needs a path");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--trace-workload" => match it.next() {
                Some(kind) if kind == "bus" || kind == "oversub" => args.trace_workload = kind,
                _ => {
                    eprintln!("error: --trace-workload must be `bus` or `oversub`");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unrecognized argument `{other}`");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Default fragment length. Snapshot capture clones the full machine
/// state (P caches + memory + engine queues), so short fragments are
/// dominated by cloning — 25k cycles costs ~4x on the P = 64 figures,
/// 100k cycles ~1.3x — while the large figure cells still split into
/// enough fragments to load a small host's cores.
const DEFAULT_FRAGMENT: u64 = 100_000;

fn main() {
    let args = parse_args();
    let opts = Opts {
        csv: false,
        quick: args.quick,
    };
    let mode = if args.quick { "quick" } else { "full" };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = workloads::sweeps::sweep_threads();
    let replay_workers = memsim::replay::replay_workers_env();
    // Resolve (and strictly validate) the telemetry knob up front: a bad
    // SYNCMECH_SERVICE_METRICS must abort before an hour of rendering,
    // not when the first service figure constructs a table.
    let service_metrics = {
        let var = std::env::var("SYNCMECH_SERVICE_METRICS").ok();
        match service::service_metrics_from(var.as_deref()) {
            Ok(mode) => mode.label(),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    };

    // Fragment length: CLI flag, then the environment knob (validated
    // strictly — a bad value must abort, not silently disable replay),
    // then the default.
    let env_fragment = {
        let var = std::env::var("SYNCMECH_REPLAY_FRAGMENT").ok();
        match memsim::replay::fragment_cycles_from(var.as_deref()) {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    };
    let fragment = args.fragments.or(env_fragment).unwrap_or(DEFAULT_FRAGMENT);
    let sweep_threads_env = std::env::var("SYNCMECH_SWEEP_THREADS").ok();

    let selected: Vec<_> = FIGURES
        .iter()
        .filter(|f| args.only.as_ref().is_none_or(|ids| ids.iter().any(|i| i == f.id)))
        .collect();
    if selected.is_empty() {
        eprintln!("error: --only matched no figure ids");
        std::process::exit(2);
    }

    // Environment presets for the two passes. Renders read the knobs
    // freshly per run, and nothing else runs concurrently with a render's
    // setup, so toggling the process environment between passes is safe.
    let set_serial_env = || {
        std::env::set_var("SYNCMECH_SWEEP_THREADS", "1");
        std::env::remove_var("SYNCMECH_REPLAY_FRAGMENT");
    };
    let set_parallel_env = || {
        match &sweep_threads_env {
            Some(v) => std::env::set_var("SYNCMECH_SWEEP_THREADS", v),
            None => std::env::remove_var("SYNCMECH_SWEEP_THREADS"),
        }
        std::env::set_var("SYNCMECH_REPLAY_FRAGMENT", fragment.to_string());
    };

    let mut figure_entries = String::new();
    let mut serial_ms = 0.0f64;
    let mut fragment_ms = 0.0f64;
    let total_start = Instant::now();
    for (i, figure) in selected.iter().enumerate() {
        let sep = if i == 0 { "" } else { ",\n" };
        if figure.deterministic {
            set_serial_env();
            let start = Instant::now();
            let serial = (figure.render)(&opts);
            let serial_wall = start.elapsed().as_secs_f64() * 1e3;

            set_parallel_env();
            let start = Instant::now();
            let parallel = (figure.render)(&opts);
            let fragment_wall = start.elapsed().as_secs_f64() * 1e3;

            if serial != parallel {
                eprintln!(
                    "error: {} diverged between the serial and fragment-parallel \
                     renders — fragment replay is not byte-identical",
                    figure.id
                );
                std::process::exit(1);
            }
            serial_ms += serial_wall;
            fragment_ms += fragment_wall;
            let speedup = serial_wall / fragment_wall.max(1e-9);
            eprintln!(
                "{:<8} serial {:>9.1} ms   fragments {:>9.1} ms   {speedup:>5.2}x",
                figure.id, serial_wall, fragment_wall
            );
            let _ = write!(
                figure_entries,
                "{sep}    {{\"id\":\"{}\",\"binary\":\"{}\",\"deterministic\":true,\
                 \"serial_wall_ms\":{serial_wall:.1},\"fragment_wall_ms\":{fragment_wall:.1},\
                 \"speedup\":{speedup:.2}}}",
                figure.id, figure.binary
            );
        } else {
            // Real-hardware figures are not a pure function of Opts; they
            // get one plain render and a single wall-clock number.
            set_serial_env();
            let start = Instant::now();
            let rendered = (figure.render)(&opts);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(rendered.len());
            eprintln!("{:<8} {:>9.1} ms (nondeterministic)", figure.id, wall_ms);
            let _ = write!(
                figure_entries,
                "{sep}    {{\"id\":\"{}\",\"binary\":\"{}\",\"deterministic\":false,\
                 \"wall_ms\":{wall_ms:.1}}}",
                figure.id, figure.binary
            );
        }
    }
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;

    let json = format!(
        "{{\n  \"schema\": \"syncmech-bench-sim/v3\",\n  \"mode\": \"{mode}\",\n  \
         \"host_cores\": {host_cores},\n  \"sweep_threads\": {threads},\n  \
         \"replay_workers\": {replay_workers},\n  \"fragment_cycles\": {fragment},\n  \
         \"service_metrics\": \"{service_metrics}\",\n  \
         \"figures\": [\n{figure_entries}\n  ],\n  \
         \"deterministic_serial_wall_ms\": {serial_ms:.1},\n  \
         \"deterministic_fragment_wall_ms\": {fragment_ms:.1},\n  \
         \"total_wall_ms\": {total_ms:.1}\n}}\n"
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: writing {}: {e}", args.out);
        std::process::exit(1);
    }
    println!(
        "wrote {} ({mode} mode, {} figures, {:.1} ms total)",
        args.out,
        selected.len(),
        total_ms
    );

    if let Some(trace_out) = &args.trace_out {
        // The export runs with fragment replay on: the machine records
        // once, replays fragments concurrently, and stitches the
        // per-fragment rings — byte-identical to a sequential traced run
        // (pinned by the golden-trace tests).
        set_parallel_env();
        let trace_json = bench::trace_export::export_trace(&args.trace_workload, args.quick);
        let stats = trace::chrome::validate(&trace_json)
            .unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
        if let Err(e) = std::fs::write(trace_out, &trace_json) {
            eprintln!("error: writing {trace_out}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace OK: wrote {trace_out} ({} workload, {} events, {} tracks, {} spans)",
            args.trace_workload, stats.events, stats.tracks, stats.spans
        );
    }
}
