//! bench_sim — regenerates every figure **in one process** and records the
//! wall-clock cost per figure in a machine-readable `BENCH_sim.json`.
//!
//! This is the measurement the tentpole perf work is judged by: rendering
//! all figures in a single process is exactly what a full regeneration
//! does, minus per-binary process spawns, and it shares one warm worker
//! pool across every simulation. Per-figure progress goes to stderr;
//! stdout reports only where the JSON landed.
//!
//! ```text
//! cargo run -p bench --release --bin bench_sim [-- --quick|--full] [--out PATH]
//! ```

use bench::figures::FIGURES;
use bench::Opts;
use std::fmt::Write as _;
use std::time::Instant;

const USAGE: &str = "\
usage: bench_sim [--quick | --full] [--only IDS] [--out PATH]
                 [--trace-out PATH] [--trace-workload bus|oversub] [--help]

  --trace-out PATH       also export a Chrome trace-event JSON timeline of
                         one traced workload (validated before writing)
  --trace-workload KIND  which workload to trace: `bus` (dedicated bus
                         machine, qsm) or `oversub` (the fig9
                         oversubscription machine, qsm-block-park; default)
  --quick     reduced sweeps (the CI perf-smoke configuration)
  --full      full sweeps (default; the publication figures)
  --only IDS  comma-separated figure ids to run (default: all)
  --out PATH  where to write the JSON report (default BENCH_sim.json)
  --help      show this help";

struct Args {
    quick: bool,
    only: Option<Vec<String>>,
    out: String,
    trace_out: Option<String>,
    trace_workload: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        only: None,
        out: "BENCH_sim.json".to_string(),
        trace_out: None,
        trace_workload: "oversub".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--full" => args.quick = false,
            "--only" => match it.next() {
                Some(ids) => {
                    args.only = Some(ids.split(',').map(str::to_string).collect());
                }
                None => {
                    eprintln!("error: --only needs a comma-separated id list");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(path) => args.out = path,
                None => {
                    eprintln!("error: --out needs a path");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => args.trace_out = Some(path),
                None => {
                    eprintln!("error: --trace-out needs a path");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--trace-workload" => match it.next() {
                Some(kind) if kind == "bus" || kind == "oversub" => args.trace_workload = kind,
                _ => {
                    eprintln!("error: --trace-workload must be `bus` or `oversub`");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unrecognized argument `{other}`");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let opts = Opts {
        csv: false,
        quick: args.quick,
    };
    let mode = if args.quick { "quick" } else { "full" };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = workloads::sweeps::sweep_threads();

    let selected: Vec<_> = FIGURES
        .iter()
        .filter(|f| args.only.as_ref().is_none_or(|ids| ids.iter().any(|i| i == f.id)))
        .collect();
    if selected.is_empty() {
        eprintln!("error: --only matched no figure ids");
        std::process::exit(2);
    }

    let mut figure_entries = String::new();
    let mut deterministic_ms = 0.0f64;
    let total_start = Instant::now();
    for (i, figure) in selected.iter().enumerate() {
        let start = Instant::now();
        let rendered = (figure.render)(&opts);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        // The output itself is checked by the golden test; here it only
        // has to be fully produced.
        std::hint::black_box(rendered.len());
        if figure.deterministic {
            deterministic_ms += wall_ms;
        }
        eprintln!("{:<8} {:>9.1} ms", figure.id, wall_ms);
        let _ = write!(
            figure_entries,
            "{}    {{\"id\":\"{}\",\"binary\":\"{}\",\"deterministic\":{},\"wall_ms\":{:.1}}}",
            if i == 0 { "" } else { ",\n" },
            figure.id,
            figure.binary,
            figure.deterministic,
            wall_ms
        );
    }
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;

    let json = format!(
        "{{\n  \"schema\": \"syncmech-bench-sim/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"host_cores\": {host_cores},\n  \"sweep_threads\": {threads},\n  \
         \"figures\": [\n{figure_entries}\n  ],\n  \
         \"deterministic_wall_ms\": {deterministic_ms:.1},\n  \
         \"total_wall_ms\": {total_ms:.1}\n}}\n"
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: writing {}: {e}", args.out);
        std::process::exit(1);
    }
    println!(
        "wrote {} ({mode} mode, {} figures, {:.1} ms total)",
        args.out,
        selected.len(),
        total_ms
    );

    if let Some(trace_out) = &args.trace_out {
        let trace_json = bench::trace_export::export_trace(&args.trace_workload, args.quick);
        let stats = trace::chrome::validate(&trace_json)
            .unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
        if let Err(e) = std::fs::write(trace_out, &trace_json) {
            eprintln!("error: writing {trace_out}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace OK: wrote {trace_out} ({} workload, {} events, {} tracks, {} spans)",
            args.trace_workload, stats.events, stats.tracks, stats.spans
        );
    }
}
