//! fig5 — barrier episode time vs P on the bus machine.
//!
//! Expected shape: the central counter grows linearly (P serialized RMWs
//! plus a release storm); the log-depth barriers grow slowly — though on a
//! single bus *every* transaction still serializes, so their advantage is
//! modest here and dramatic on the NUMA machine (fig6).
//!
//! ```text
//! cargo run -p bench --release --bin fig5_barrier_bus [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig5");
}
