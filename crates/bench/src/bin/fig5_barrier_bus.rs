//! fig5 — barrier episode time vs P on the bus machine.
//!
//! Expected shape: the central counter grows linearly (P serialized RMWs
//! plus a release storm); the log-depth barriers grow slowly — though on a
//! single bus *every* transaction still serializes, so their advantage is
//! modest here and dramatic on the NUMA machine (fig6).
//!
//! ```text
//! cargo run -p bench --release --bin fig5_barrier_bus [-- --csv]
//! ```

use bench::{emit_final_ratio, emit_series, Opts};
use workloads::sweeps::{barrier_scaling, MachineKind};

fn main() {
    let opts = Opts::from_env();
    let series = barrier_scaling(MachineKind::Bus, &opts.procs(), opts.episodes());
    emit_series(&opts, "Fig 5: barrier episode time vs P (bus machine)", &series);
    if !opts.csv {
        emit_final_ratio(&series, "central", "qsm-tree");
    }
}
