//! fig4 — throughput vs critical-section length at fixed P.
//!
//! The crossover figure: with near-empty critical sections and light
//! contention, the simple locks' lower constant factors win; as hold time
//! (and with it queueing) grows, the queue locks take over. The reproduction
//! target is the existence and ordering of that crossover, not its exact
//! position.
//!
//! ```text
//! cargo run -p bench --release --bin fig4_contention_sweep [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig4");
}
