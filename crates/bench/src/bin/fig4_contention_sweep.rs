//! fig4 — throughput vs critical-section length at fixed P.
//!
//! The crossover figure: with near-empty critical sections and light
//! contention, the simple locks' lower constant factors win; as hold time
//! (and with it queueing) grows, the queue locks take over. The reproduction
//! target is the existence and ordering of that crossover, not its exact
//! position.
//!
//! ```text
//! cargo run -p bench --release --bin fig4_contention_sweep [-- --csv]
//! ```

use bench::{emit_series, Opts};
use workloads::sweeps::{contention_sweep, MachineKind};

fn main() {
    let opts = Opts::from_env();
    let holds: Vec<u64> = if opts.quick {
        vec![0, 64, 256]
    } else {
        vec![0, 8, 16, 32, 64, 128, 256, 512]
    };
    let nprocs = if opts.quick { 4 } else { 16 };
    let iters = if opts.quick { 4 } else { 10 };
    let series = contention_sweep(MachineKind::Bus, nprocs, &holds, iters);
    emit_series(
        &opts,
        &format!("Fig 4: throughput vs critical-section hold time (bus, P = {nprocs})"),
        &series,
    );
}
