//! fig6 — barrier episode time vs P on the NUMA machine.
//!
//! The hot-spot figure: the central barrier's counter saturates one memory
//! module while the tree/dissemination/tournament barriers spread their
//! flags across modules and scale logarithmically; the QSM barrier tracks
//! the combining tree.
//!
//! ```text
//! cargo run -p bench --release --bin fig6_barrier_numa [-- --csv]
//! ```

use bench::{emit_final_ratio, emit_series, Opts};
use workloads::sweeps::{barrier_scaling, MachineKind};

fn main() {
    let opts = Opts::from_env();
    let series = barrier_scaling(MachineKind::Numa, &opts.procs(), opts.episodes());
    emit_series(&opts, "Fig 6: barrier episode time vs P (NUMA machine)", &series);
    if !opts.csv {
        emit_final_ratio(&series, "central", "qsm-tree");
    }
}
