//! fig6 — barrier episode time vs P on the NUMA machine.
//!
//! The hot-spot figure: the central barrier's counter saturates one memory
//! module while the tree/dissemination/tournament barriers spread their
//! flags across modules and scale logarithmically; the QSM barrier tracks
//! the combining tree.
//!
//! ```text
//! cargo run -p bench --release --bin fig6_barrier_numa [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig6");
}
