//! fig3 — interconnect transactions per critical section vs P (bus).
//!
//! The causal mechanism behind fig1: test-and-set burns a transaction per
//! probe (unbounded growth in P), TTAS/ticket pay an O(P) re-read storm per
//! hand-off, and the queue locks (incl. QSM) pay O(1).
//!
//! ```text
//! cargo run -p bench --release --bin fig3_traffic [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig3");
}
