//! fig3 — interconnect transactions per critical section vs P (bus).
//!
//! The causal mechanism behind fig1: test-and-set burns a transaction per
//! probe (unbounded growth in P), TTAS/ticket pay an O(P) re-read storm per
//! hand-off, and the queue locks (incl. QSM) pay O(1).
//!
//! ```text
//! cargo run -p bench --release --bin fig3_traffic [-- --csv]
//! ```

use bench::{emit_final_ratio, emit_series, Opts};
use workloads::sweeps::{lock_traffic, MachineKind};

fn main() {
    let opts = Opts::from_env();
    let series = lock_traffic(MachineKind::Bus, &opts.procs(), opts.iters());
    emit_series(
        &opts,
        "Fig 3: interconnect transactions per critical section vs P (bus)",
        &series,
    );
    if !opts.csv {
        emit_final_ratio(&series, "tas", "qsm");
    }
}
