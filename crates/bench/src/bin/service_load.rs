//! CI smoke driver for the sharded lock service: runs the *real-thread*
//! load generator (`workloads::service_load::run_real`) against a live
//! `service::LockService`, prints a wall-clock summary, and verifies the
//! teardown invariants (no keys left attached, machine-wide futex
//! accounting balanced).
//!
//! With `--metrics-out PATH` it also harvests the service's telemetry
//! snapshot periodically while the load runs (asserting every harvest is
//! monotone over the previous one), then writes the final snapshot as
//! Prometheus text to `PATH` and as JSON to `PATH.json`, validating both
//! through the exporters' own line-based checkers before reporting OK.
//!
//! With `--overhead-check` it instead times the identical workload with
//! telemetry `off` and with `counters` and fails if the counters run
//! costs more than the budget (default 3%) in throughput — the
//! wall-clock half of the table7 claim.
//!
//! This binary is intentionally **not** in the figure registry: its
//! numbers are host wall-clock. The deterministic counterparts are
//! `fig11_service_throughput`, `table6_service_tail`, and
//! `table7_metrics_overhead`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use workloads::service_load::{run_real, RealServiceConfig};

const USAGE: &str = "\
usage: service_load [--quick] [--trace-out PATH] [--metrics-out PATH]
                    [--overhead-check] [--overhead-budget PCT] [--help]

  --quick            reduced request count (CI smoke)
  --trace-out PATH   record the run's park/wake events and write a Chrome
                     trace-event JSON to PATH
  --metrics-out PATH harvest telemetry during the run, then write the
                     final snapshot as Prometheus text to PATH and JSON
                     to PATH.json (both validated before reporting OK)
  --overhead-check   time the workload with metrics off vs counters and
                     fail if counters costs more than the budget
  --overhead-budget PCT  allowed counters overhead percent (default: 3)
  --help             show this help

environment:
  SYNCMECH_SERVICE_THREADS=N  worker threads (default: host parallelism)
  SYNCMECH_SERVICE_SHARDS=N   lock-table shards (default: 256)
  SYNCMECH_SERVICE_METRICS=off|counters|sampled:<N>  telemetry mode
                              (default: counters)";

/// Times one `run_real` of `cfg` on a fresh service at the given
/// telemetry mode and returns (elapsed ns, completed requests).
fn timed_run(cfg: &RealServiceConfig, mode: service::MetricsMode) -> (u64, u64) {
    let svc = service::LockService::with_metrics_mode(service::service_shards(), mode);
    let r = run_real(&svc, cfg);
    (r.elapsed_ns, r.completed)
}

/// The `--overhead-check` path: best-of-three runs per mode
/// (interleaved, off first each round so neither mode owns the warm
/// caches; best-of damps scheduler noise), then the relative slowdown of
/// `counters` over `off` against the budget.
fn overhead_check(cfg: &RealServiceConfig, budget_pct: f64) -> ExitCode {
    let mut off_ns = u64::MAX;
    let mut on_ns = u64::MAX;
    for _ in 0..3 {
        off_ns = off_ns.min(timed_run(cfg, service::MetricsMode::Off).0);
        on_ns = on_ns.min(timed_run(cfg, service::MetricsMode::Counters).0);
    }
    let pct = (on_ns as f64 / off_ns.max(1) as f64 - 1.0) * 100.0;
    println!(
        "overhead check: off {:.1} ms, counters {:.1} ms, {pct:+.2}% (budget {budget_pct}%)",
        off_ns as f64 / 1e6,
        on_ns as f64 / 1e6
    );
    if pct > budget_pct {
        eprintln!("FAIL: counters telemetry exceeds the {budget_pct}% overhead budget");
        return ExitCode::FAILURE;
    }
    println!("  OK: counters overhead within budget");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut check_overhead = false;
    let mut budget_pct = 3.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics-out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--overhead-check" => check_overhead = true,
            "--overhead-budget" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => budget_pct = pct,
                _ => {
                    eprintln!("--overhead-budget needs a positive percent\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if quick || std::env::var("SYNCMECH_QUICK").map(|v| v == "1").unwrap_or(false) {
        quick = true;
    }

    let threads = service::service_threads();
    let requests_per_thread = if quick { 2_000 } else { 20_000 };
    let cfg = RealServiceConfig::smoke(threads, requests_per_thread);

    if check_overhead {
        return overhead_check(&cfg, budget_pct);
    }

    let tracer = trace_out.as_ref().map(|_| {
        let tracer = trace::Tracer::full(parking::trace_hooks::TRACE_SLOTS);
        parking::trace_hooks::install(Arc::clone(&tracer));
        tracer
    });

    let svc = service::LockService::new();

    // Run the load; when harvesting, a sidecar thread snapshots the live
    // metrics every few milliseconds and asserts each snapshot is
    // monotone over the previous — the lock-free aggregation must never
    // show a counter going backwards mid-flight.
    let stop = AtomicBool::new(false);
    let mut harvests = 0u64;
    let r = std::thread::scope(|s| {
        let harvester = metrics_out.as_ref().map(|_| {
            let (svc, stop) = (&svc, &stop);
            s.spawn(move || {
                let mut prev = svc.metrics_snapshot();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    let cur = svc.metrics_snapshot();
                    assert!(cur.monotone_since(&prev), "harvested counters went backwards");
                    prev = cur;
                    n += 1;
                }
                n
            })
        });
        let r = run_real(&svc, &cfg);
        stop.store(true, Ordering::Relaxed);
        if let Some(h) = harvester {
            harvests = h.join().expect("harvester never panics");
        }
        r
    });

    let ms = r.elapsed_ns as f64 / 1e6;
    println!("service_load: real-thread smoke (wall-clock; not a figure)");
    println!(
        "  workers {threads}, requests {} ({} keys, Zipf {}), elapsed {ms:.1} ms, {:.0} ops/ms",
        r.completed,
        cfg.keys,
        cfg.zipf_s,
        r.completed as f64 / ms
    );
    println!(
        "  wait ns p50 {} p99 {} p999 {} max {}",
        r.wait_ns.quantile(0.5),
        r.wait_ns.quantile(0.99),
        r.wait_ns.quantile(0.999),
        r.wait_ns.max()
    );
    println!(
        "  table: shards {}, live {}, peak live {}, capacity {}, reuses {}",
        r.stats.shards, r.stats.live, r.stats.peak_live, r.stats.capacity, r.stats.reuses
    );
    println!(
        "  futex: parks {} wakes {} resumes {}",
        r.futex.parks, r.futex.wakes, r.futex.resumes
    );

    if let Some(path) = &metrics_out {
        let snap = svc.metrics_snapshot();
        let prom = service::telemetry::prometheus(&snap);
        let pstats = match service::telemetry::validate_prometheus(&prom) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL: prometheus export invalid: {e}");
                return ExitCode::FAILURE;
            }
        };
        let json = service::telemetry::json(&snap);
        let jstats = match service::telemetry::validate_json(&json) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL: json export invalid: {e}");
                return ExitCode::FAILURE;
            }
        };
        let json_path = format!("{path}.json");
        if let Err(e) = std::fs::write(path, &prom).and_then(|()| std::fs::write(&json_path, &json))
        {
            eprintln!("writing metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "  metrics OK: mode {}, {} harvests monotone, {} families / {} samples -> {path}, {} json fields -> {json_path}",
            snap.mode.label(),
            harvests,
            pstats.families,
            pstats.samples,
            jstats.fields
        );
    }

    if let (Some(path), Some(tracer)) = (&trace_out, &tracer) {
        let json = trace::chrome::export_tracer(tracer, "syncmech service_load smoke");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  trace written to {path}");
    }

    if r.stats.live != 0 {
        eprintln!("FAIL: {} keys still attached after drain", r.stats.live);
        return ExitCode::FAILURE;
    }
    if !r.futex.balanced() {
        eprintln!(
            "FAIL: futex accounting unbalanced at teardown: parks {} wakes {} resumes {}",
            r.futex.parks, r.futex.wakes, r.futex.resumes
        );
        return ExitCode::FAILURE;
    }
    println!("  OK: table drained, parks == wakes == resumes");
    ExitCode::SUCCESS
}
