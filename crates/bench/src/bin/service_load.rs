//! CI smoke driver for the sharded lock service: runs the *real-thread*
//! load generator (`workloads::service_load::run_real`) against a live
//! `service::LockService`, prints a wall-clock summary, and verifies the
//! teardown invariants (no keys left attached, machine-wide futex
//! accounting balanced).
//!
//! This binary is intentionally **not** in the figure registry: its
//! numbers are host wall-clock. The deterministic counterparts are
//! `fig11_service_throughput` and `table6_service_tail`.

use std::process::ExitCode;
use std::sync::Arc;
use workloads::service_load::{run_real, RealServiceConfig};

const USAGE: &str = "\
usage: service_load [--quick] [--trace-out PATH] [--help]

  --quick           reduced request count (CI smoke)
  --trace-out PATH  record the run's park/wake events and write a Chrome
                    trace-event JSON to PATH
  --help            show this help

environment:
  SYNCMECH_SERVICE_THREADS=N  worker threads (default: host parallelism)
  SYNCMECH_SERVICE_SHARDS=N   lock-table shards (default: 256)";

fn main() -> ExitCode {
    let mut quick = false;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if quick || std::env::var("SYNCMECH_QUICK").map(|v| v == "1").unwrap_or(false) {
        quick = true;
    }

    let tracer = trace_out.as_ref().map(|_| {
        let tracer = trace::Tracer::full(parking::trace_hooks::TRACE_SLOTS);
        parking::trace_hooks::install(Arc::clone(&tracer));
        tracer
    });

    let threads = service::service_threads();
    let requests_per_thread = if quick { 2_000 } else { 20_000 };
    let cfg = RealServiceConfig::smoke(threads, requests_per_thread);
    let svc = service::LockService::new();
    let r = run_real(&svc, &cfg);

    let ms = r.elapsed_ns as f64 / 1e6;
    println!("service_load: real-thread smoke (wall-clock; not a figure)");
    println!(
        "  workers {threads}, requests {} ({} keys, Zipf {}), elapsed {ms:.1} ms, {:.0} ops/ms",
        r.completed,
        cfg.keys,
        cfg.zipf_s,
        r.completed as f64 / ms
    );
    println!(
        "  wait ns p50 {} p99 {} p999 {} max {}",
        r.wait_ns.quantile(0.5),
        r.wait_ns.quantile(0.99),
        r.wait_ns.quantile(0.999),
        r.wait_ns.max()
    );
    println!(
        "  table: shards {}, live {}, peak live {}, capacity {}, reuses {}",
        r.stats.shards, r.stats.live, r.stats.peak_live, r.stats.capacity, r.stats.reuses
    );
    println!(
        "  futex: parks {} wakes {} resumes {}",
        r.futex.parks, r.futex.wakes, r.futex.resumes
    );

    if let (Some(path), Some(tracer)) = (&trace_out, &tracer) {
        let json = trace::chrome::export_tracer(tracer, "syncmech service_load smoke");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  trace written to {path}");
    }

    if r.stats.live != 0 {
        eprintln!("FAIL: {} keys still attached after drain", r.stats.live);
        return ExitCode::FAILURE;
    }
    if !r.futex.balanced() {
        eprintln!(
            "FAIL: futex accounting unbalanced at teardown: parks {} wakes {} resumes {}",
            r.futex.parks, r.futex.wakes, r.futex.resumes
        );
        return ExitCode::FAILURE;
    }
    println!("  OK: table drained, parks == wakes == resumes");
    ExitCode::SUCCESS
}
