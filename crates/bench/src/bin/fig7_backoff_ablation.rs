//! fig7 — ablation: sensitivity to backoff parameters, plus the QSM
//! design-choice ablations called out in DESIGN.md.
//!
//! Three panels:
//! 1. test-and-set backoff cap sweep (cap 0 = plain TAS behaviour);
//! 2. proportional-ticket factor sweep (too eager ⇒ storming, too lazy ⇒
//!    idle hand-off gaps);
//! 3. QSM with the CAS fast path disabled (always enqueue) vs stock QSM —
//!    the fast path must not cost anything under contention and must win
//!    when uncontended.
//!
//! ```text
//! cargo run -p bench --release --bin fig7_backoff_ablation [-- --csv]
//! ```

use bench::{emit_series, Opts};
use kernels::locks::{qsm::QsmLock, LockKernel};
use kernels::{Region, SyncCtx};
use simcore::Series;
use workloads::csbench::{self, CsConfig};
use workloads::sweeps::{backoff_ablation, MachineKind};

/// QSM with the fast path removed: every acquire enqueues via swap.
/// Used only by this ablation.
#[derive(Debug, Clone, Copy, Default)]
struct QsmNoFastPath;

impl LockKernel for QsmNoFastPath {
    fn name(&self) -> &'static str {
        "qsm-no-fastpath"
    }
    fn lines_needed(&self, nprocs: usize) -> usize {
        QsmLock.lines_needed(nprocs)
    }
    fn proc_init(&self, pid: usize, region: &Region) -> u64 {
        QsmLock.proc_init(pid, region)
    }
    fn acquire(&self, ctx: &mut dyn SyncCtx, region: &Region, ps: &mut u64) -> u64 {
        let me = ctx.pid() as u64 + 1;
        ctx.store(QsmLock::next(region, me), 0);
        let prev = ctx.swap(QsmLock::tail(region), me);
        if prev != 0 {
            ctx.store(QsmLock::next(region, prev), me);
            ctx.spin_while(QsmLock::grant(region, me), *ps);
            *ps += 1;
        }
        0
    }
    fn release(&self, ctx: &mut dyn SyncCtx, region: &Region, ps: &mut u64, token: u64) {
        QsmLock.release(ctx, region, ps, token);
    }
}

fn main() {
    let opts = Opts::from_env();
    let nprocs = if opts.quick { 4 } else { 16 };
    let iters = if opts.quick { 4 } else { 10 };

    let series = backoff_ablation(MachineKind::Bus, nprocs, iters);
    emit_series(
        &opts,
        &format!("Fig 7a/7b: backoff parameter sensitivity (bus, P = {nprocs})"),
        &series,
    );

    // Panel 3: fast-path ablation, contended and uncontended.
    let mut fp = Series::new("P", "cycles per critical section");
    for &p in &[1usize, nprocs] {
        let machine = MachineKind::Bus.machine(p);
        let cfg = CsConfig {
            think: 0,
            jitter: false,
            hold: 20,
            ..CsConfig::new(p, iters)
        };
        let stock = csbench::run(&machine, &QsmLock, &cfg).expect("qsm");
        let ablated = csbench::run(&machine, &QsmNoFastPath, &cfg).expect("qsm-no-fastpath");
        fp.push("qsm", p as u64, stock.passing_time);
        fp.push("qsm-no-fastpath", p as u64, ablated.passing_time);
    }
    println!();
    emit_series(&opts, "Fig 7c: QSM fast-path ablation", &fp);
}
