//! fig7 — ablation: sensitivity to backoff parameters, plus the QSM
//! design-choice ablations called out in DESIGN.md (see
//! `bench::figures::fig7` for the panels).
//!
//! ```text
//! cargo run -p bench --release --bin fig7_backoff_ablation [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig7");
}
