//! table3 (extension experiment) — reader/writer mix sweep.
//!
//! The QSM reader-writer kernel against a plain QSM mutex over identical
//! operation streams, across read fractions: the rwlock's advantage should
//! grow with the read fraction (readers overlap) and vanish at 0% reads
//! (where it degrades to a slightly costlier mutex).
//!
//! ```text
//! cargo run -p bench --release --bin table3_rwlock [-- --csv]
//! ```

use bench::Opts;
use simcore::Table;
use workloads::rwbench::{run_mutex, run_rwlock, RwConfig};
use workloads::sweeps::MachineKind;

fn main() {
    let opts = Opts::from_env();
    let nprocs = if opts.quick { 4 } else { 16 };
    let iters = if opts.quick { 8 } else { 16 };
    let fractions: &[f64] = if opts.quick {
        &[0.0, 0.9]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 0.9, 0.99]
    };
    let mut table = Table::new(&[
        "read fraction",
        "rwlock ops/kcyc",
        "mutex ops/kcyc",
        "speedup",
    ])
    .with_title(format!(
        "Table 3 (extension): reader/writer mix, bus machine, P = {nprocs}"
    ));
    for &f in fractions {
        let cfg = RwConfig {
            nprocs,
            iters,
            read_fraction: f,
            read_hold: 400,
            write_hold: 60,
            seed: 0x7777,
        };
        let machine = MachineKind::Bus.machine(nprocs);
        let rw = run_rwlock(&machine, &cfg).expect("rwlock trial");
        let mx = run_mutex(&machine, &cfg).expect("mutex trial");
        table.row_owned(vec![
            format!("{:.0}%", f * 100.0),
            format!("{:.2}", rw.throughput),
            format!("{:.2}", mx.throughput),
            format!("{:.2}x", rw.throughput / mx.throughput),
        ]);
    }
    if opts.csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
}
