//! table3 (extension experiment) — reader/writer mix sweep.
//!
//! The QSM reader-writer kernel against a plain QSM mutex over identical
//! operation streams, across read fractions: the rwlock's advantage should
//! grow with the read fraction (readers overlap) and vanish at 0% reads
//! (where it degrades to a slightly costlier mutex).
//!
//! ```text
//! cargo run -p bench --release --bin table3_rwlock [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("table3");
}
