//! table4 — blocking-lock latency: the other side of fig9's bargain.
//!
//! For each wait policy: uncontended acquire+release cycles on a dedicated
//! machine (what the park path costs when never used), passing time under
//! oversubscription (what it buys), and futex parks per critical section
//! (how often the slow path actually fires).
//!
//! ```text
//! cargo run -p bench --release --bin table4_blocking_latency [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("table4");
}
