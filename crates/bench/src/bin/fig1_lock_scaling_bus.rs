//! fig1 — lock passing time vs processor count on the bus machine.
//!
//! Expected shape (the reproduction target): test-and-set grows ~linearly,
//! TTAS/ticket grow through invalidation storms, the queue locks
//! (anderson, graunke-thakkar, clh, mcs, **qsm**) stay near-flat, with QSM
//! riding the bottom alongside MCS.
//!
//! ```text
//! cargo run -p bench --release --bin fig1_lock_scaling_bus [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig1");
}
