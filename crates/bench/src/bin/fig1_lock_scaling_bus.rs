//! fig1 — lock passing time vs processor count on the bus machine.
//!
//! Expected shape (the reproduction target): test-and-set grows ~linearly,
//! TTAS/ticket grow through invalidation storms, the queue locks
//! (anderson, graunke-thakkar, clh, mcs, **qsm**) stay near-flat, with QSM
//! riding the bottom alongside MCS.
//!
//! ```text
//! cargo run -p bench --release --bin fig1_lock_scaling_bus [-- --csv]
//! ```

use bench::{emit_final_ratio, emit_series, Opts};
use workloads::sweeps::{lock_scaling, MachineKind};

fn main() {
    let opts = Opts::from_env();
    let series = lock_scaling(MachineKind::Bus, &opts.procs(), opts.iters());
    emit_series(&opts, "Fig 1: lock passing time vs P (bus machine)", &series);
    if !opts.csv {
        emit_final_ratio(&series, "tas", "qsm");
        emit_final_ratio(&series, "ttas", "qsm");
    }
}
