//! table1 — uncontended latency (cycles) of every primitive, bus machine.
//!
//! ```text
//! cargo run -p bench --release --bin table1_latency [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("table1");
}
