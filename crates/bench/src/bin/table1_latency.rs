//! table1 — uncontended latency (cycles) of every primitive, bus machine.
//!
//! ```text
//! cargo run -p bench --release --bin table1_latency [-- --csv]
//! ```

use bench::Opts;
use simcore::table::{fmt_cell, Table};
use workloads::sweeps::{uncontended_table, MachineKind};

fn main() {
    let opts = Opts::from_env();
    let mut table = Table::new(&["primitive", "bus cycles", "numa cycles"])
        .with_title("Table 1: uncontended latency per operation (P = 1)");
    let bus = uncontended_table(MachineKind::Bus);
    let numa = uncontended_table(MachineKind::Numa);
    for ((name, b), (name2, n)) in bus.into_iter().zip(numa) {
        assert_eq!(name, name2);
        table.row_owned(vec![name, fmt_cell(b), fmt_cell(n)]);
    }
    if opts.csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
        println!();
        println!(
            "(lock rows: one acquire+release; barrier rows: one episode net of work.\n\
             Log-round barriers cost 0 at P = 1 — they have no work to do.)"
        );
    }
}
