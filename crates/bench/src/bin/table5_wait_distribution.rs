//! table5 — wait/hold-time distribution summary (p50/p90/p99/max) per lock
//! word, extracted from the event trace of an instrumented csbench run.
//!
//! ```text
//! cargo run -p bench --release --bin table5_wait_distribution [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("table5");
}
