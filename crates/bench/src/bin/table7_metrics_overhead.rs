fn main() {
    bench::figures::run_main("table7");
}
