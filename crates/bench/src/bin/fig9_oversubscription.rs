//! fig9 — lock passing time vs threads-per-core ratio on the scheduled
//! (oversubscribed) bus machine.
//!
//! Expected shape (the figure's point): pure-spin QSM degrades
//! superlinearly past 1x threads/core — a descheduled lock holder strands
//! every spinner for whole scheduling quanta — while the spin-then-park
//! and always-park variants stay near-flat, crossing over well before 2x.
//!
//! ```text
//! cargo run -p bench --release --bin fig9_oversubscription [-- --csv]
//! ```

fn main() {
    bench::figures::run_main("fig9");
}
