//! The figure registry: every table and figure of the reconstructed
//! evaluation as a string-returning render function.
//!
//! The `src/bin/` binaries are one-line wrappers over [`run_main`]; the
//! `bench_sim` binary walks [`FIGURES`] in one process to measure full
//! regeneration wall-clock; the golden-output regression test renders
//! every deterministic figure in quick mode and diffs the bytes against
//! committed files. Keeping rendering as `fn(&Opts) -> String` is what
//! lets all three share one definition of "the figure".

use crate::{final_ratio_block, series_block, Opts};
use kernels::locks::{qsm::QsmLock, LockKernel};
use kernels::{Region, SyncCtx};
use simcore::table::{fmt_cell, Table};
use simcore::Series;
use workloads::csbench::{self, CsConfig};
use workloads::oversub::{blocking_latency_table, oversubscription_sweep};
use workloads::rwbench::{run_mutex, run_rwlock, RwConfig};
use workloads::service_load::{self, LockPolicy, ServiceLoadConfig};
use workloads::waitdist::{distribution_sweep, CDF_PERCENTILES};
use workloads::sweeps::{
    backoff_ablation, barrier_scaling, contention_sweep, lock_scaling, lock_traffic,
    uncontended_table, MachineKind,
};

/// One entry of the evaluation: a figure or table binary.
pub struct Figure {
    /// Short id (`fig1` … `fig8`, `table1` … `table3`).
    pub id: &'static str,
    /// Binary name — also the stem of the committed `results/` file.
    pub binary: &'static str,
    /// True when the output is a pure function of `Opts` (everything but
    /// the real-hardware fig8): these are the byte-identity goldens.
    pub deterministic: bool,
    /// Renders the figure under the given options.
    pub render: fn(&Opts) -> String,
}

/// Every figure, in publication order.
pub static FIGURES: &[Figure] = &[
    Figure {
        id: "fig1",
        binary: "fig1_lock_scaling_bus",
        deterministic: true,
        render: fig1,
    },
    Figure {
        id: "fig2",
        binary: "fig2_lock_scaling_numa",
        deterministic: true,
        render: fig2,
    },
    Figure {
        id: "fig3",
        binary: "fig3_traffic",
        deterministic: true,
        render: fig3,
    },
    Figure {
        id: "fig4",
        binary: "fig4_contention_sweep",
        deterministic: true,
        render: fig4,
    },
    Figure {
        id: "fig5",
        binary: "fig5_barrier_bus",
        deterministic: true,
        render: fig5,
    },
    Figure {
        id: "fig6",
        binary: "fig6_barrier_numa",
        deterministic: true,
        render: fig6,
    },
    Figure {
        id: "fig7",
        binary: "fig7_backoff_ablation",
        deterministic: true,
        render: fig7,
    },
    Figure {
        id: "fig8",
        binary: "fig8_realhw",
        deterministic: false,
        render: fig8,
    },
    Figure {
        id: "fig9",
        binary: "fig9_oversubscription",
        deterministic: true,
        render: fig9,
    },
    Figure {
        id: "table1",
        binary: "table1_latency",
        deterministic: true,
        render: table1,
    },
    Figure {
        id: "table2",
        binary: "table2_fairness",
        deterministic: true,
        render: table2,
    },
    Figure {
        id: "table3",
        binary: "table3_rwlock",
        deterministic: true,
        render: table3,
    },
    Figure {
        id: "table4",
        binary: "table4_blocking_latency",
        deterministic: true,
        render: table4,
    },
    Figure {
        id: "fig10",
        binary: "fig10_wait_cdf",
        deterministic: true,
        render: fig10,
    },
    Figure {
        id: "table5",
        binary: "table5_wait_distribution",
        deterministic: true,
        render: table5,
    },
    Figure {
        id: "fig11",
        binary: "fig11_service_throughput",
        deterministic: true,
        render: fig11,
    },
    Figure {
        id: "table6",
        binary: "table6_service_tail",
        deterministic: true,
        render: table6,
    },
    Figure {
        id: "fig12",
        binary: "fig12_async_service",
        deterministic: true,
        render: fig12,
    },
    Figure {
        id: "table7",
        binary: "table7_metrics_overhead",
        deterministic: true,
        render: table7,
    },
];

/// Looks a figure up by its short id.
pub fn by_id(id: &str) -> Option<&'static Figure> {
    FIGURES.iter().find(|f| f.id == id)
}

/// The shared `main` of the thin figure binaries: parse options, render,
/// print.
pub fn run_main(id: &str) {
    let figure = by_id(id).unwrap_or_else(|| panic!("unknown figure id {id}"));
    let opts = Opts::from_env();
    print!("{}", (figure.render)(&opts));
}

/// fig1 — lock passing time vs processor count on the bus machine.
pub fn fig1(opts: &Opts) -> String {
    let series = lock_scaling(MachineKind::Bus, &opts.procs(), opts.iters());
    let mut out = series_block(opts, "Fig 1: lock passing time vs P (bus machine)", &series);
    if !opts.csv {
        out.push_str(&final_ratio_block(&series, "tas", "qsm"));
        out.push_str(&final_ratio_block(&series, "ttas", "qsm"));
    }
    out
}

/// fig2 — lock passing time vs processor count on the NUMA machine.
pub fn fig2(opts: &Opts) -> String {
    let series = lock_scaling(MachineKind::Numa, &opts.procs(), opts.iters());
    let mut out = series_block(opts, "Fig 2: lock passing time vs P (NUMA machine)", &series);
    if !opts.csv {
        out.push_str(&final_ratio_block(&series, "tas", "qsm"));
    }
    out
}

/// fig3 — interconnect transactions per critical section vs P (bus).
pub fn fig3(opts: &Opts) -> String {
    let series = lock_traffic(MachineKind::Bus, &opts.procs(), opts.iters());
    let mut out = series_block(
        opts,
        "Fig 3: interconnect transactions per critical section vs P (bus)",
        &series,
    );
    if !opts.csv {
        out.push_str(&final_ratio_block(&series, "tas", "qsm"));
    }
    out
}

/// fig4 — throughput vs critical-section length at fixed P.
pub fn fig4(opts: &Opts) -> String {
    let holds: Vec<u64> = if opts.quick {
        vec![0, 64, 256]
    } else {
        vec![0, 8, 16, 32, 64, 128, 256, 512]
    };
    let nprocs = if opts.quick { 4 } else { 16 };
    let iters = if opts.quick { 4 } else { 10 };
    let series = contention_sweep(MachineKind::Bus, nprocs, &holds, iters);
    series_block(
        opts,
        &format!("Fig 4: throughput vs critical-section hold time (bus, P = {nprocs})"),
        &series,
    )
}

/// fig5 — barrier episode time vs P on the bus machine.
pub fn fig5(opts: &Opts) -> String {
    let series = barrier_scaling(MachineKind::Bus, &opts.procs(), opts.episodes());
    let mut out = series_block(opts, "Fig 5: barrier episode time vs P (bus machine)", &series);
    if !opts.csv {
        out.push_str(&final_ratio_block(&series, "central", "qsm-tree"));
    }
    out
}

/// fig6 — barrier episode time vs P on the NUMA machine.
pub fn fig6(opts: &Opts) -> String {
    let series = barrier_scaling(MachineKind::Numa, &opts.procs(), opts.episodes());
    let mut out = series_block(opts, "Fig 6: barrier episode time vs P (NUMA machine)", &series);
    if !opts.csv {
        out.push_str(&final_ratio_block(&series, "central", "qsm-tree"));
    }
    out
}

/// QSM with the fast path removed: every acquire enqueues via swap.
/// Used only by the fig7 ablation.
#[derive(Debug, Clone, Copy, Default)]
struct QsmNoFastPath;

impl LockKernel for QsmNoFastPath {
    fn name(&self) -> &'static str {
        "qsm-no-fastpath"
    }
    fn lines_needed(&self, nprocs: usize) -> usize {
        QsmLock.lines_needed(nprocs)
    }
    fn proc_init(&self, pid: usize, region: &Region) -> u64 {
        QsmLock.proc_init(pid, region)
    }
    fn acquire(&self, ctx: &mut dyn SyncCtx, region: &Region, ps: &mut u64) -> u64 {
        let me = ctx.pid() as u64 + 1;
        ctx.store(QsmLock::next(region, me), 0);
        let prev = ctx.swap(QsmLock::tail(region), me);
        if prev != 0 {
            ctx.store(QsmLock::next(region, prev), me);
            ctx.spin_while(QsmLock::grant(region, me), *ps);
            *ps += 1;
        }
        0
    }
    fn release(&self, ctx: &mut dyn SyncCtx, region: &Region, ps: &mut u64, token: u64) {
        QsmLock.release(ctx, region, ps, token);
    }
}

/// fig7 — backoff-parameter sensitivity plus the QSM fast-path ablation.
pub fn fig7(opts: &Opts) -> String {
    let nprocs = if opts.quick { 4 } else { 16 };
    let iters = if opts.quick { 4 } else { 10 };

    let series = backoff_ablation(MachineKind::Bus, nprocs, iters);
    let mut out = series_block(
        opts,
        &format!("Fig 7a/7b: backoff parameter sensitivity (bus, P = {nprocs})"),
        &series,
    );

    // Panel 3: fast-path ablation, contended and uncontended.
    let mut fp = Series::new("P", "cycles per critical section");
    for &p in &[1usize, nprocs] {
        let machine = MachineKind::Bus.machine(p);
        let cfg = CsConfig {
            think: 0,
            jitter: false,
            hold: 20,
            ..CsConfig::new(p, iters)
        };
        let stock = csbench::run(&machine, &QsmLock, &cfg).expect("qsm");
        let ablated = csbench::run(&machine, &QsmNoFastPath, &cfg).expect("qsm-no-fastpath");
        fp.push("qsm", p as u64, stock.passing_time);
        fp.push("qsm-no-fastpath", p as u64, ablated.passing_time);
    }
    out.push('\n');
    out.push_str(&series_block(opts, "Fig 7c: QSM fast-path ablation", &fp));
    out
}

/// fig8 — real-hardware microbenchmark of the `qsm` crate (wall-clock;
/// the one nondeterministic figure).
pub fn fig8(opts: &Opts) -> String {
    let threads = if opts.quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    };
    let iters = if opts.quick { 20_000 } else { 200_000 };
    let rows = workloads::realhw::sweep(&threads, iters);
    let mut header = vec!["lock".to_string(), "uncontended ns/op".to_string()];
    for t in &threads {
        header.push(format!("CS/ms @{t}T"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs).with_title(format!(
        "Fig 8: real hardware ({} host cores), {iters} iterations",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    for row in rows {
        let mut cells = vec![row.name.to_string(), format!("{:.0}", row.uncontended_ns)];
        for (_, thr) in &row.throughput {
            cells.push(format!("{thr:.0}"));
        }
        table.row_owned(cells);
    }
    if opts.csv {
        table.render_csv()
    } else {
        table.render()
    }
}

/// The core count fig9 and table4 oversubscribe. Four is the smallest
/// machine where a descheduled lock holder reliably strands a full spinner
/// cohort, so the spin collapse is visible even in quick mode.
const OVERSUB_CORES: usize = 4;

/// fig9 — the spin-vs-block axis: lock passing time vs threads-per-core
/// ratio on the scheduled bus machine, for pure spin (`qsm`),
/// spin-then-park (`qsm-block`) and always-park (`qsm-block-park`).
pub fn fig9(opts: &Opts) -> String {
    let ratios: Vec<usize> = if opts.quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    };
    let series = oversubscription_sweep(OVERSUB_CORES, &ratios, opts.iters());
    let mut out = series_block(
        opts,
        &format!(
            "Fig 9: lock passing time vs threads per core (bus machine, {OVERSUB_CORES} cores, oversubscribed)"
        ),
        &series,
    );
    if !opts.csv {
        out.push_str(&final_ratio_block(&series, "qsm", "qsm-block"));
    }
    out
}

/// table1 — uncontended latency (cycles) of every primitive.
pub fn table1(opts: &Opts) -> String {
    let mut table = Table::new(&["primitive", "bus cycles", "numa cycles"])
        .with_title("Table 1: uncontended latency per operation (P = 1)");
    let bus = uncontended_table(MachineKind::Bus);
    let numa = uncontended_table(MachineKind::Numa);
    for ((name, b), (name2, n)) in bus.into_iter().zip(numa) {
        assert_eq!(name, name2);
        table.row_owned(vec![name, fmt_cell(b), fmt_cell(n)]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        let mut out = table.render();
        out.push('\n');
        out.push_str(
            "(lock rows: one acquire+release; barrier rows: one episode net of work.\n\
             Log-round barriers cost 0 at P = 1 — they have no work to do.)\n",
        );
        out
    }
}

/// table2 — fairness at P = 32: per-processor service distribution.
pub fn table2(opts: &Opts) -> String {
    use kernels::locks::all_locks;
    use workloads::fairness::{run, FairnessConfig};
    use workloads::sweeps::{parallel_cells, sweep_threads};

    let nprocs = if opts.quick { 4 } else { 32 };
    let cfg = FairnessConfig {
        nprocs,
        total_cs: nprocs * if opts.quick { 8 } else { 64 },
        hold: 30,
    };
    let mut table = Table::new(&[
        "lock",
        "cv(counts)",
        "jain",
        "max denial (hand-offs)",
        "min/max count",
    ])
    .with_title(format!(
        "Table 2: fairness under continuous contention (bus, P = {nprocs}, {} CS)",
        cfg.total_cs
    ));
    let locks = all_locks();
    let results = parallel_cells(locks.len(), sweep_threads(), |i| {
        let machine = MachineKind::Bus.machine(nprocs);
        run(&machine, locks[i].as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", locks[i].name()))
    });
    for (lock, r) in locks.iter().zip(&results) {
        let min = r.counts.iter().min().copied().unwrap_or(0);
        let max = r.counts.iter().max().copied().unwrap_or(0);
        table.row_owned(vec![
            lock.name().to_string(),
            format!("{:.3}", r.cv),
            format!("{:.3}", r.jain),
            r.max_denial.to_string(),
            format!("{}/{}", fmt_cell(min as f64), fmt_cell(max as f64)),
        ]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        table.render()
    }
}

/// table3 (extension experiment) — reader/writer mix sweep.
pub fn table3(opts: &Opts) -> String {
    use workloads::sweeps::{parallel_cells, sweep_threads};

    let nprocs = if opts.quick { 4 } else { 16 };
    let iters = if opts.quick { 8 } else { 16 };
    let fractions: &[f64] = if opts.quick {
        &[0.0, 0.9]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 0.9, 0.99]
    };
    let mut table = Table::new(&[
        "read fraction",
        "rwlock ops/kcyc",
        "mutex ops/kcyc",
        "speedup",
    ])
    .with_title(format!(
        "Table 3 (extension): reader/writer mix, bus machine, P = {nprocs}"
    ));
    let results = parallel_cells(fractions.len(), sweep_threads(), |i| {
        let cfg = RwConfig {
            nprocs,
            iters,
            read_fraction: fractions[i],
            read_hold: 400,
            write_hold: 60,
            seed: 0x7777,
        };
        let machine = MachineKind::Bus.machine(nprocs);
        let rw = run_rwlock(&machine, &cfg).expect("rwlock trial");
        let mx = run_mutex(&machine, &cfg).expect("mutex trial");
        (rw, mx)
    });
    for (&f, (rw, mx)) in fractions.iter().zip(&results) {
        table.row_owned(vec![
            format!("{:.0}%", f * 100.0),
            format!("{:.2}", rw.throughput),
            format!("{:.2}", mx.throughput),
            format!("{:.2}x", rw.throughput / mx.throughput),
        ]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        table.render()
    }
}

/// table4 — blocking-lock latency: what the park path costs when idle
/// (uncontended) and what it buys when oversubscribed, per wait policy.
pub fn table4(opts: &Opts) -> String {
    let ratio = if opts.quick { 2 } else { 4 };
    let rows = blocking_latency_table(OVERSUB_CORES, ratio, opts.iters());
    let passing_col = format!("passing @{ratio}x threads/core");
    let mut table = Table::new(&[
        "lock",
        "uncontended cycles",
        passing_col.as_str(),
        "parks per CS",
    ])
    .with_title(format!(
        "Table 4: blocking-lock latency (bus machine, {OVERSUB_CORES} cores)"
    ));
    for row in rows {
        table.row_owned(vec![
            row.name,
            fmt_cell(row.uncontended),
            fmt_cell(row.oversub_passing),
            format!("{:.2}", row.parks_per_cs),
        ]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        let mut out = table.render();
        out.push('\n');
        out.push_str(
            "(uncontended: acquire+release on a dedicated machine — the cost of having\n\
             a park path without using it. parks per CS: futex parks per critical\n\
             section in the oversubscribed trial; pure spin is always 0.)\n",
        );
        out
    }
}

/// The wait/hold distribution trials behind fig10 and table5 share one
/// sweep shape per mode.
fn waitdist_sweep(opts: &Opts) -> (usize, Vec<workloads::waitdist::WaitDistResult>) {
    let nprocs = if opts.quick { 4 } else { 16 };
    (nprocs, distribution_sweep(nprocs, opts.iters()))
}

/// fig10 — the lock wait-time CDF: for each lock, the wait-time quantile
/// (cycles, log2-bucketed) at fixed percentiles of the acquisition
/// population. Flat curves mean uniform service; a long p99 tail is the
/// signature of collapse or unfairness under contention.
pub fn fig10(opts: &Opts) -> String {
    let (nprocs, sweep) = waitdist_sweep(opts);
    let mut series = Series::new("percentile", "wait cycles");
    for r in &sweep {
        for &pct in CDF_PERCENTILES {
            series.push(&r.name, pct, r.wait_q(pct as f64 / 100.0) as f64);
        }
    }
    series_block(
        opts,
        &format!("Fig 10: lock wait-time CDF (bus machine, P = {nprocs})"),
        &series,
    )
}

/// table5 — wait- and hold-time distribution summary per lock word:
/// p50/p90/p99/max of both, from the same traced trials as fig10.
pub fn table5(opts: &Opts) -> String {
    let (nprocs, sweep) = waitdist_sweep(opts);
    let mut table = Table::new(&[
        "lock",
        "wait p50",
        "wait p90",
        "wait p99",
        "wait max",
        "hold p50",
        "hold p90",
        "hold p99",
        "hold max",
    ])
    .with_title(format!(
        "Table 5: wait/hold-time distribution per lock word (bus, P = {nprocs}, cycles)"
    ));
    for r in &sweep {
        table.row_owned(vec![
            r.name.clone(),
            r.wait_q(0.5).to_string(),
            r.wait_q(0.9).to_string(),
            r.wait_q(0.99).to_string(),
            r.dist.wait.max().to_string(),
            r.hold_q(0.5).to_string(),
            r.hold_q(0.9).to_string(),
            r.hold_q(0.99).to_string(),
            r.dist.hold.max().to_string(),
        ]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        let mut out = table.render();
        out.push('\n');
        out.push_str(
            "(from the event trace of an instrumented csbench run: wait is\n\
             acquire-start to acquired, hold is acquired to released. Quantiles\n\
             are log2-bucket upper bounds, clamped to the observed maximum.)\n",
        );
        out
    }
}

/// fig11 — lock-service throughput vs worker-pool size under the bursty
/// Zipf-skewed load, per per-key lock policy (the queueing model in
/// `workloads::service_load`; the wall-clock driver is `service_load`'s
/// smoke binary, not a figure).
pub fn fig11(opts: &Opts) -> String {
    let threads: Vec<usize> = if opts.quick {
        vec![4, 16, 64]
    } else {
        vec![4, 16, 64, 256]
    };
    let requests = if opts.quick { 2_000 } else { 12_000 };
    let results = service_load::service_sweep(&threads, requests);
    let mut series = Series::new("workers", "requests per kcycle");
    for r in &results {
        series.push(r.policy.name(), r.threads as u64, r.throughput());
    }
    let mut out = series_block(
        opts,
        &format!(
            "Fig 11: service throughput vs worker pool ({requests} requests, Zipf 1.1, bursty open loop)"
        ),
        &series,
    );
    if !opts.csv {
        out.push_str(&final_ratio_block(&series, "qsm", "tas"));
        out.push_str(&final_ratio_block(&series, "qsm", "ticket"));
    }
    out
}

/// table6 — service tail latency at a fixed worker pool: wait-time
/// p50/p99/p999/max per policy from the same queueing model as fig11.
/// The mean barely moves across policies; the tail is where the grant
/// discipline shows.
pub fn table6(opts: &Opts) -> String {
    use workloads::sweeps::{parallel_cells, sweep_threads};

    let threads = if opts.quick { 32 } else { 64 };
    let requests = if opts.quick { 4_000 } else { 16_000 };
    let mut table = Table::new(&[
        "policy",
        "req/kcyc",
        "wait p50",
        "wait p99",
        "wait p999",
        "wait max",
    ])
    .with_title(format!(
        "Table 6: service wait-latency tail (workers = {threads}, {requests} requests, Zipf 1.1, cycles)"
    ));
    let results = parallel_cells(LockPolicy::ALL.len(), sweep_threads(), |i| {
        // Moderate load, unlike fig11's saturating one: near saturation
        // every wait is backlog and all policies pin the top histogram
        // buckets; at ~50% hot-key utilization the p50 stays small and
        // the tail isolates the grant discipline itself.
        let mut cfg = ServiceLoadConfig::new(threads, requests);
        cfg.mean_gap = 256;
        service_load::sim_load(LockPolicy::ALL[i], &cfg)
    });
    for r in &results {
        table.row_owned(vec![
            r.policy.name().to_string(),
            format!("{:.2}", r.throughput()),
            r.wait_q(0.5).to_string(),
            r.wait_q(0.99).to_string(),
            r.wait_q(0.999).to_string(),
            r.wait.max().to_string(),
        ]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        let mut out = table.render();
        out.push('\n');
        out.push_str(
            "(arrival-to-grant wait under fig11's key/hold mix at a moderated\n\
             arrival rate and fixed worker pool. FIFO grant with constant handoff\n\
             (qsm) holds the p999 tail; broadcast handoff (ticket) pays per-waiter\n\
             on every release; random grant (tas) starves unlucky requests and\n\
             collapses — the classic tail blowup.)\n",
        );
        out
    }
}

/// fig12 — sync vs async grant latency under the Zipf/bursty mix: the
/// QSM queueing model ([`service_load::sim_load`]) against the *real*
/// `service::AsyncLockService` futures run on the deterministic
/// virtual-clock executor ([`service_load::async_load`]), both serving
/// the identical request schedule with the same constant futex-wake
/// cost. The async rows are real protocol executions — waker
/// registration, slot parking, cancellation-safe futures — not a model,
/// which is what makes the comparison interesting: the two columns
/// agreeing says the model's constant-handoff assumption survives
/// contact with the actual sharded-table code path.
pub fn fig12(opts: &Opts) -> String {
    use workloads::sweeps::{parallel_cells, sweep_threads};

    let threads: Vec<usize> = if opts.quick {
        vec![4, 16, 64]
    } else {
        vec![4, 16, 64, 256]
    };
    let requests = if opts.quick { 2_000 } else { 12_000 };
    // The executor's wake cost = the model's QSM handoff cost, so the
    // only degrees of freedom left are the protocols themselves.
    let wake_cost = 40;
    let cells = parallel_cells(threads.len(), sweep_threads(), |i| {
        let cfg = ServiceLoadConfig::new(threads[i], requests);
        let sim = service_load::sim_load(LockPolicy::Qsm, &cfg);
        let real = service_load::async_load(&cfg, wake_cost);
        (sim, real)
    });
    let mut table = Table::new(&[
        "workers",
        "sync req/kcyc",
        "async req/kcyc",
        "sync p50",
        "async p50",
        "sync p999",
        "async p999",
    ])
    .with_title(format!(
        "Fig 12: sync model vs async futures, grant latency ({requests} requests, Zipf 1.1, bursty open loop, wake cost {wake_cost})"
    ));
    for (t, (sim, real)) in threads.iter().zip(&cells) {
        table.row_owned(vec![
            t.to_string(),
            format!("{:.2}", sim.throughput()),
            format!("{:.2}", real.throughput()),
            sim.wait_q(0.5).to_string(),
            real.wait_q(0.5).to_string(),
            sim.wait_q(0.999).to_string(),
            real.wait_q(0.999).to_string(),
        ]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        let mut out = table.render();
        out.push('\n');
        out.push_str(
            "(sync = the fig11 QSM discrete-event model; async = the same request\n\
             schedule through real AsyncLockService futures — waker slots, parked\n\
             tasks, a waiting-array semaphore as the worker pool — on the\n\
             deterministic virtual-clock executor. Waits are arrival-to-grant in\n\
             cycles; both charge the same constant cost per futex wake.)\n",
        );
        out
    }
}

/// table7 — telemetry overhead on the fig11-shaped async workload: the
/// identical 256-worker request schedule served with metrics `off`,
/// `counters`, and `sampled:64`, one row per mode. Every column is a
/// pure function of the schedule — virtual makespan and throughput, the
/// service counters, the executor's poll count, the number of latency
/// samples taken — so the table is figure-safe even though the snapshot
/// also carries wall-clock histogram values (those go to the exporters,
/// not here). The `off` row proving all-zero counters and all three rows
/// sharing one makespan **is the claim**: disabled telemetry is exactly
/// free, and enabled telemetry never perturbs the virtual schedule. The
/// wall-clock <3% throughput cost is checked separately by
/// `service_load --overhead-check`, which times the real-thread driver.
pub fn table7(opts: &Opts) -> String {
    use workloads::sweeps::{parallel_cells, sweep_threads};

    let threads = if opts.quick { 64 } else { 256 };
    let requests = if opts.quick { 2_000 } else { 12_000 };
    let wake_cost = 40;
    let modes = [
        service::MetricsMode::Off,
        service::MetricsMode::Counters,
        service::MetricsMode::Sampled(64),
    ];
    let reports = parallel_cells(modes.len(), sweep_threads(), |i| {
        let cfg = ServiceLoadConfig::new(threads, requests);
        service_load::async_load_with_metrics(&cfg, wake_cost, modes[i])
    });
    let mut table = Table::new(&[
        "mode",
        "completed",
        "makespan",
        "req/kcyc",
        "acquires",
        "fast",
        "parked",
        "polls",
        "wait samples",
    ])
    .with_title(format!(
        "Table 7: telemetry overhead on the async service (workers = {threads}, {requests} requests, Zipf 1.1, wake cost {wake_cost})"
    ));
    for (mode, rep) in modes.iter().zip(&reports) {
        table.row_owned(vec![
            mode.label(),
            rep.result.completed.to_string(),
            rep.result.makespan.to_string(),
            format!("{:.2}", rep.result.throughput()),
            rep.snapshot.acquires.to_string(),
            rep.snapshot.fast_path.to_string(),
            rep.snapshot.parked.to_string(),
            rep.polls.to_string(),
            rep.snapshot.wait_samples().to_string(),
        ]);
    }
    if opts.csv {
        table.render_csv()
    } else {
        let mut out = table.render();
        out.push('\n');
        out.push_str(
            "(one fig11-shaped async run per metrics mode, identical request\n\
             schedule. The off row counts nothing — disabled telemetry is exactly\n\
             free — and every row lands the same makespan, so enabled telemetry\n\
             never perturbs the virtual schedule. Wall-clock overhead of the\n\
             counters mode is bounded <3% by `service_load --overhead-check`.)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolve() {
        for f in FIGURES {
            assert!(std::ptr::eq(by_id(f.id).unwrap(), f));
        }
        assert!(by_id("fig99").is_none());
    }

    #[test]
    fn deterministic_figures_render_identically_twice() {
        let opts = Opts {
            csv: false,
            quick: true,
        };
        // table1 exercises the P=1 inline engine path end to end; fig4
        // exercises jittered critical sections. Both must be pure
        // functions of Opts.
        for id in ["table1", "fig4"] {
            let f = by_id(id).unwrap();
            assert_eq!((f.render)(&opts), (f.render)(&opts), "{id} not deterministic");
        }
    }
}
