//! Shared plumbing for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! reconstructed evaluation (see DESIGN.md's per-experiment index) and
//! honours two knobs:
//!
//! * `--csv` — emit CSV instead of the aligned text table;
//! * `SYNCMECH_QUICK=1` — run a reduced sweep (fewer processors and
//!   iterations) so integration tests can smoke-run every binary quickly.

use simcore::stats::LinearFit;
use simcore::Series;

/// Runtime options shared by all figure binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Opts {
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Reduced sweep for smoke tests.
    pub quick: bool,
}

impl Opts {
    /// Parses `--csv` from the argument list and `SYNCMECH_QUICK` from the
    /// environment.
    pub fn from_env() -> Self {
        Opts {
            csv: std::env::args().any(|a| a == "--csv"),
            quick: std::env::var("SYNCMECH_QUICK").map(|v| v == "1").unwrap_or(false),
        }
    }

    /// The processor axis for scaling figures under this mode.
    pub fn procs(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 2, 4]
        } else {
            workloads::sweeps::default_procs()
        }
    }

    /// Critical sections per processor under this mode.
    pub fn iters(&self) -> usize {
        if self.quick {
            4
        } else {
            8
        }
    }

    /// Barrier episodes under this mode.
    pub fn episodes(&self) -> u64 {
        if self.quick {
            4
        } else {
            50
        }
    }
}

/// Prints a series in the selected format, followed by the per-curve
/// power-law scaling exponents (`y ~ P^e`) that EXPERIMENTS.md records.
pub fn emit_series(opts: &Opts, title: &str, series: &Series) {
    let table = series.to_table(title);
    if opts.csv {
        print!("{}", table.render_csv());
        return;
    }
    print!("{}", table.render());
    println!();
    println!("scaling exponents (log-log fit y ~ x^e):");
    for name in series.curve_names() {
        match series.scaling_exponent(name) {
            Some(LinearFit { slope, r2, .. }) => {
                println!("  {name:<22} e = {slope:+.2}  (r² = {r2:.2})");
            }
            None => println!("  {name:<22} e = n/a"),
        }
    }
}

/// Prints the headline "who wins by what factor" line for a figure.
pub fn emit_final_ratio(series: &Series, loser: &str, winner: &str) {
    if let Some(ratio) = series.final_ratio(loser, winner) {
        println!();
        println!(
            "at the largest shared P: {loser} / {winner} = {ratio:.1}x"
        );
    }
}

/// Minimal wall-clock measurement for the `benches/` targets.
///
/// The workspace builds offline, so instead of criterion the bench targets
/// use this hand-rolled harness: warm up, run batches until a time budget
/// is spent, report ns/iter from the fastest batch (the standard "best
/// observed" estimator, robust to scheduler noise in one direction).
pub mod timing {
    use std::time::{Duration, Instant};

    /// Measures `f`, returning the best observed nanoseconds per iteration.
    pub fn bench_ns(mut f: impl FnMut()) -> f64 {
        // Warm-up: pull code and data into cache, trigger lazy init.
        for _ in 0..10 {
            f();
        }
        // Calibrate a batch size that runs for roughly 1 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            if t.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut best = f64::INFINITY;
        while start.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(per_iter);
        }
        best
    }

    /// Runs and prints one named measurement in a `cargo bench`-like format.
    pub fn report(name: &str, f: impl FnMut()) {
        let ns = bench_ns(f);
        println!("{name:<40} {ns:>12.1} ns/iter");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shrinks_sweeps() {
        let quick = Opts {
            csv: false,
            quick: true,
        };
        let full = Opts::default();
        assert!(quick.procs().len() < full.procs().len());
        assert!(quick.iters() <= full.iters());
        assert!(quick.episodes() < full.episodes());
    }

    #[test]
    fn emit_series_does_not_panic() {
        let mut s = Series::new("P", "y");
        s.push("a", 1, 1.0);
        s.push("a", 2, 2.0);
        s.push("b", 1, 1.0);
        emit_series(&Opts::default(), "test", &s);
        emit_series(
            &Opts {
                csv: true,
                quick: false,
            },
            "test",
            &s,
        );
        emit_final_ratio(&s, "a", "b");
    }
}
