//! Shared plumbing for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! reconstructed evaluation (see DESIGN.md's per-experiment index). The
//! figures themselves live in [`figures`] as string-returning render
//! functions over a common registry — the binaries are one-line wrappers,
//! and the `bench_sim` binary runs the whole registry in one process to
//! measure regeneration wall-clock. All binaries honour:
//!
//! * `--csv` — emit CSV instead of the aligned text table;
//! * `--quick` (or `SYNCMECH_QUICK=1`) — run a reduced sweep (fewer
//!   processors and iterations) so integration tests can smoke-run every
//!   figure quickly.
//!
//! Unrecognized arguments are an error: the binary prints usage and exits
//! nonzero rather than silently measuring something other than what the
//! misspelled flag asked for.

use simcore::stats::LinearFit;
use simcore::Series;
use std::fmt::Write as _;

pub mod figures;

/// The traced reference workloads behind `bench_sim --trace-out` and the
/// trace-determinism golden test.
pub mod trace_export {
    use kernels::lockdep::InstrumentedLock;
    use kernels::locks::{lock_by_name, LockKernel};
    use std::sync::Arc;
    use workloads::csbench::{self, CsConfig};

    /// The workloads [`export_trace`] accepts.
    pub const WORKLOADS: &[&str] = &["bus", "oversub"];

    /// Runs one traced workload and returns its Chrome trace-event JSON.
    ///
    /// `bus` is the dedicated-machine csbench with the stock QSM lock;
    /// `oversub` is the fig9 configuration (4-core scheduled bus machine,
    /// 2 threads per core, always-park QSM), whose timeline shows parks,
    /// wake flow arrows and context switches. Both are deterministic: the
    /// tracer is attached explicitly and the simulator's cycle stream is
    /// independent of it.
    ///
    /// # Panics
    ///
    /// On an unknown workload name or a simulator error.
    pub fn export_trace(workload: &str, quick: bool) -> String {
        let iters = if quick { 4 } else { 8 };
        let (machine, lock_name, nprocs) = match workload {
            "bus" => {
                let nprocs = if quick { 4 } else { 8 };
                let machine = memsim::Machine::new(memsim::MachineParams::bus_1991(nprocs));
                (machine, "qsm", nprocs)
            }
            "oversub" => {
                let cores = 4;
                let nprocs = 2 * cores;
                (
                    workloads::oversub::oversub_machine(nprocs, cores),
                    "qsm-block-park",
                    nprocs,
                )
            }
            other => panic!("unknown trace workload {other:?} (expected one of {WORKLOADS:?})"),
        };
        let tracer = trace::Tracer::full(nprocs);
        let machine = machine.with_tracer(Arc::clone(&tracer));
        let lock: Arc<dyn LockKernel + Send + Sync> =
            Arc::from(lock_by_name(lock_name).expect("registry lock"));
        let instrumented = InstrumentedLock::new(lock, 0);
        let cfg = CsConfig::new(nprocs, iters);
        csbench::run(&machine, &instrumented, &cfg)
            .unwrap_or_else(|e| panic!("trace workload {workload}: {e}"));
        trace::chrome::export_tracer(&tracer, &format!("syncmech {workload} {lock_name}"))
    }
}

/// Runtime options shared by all figure binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Opts {
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Reduced sweep for smoke tests.
    pub quick: bool,
}

/// Outcome of parsing that is not an `Opts`: the caller decides how to
/// exit (binaries print usage; tests assert on the variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--help` / `-h` was given.
    Help,
    /// An argument no figure binary understands.
    Unknown(String),
}

impl Opts {
    /// The usage text shared by every figure binary.
    pub const USAGE: &'static str = "\
usage: <figure binary> [--csv] [--quick] [--help]

  --csv     emit CSV instead of the aligned text table
  --quick   reduced sweep (same as SYNCMECH_QUICK=1); used by smoke tests
  --help    show this help

environment:
  SYNCMECH_QUICK=1            same as --quick
  SYNCMECH_SWEEP_THREADS=N    host threads for the sweep fan-out
  SYNCMECH_REPLAY_FRAGMENT=K  record each run and replay K-cycle fragments
                              concurrently (byte-identical output)
  SYNCMECH_REPLAY_WORKERS=N   host threads for the fragment replay fan-out";

    /// Parses command-line flags on top of `base` (the environment-derived
    /// defaults). Stops at the first argument it does not recognize.
    pub fn parse(args: impl Iterator<Item = String>, mut base: Opts) -> Result<Opts, ArgError> {
        for arg in args {
            match arg.as_str() {
                "--csv" => base.csv = true,
                "--quick" => base.quick = true,
                "--help" | "-h" => return Err(ArgError::Help),
                other => return Err(ArgError::Unknown(other.to_string())),
            }
        }
        Ok(base)
    }

    /// Parses the process arguments and `SYNCMECH_QUICK`; on `--help`
    /// prints usage and exits 0, on an unknown argument prints usage to
    /// stderr and exits 2.
    pub fn from_env() -> Self {
        let base = Opts {
            csv: false,
            quick: std::env::var("SYNCMECH_QUICK").map(|v| v == "1").unwrap_or(false),
        };
        match Self::parse(std::env::args().skip(1), base) {
            Ok(opts) => opts,
            Err(ArgError::Help) => {
                println!("{}", Self::USAGE);
                std::process::exit(0);
            }
            Err(ArgError::Unknown(flag)) => {
                eprintln!("error: unrecognized argument `{flag}`");
                eprintln!("{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// The processor axis for scaling figures under this mode.
    pub fn procs(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 2, 4]
        } else {
            workloads::sweeps::default_procs()
        }
    }

    /// Critical sections per processor under this mode.
    pub fn iters(&self) -> usize {
        if self.quick {
            4
        } else {
            8
        }
    }

    /// Barrier episodes under this mode.
    pub fn episodes(&self) -> u64 {
        if self.quick {
            4
        } else {
            50
        }
    }
}

/// Renders a series in the selected format, followed by the per-curve
/// power-law scaling exponents (`y ~ P^e`) that EXPERIMENTS.md records.
pub fn series_block(opts: &Opts, title: &str, series: &Series) -> String {
    let table = series.to_table(title);
    if opts.csv {
        return table.render_csv();
    }
    let mut out = table.render();
    out.push('\n');
    out.push_str("scaling exponents (log-log fit y ~ x^e):\n");
    for name in series.curve_names() {
        match series.scaling_exponent(name) {
            Some(LinearFit { slope, r2, .. }) => {
                let _ = writeln!(out, "  {name:<22} e = {slope:+.2}  (r² = {r2:.2})");
            }
            None => {
                let _ = writeln!(out, "  {name:<22} e = n/a");
            }
        }
    }
    out
}

/// Renders the headline "who wins by what factor" line for a figure
/// (empty string when the curves don't share a final point).
pub fn final_ratio_block(series: &Series, loser: &str, winner: &str) -> String {
    match series.final_ratio(loser, winner) {
        Some(ratio) => format!("\nat the largest shared P: {loser} / {winner} = {ratio:.1}x\n"),
        None => String::new(),
    }
}

/// Prints a series in the selected format; see [`series_block`].
pub fn emit_series(opts: &Opts, title: &str, series: &Series) {
    print!("{}", series_block(opts, title, series));
}

/// Prints the headline ratio line; see [`final_ratio_block`].
pub fn emit_final_ratio(series: &Series, loser: &str, winner: &str) {
    print!("{}", final_ratio_block(series, loser, winner));
}

/// Minimal wall-clock measurement for the `benches/` targets.
///
/// The workspace builds offline, so instead of criterion the bench targets
/// use this hand-rolled harness: warm up, run batches until a time budget
/// is spent, and report both the fastest batch (the standard
/// "best observed" estimator, robust to scheduler noise in one direction)
/// and the median batch (robust in both).
pub mod timing {
    use std::time::{Duration, Instant};

    /// One benchmark's results, in nanoseconds per iteration.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Measurement {
        /// Fastest batch observed.
        pub best_ns: f64,
        /// Median across batches.
        pub median_ns: f64,
        /// Iterations per batch (calibrated to ~1 ms per batch).
        pub batch: u64,
        /// Number of batches the time budget allowed.
        pub samples: usize,
    }

    impl Measurement {
        /// One-line machine-readable form, suitable for concatenating
        /// into a JSON array or streaming as JSON lines.
        pub fn json(&self, name: &str) -> String {
            format!(
                "{{\"name\":\"{}\",\"best_ns\":{:.1},\"median_ns\":{:.1},\"batch\":{},\"samples\":{}}}",
                name.replace('\\', "\\\\").replace('"', "\\\""),
                self.best_ns,
                self.median_ns,
                self.batch,
                self.samples
            )
        }
    }

    /// Measures `f` over a ~50 ms budget of ~1 ms batches.
    pub fn bench_stats(mut f: impl FnMut()) -> Measurement {
        // Warm-up: pull code and data into cache, trigger lazy init.
        for _ in 0..10 {
            f();
        }
        // Calibrate a batch size that runs for roughly 1 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            if t.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut per_iter = Vec::new();
        while start.elapsed() < budget || per_iter.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        Measurement {
            best_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
            batch,
            samples: per_iter.len(),
        }
    }

    /// Measures `f`, returning the best observed nanoseconds per iteration.
    pub fn bench_ns(f: impl FnMut()) -> f64 {
        bench_stats(f).best_ns
    }

    /// Runs and prints one named measurement in a `cargo bench`-like
    /// format; set `SYNCMECH_BENCH_JSON=1` to emit a JSON line instead.
    pub fn report(name: &str, f: impl FnMut()) {
        let m = bench_stats(f);
        if std::env::var("SYNCMECH_BENCH_JSON").map(|v| v == "1").unwrap_or(false) {
            println!("{}", m.json(name));
        } else {
            println!(
                "{name:<40} {:>12.1} ns/iter (median {:.1})",
                m.best_ns, m.median_ns
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shrinks_sweeps() {
        let quick = Opts {
            csv: false,
            quick: true,
        };
        let full = Opts::default();
        assert!(quick.procs().len() < full.procs().len());
        assert!(quick.iters() <= full.iters());
        assert!(quick.episodes() < full.episodes());
    }

    #[test]
    fn emit_series_does_not_panic() {
        let mut s = Series::new("P", "y");
        s.push("a", 1, 1.0);
        s.push("a", 2, 2.0);
        s.push("b", 1, 1.0);
        emit_series(&Opts::default(), "test", &s);
        emit_series(
            &Opts {
                csv: true,
                quick: false,
            },
            "test",
            &s,
        );
        emit_final_ratio(&s, "a", "b");
    }

    #[test]
    fn parse_accepts_known_flags_in_any_order() {
        let opts = Opts::parse(
            ["--quick".to_string(), "--csv".to_string()].into_iter(),
            Opts::default(),
        )
        .unwrap();
        assert!(opts.csv && opts.quick);
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        let err = Opts::parse(["--cvs".to_string()].into_iter(), Opts::default()).unwrap_err();
        assert_eq!(err, ArgError::Unknown("--cvs".to_string()));
        let err = Opts::parse(["--help".to_string()].into_iter(), Opts::default()).unwrap_err();
        assert_eq!(err, ArgError::Help);
    }

    #[test]
    fn parse_keeps_environment_base() {
        let base = Opts {
            csv: false,
            quick: true,
        };
        let opts = Opts::parse(std::iter::empty(), base).unwrap();
        assert!(opts.quick && !opts.csv);
    }

    #[test]
    fn timing_measurement_is_sane() {
        let m = timing::bench_stats(|| {
            std::hint::black_box(1 + 1);
        });
        assert!(m.best_ns > 0.0);
        assert!(m.median_ns >= m.best_ns);
        assert!(m.samples >= 1);
        let j = m.json("adds");
        assert!(j.contains("\"name\":\"adds\"") && j.contains("median_ns"));
    }
}
