//! Criterion benches of the real-hardware primitives (`qsm` crate).
//!
//! Complements the fig8 binary with statistically disciplined single-thread
//! measurements: uncontended acquire/release per lock, eventcount advance,
//! sequencer tickets, and a solo barrier episode.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_uncontended_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_lock");
    for lock in qsm::all_locks(4) {
        group.bench_function(lock.name(), |b| {
            b.iter(|| {
                let token = lock.lock();
                // An empty critical section isolates lock overhead.
                unsafe { lock.unlock(black_box(token)) };
            });
        });
    }
    group.finish();
}

fn bench_eventcount(c: &mut Criterion) {
    let ec = qsm::EventCount::new();
    c.bench_function("eventcount_advance", |b| {
        b.iter(|| black_box(ec.advance()));
    });
    c.bench_function("eventcount_read", |b| {
        b.iter(|| black_box(ec.read()));
    });
    let seq = qsm::Sequencer::new();
    c.bench_function("sequencer_ticket", |b| {
        b.iter(|| black_box(seq.ticket()));
    });
}

fn bench_barrier_solo(c: &mut Criterion) {
    let barrier = qsm::QsmBarrier::new(1);
    c.bench_function("qsm_barrier_solo_episode", |b| {
        b.iter(|| black_box(barrier.wait()));
    });
}

fn bench_mutex(c: &mut Criterion) {
    let mutex: qsm::Mutex<u64> = qsm::Mutex::new(0);
    c.bench_function("qsm_mutex_lock_increment", |b| {
        b.iter(|| {
            *mutex.lock() += 1;
        });
    });
}

criterion_group!(
    benches,
    bench_uncontended_locks,
    bench_eventcount,
    bench_barrier_solo,
    bench_mutex
);
criterion_main!(benches);
