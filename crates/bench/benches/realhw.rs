//! Benches of the real-hardware primitives (`qsm` crate).
//!
//! Complements the fig8 binary with single-thread overhead measurements:
//! uncontended acquire/release per lock, eventcount advance, sequencer
//! tickets, and a solo barrier episode. Uses the workspace's own
//! `bench::timing` harness; run with `cargo bench -p bench --bench realhw`.

use bench::timing::report;
use std::hint::black_box;

fn main() {
    for lock in qsm::all_locks(4) {
        report(&format!("uncontended_lock/{}", lock.name()), || {
            let token = lock.lock();
            // An empty critical section isolates lock overhead.
            unsafe { lock.unlock(black_box(token)) };
        });
    }

    let ec = qsm::EventCount::new();
    report("eventcount_advance", || {
        black_box(ec.advance());
    });
    report("eventcount_read", || {
        black_box(ec.read());
    });
    let seq = qsm::Sequencer::new();
    report("sequencer_ticket", || {
        black_box(seq.ticket());
    });

    let barrier = qsm::QsmBarrier::new(1);
    report("qsm_barrier_solo_episode", || {
        black_box(barrier.wait());
    });

    let mutex: qsm::Mutex<u64> = qsm::Mutex::new(0);
    report("qsm_mutex_lock_increment", || {
        *mutex.lock() += 1;
    });
}
