//! Criterion benches of the simulator itself — not a paper figure, but the
//! number that bounds how large a sweep the figure binaries can afford:
//! simulated memory operations per second of host time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::locks::{counter_trial, mcs::McsLock, tas::TasLock};
use memsim::{Machine, MachineParams};

fn bench_fetch_add_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fetch_add");
    group.sample_size(10);
    for &p in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let machine = Machine::new(MachineParams::bus_1991(p));
            b.iter(|| {
                machine
                    .run(p, 1, |proc| {
                        for _ in 0..50 {
                            proc.fetch_add(0, 1);
                        }
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_lock_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_lock_trial_p8");
    group.sample_size(10);
    group.bench_function("mcs", |b| {
        let machine = Machine::new(MachineParams::bus_1991(8));
        b.iter(|| counter_trial(&machine, &McsLock, 8, 8, 20).unwrap());
    });
    group.bench_function("tas", |b| {
        let machine = Machine::new(MachineParams::bus_1991(8));
        b.iter(|| counter_trial(&machine, &TasLock, 8, 8, 20).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_fetch_add_throughput, bench_lock_trials);
criterion_main!(benches);
