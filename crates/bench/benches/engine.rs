//! Benches of the simulator itself — not a paper figure, but the number
//! that bounds how large a sweep the figure binaries can afford: simulated
//! memory operations per second of host time.
//!
//! Uses the workspace's own `bench::timing` harness (best-observed
//! ns/iter); run with `cargo bench -p bench --bench engine`.

use bench::timing::report;
use kernels::locks::{counter_trial, mcs::McsLock, tas::TasLock};
use memsim::{Machine, MachineParams};

fn main() {
    for &p in &[1usize, 4, 16] {
        let machine = Machine::new(MachineParams::bus_1991(p));
        report(&format!("sim_fetch_add/p{p}"), || {
            machine
                .run(p, 1, |proc| {
                    for _ in 0..50 {
                        proc.fetch_add(0, 1);
                    }
                })
                .unwrap();
        });
    }

    let machine = Machine::new(MachineParams::bus_1991(8));
    report("sim_lock_trial_p8/mcs", || {
        counter_trial(&machine, &McsLock, 8, 8, 20).unwrap();
    });
    report("sim_lock_trial_p8/tas", || {
        counter_trial(&machine, &TasLock, 8, 8, 20).unwrap();
    });
}
