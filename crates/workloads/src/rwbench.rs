//! Reader/writer mix workload — the `table3` extension experiment.
//!
//! P processors issue a stream of operations, each a read with probability
//! `read_fraction`. Reads hold shared access for `read_hold` cycles; writes
//! hold exclusive access for `write_hold` and increment a counter
//! (non-atomically, as the usual mutual-exclusion witness). The same stream
//! is also run under a plain [`QsmLock`] mutex for comparison — the rwlock
//! should win exactly in proportion to the read fraction.

use kernels::locks::qsm::QsmLock;
use kernels::locks::LockKernel;
use kernels::rwlock::RwKernel;
use kernels::{Region, SyncCtx};
use memsim::{Machine, SimError};
use simcore::Rng;

/// Parameters of the reader/writer trial.
#[derive(Debug, Clone, Copy)]
pub struct RwConfig {
    /// Processors.
    pub nprocs: usize,
    /// Operations per processor.
    pub iters: usize,
    /// Probability an operation is a read.
    pub read_fraction: f64,
    /// Cycles held in shared mode.
    pub read_hold: u64,
    /// Cycles held in exclusive mode.
    pub write_hold: u64,
    /// Seed for the per-processor op streams.
    pub seed: u64,
}

/// Result of one trial.
#[derive(Debug, Clone, Copy)]
pub struct RwResult {
    /// Total elapsed cycles.
    pub total_cycles: u64,
    /// Operations per kilocycle.
    pub throughput: f64,
    /// Writes performed (counter-verified).
    pub writes: u64,
}

/// Pre-draws each processor's operation kinds so the rwlock and mutex runs
/// see the *identical* operation stream.
fn op_streams(cfg: &RwConfig) -> Vec<Vec<bool>> {
    (0..cfg.nprocs)
        .map(|pid| {
            let mut rng = Rng::new(cfg.seed ^ (pid as u64).wrapping_mul(0x9E37_79B9));
            (0..cfg.iters).map(|_| rng.chance(cfg.read_fraction)).collect()
        })
        .collect()
}

/// Runs the mix under the reader-writer kernel.
pub fn run_rwlock(machine: &Machine, cfg: &RwConfig) -> Result<RwResult, SimError> {
    let line_words = machine.params().line_words;
    let region = Region::new(0, line_words, RwKernel.lines_needed(cfg.nprocs));
    let scratch = Region::new(region.end(), line_words, 1);
    let memory = vec![0; region.words() + scratch.words()];
    let counter = scratch.slot(0);
    let streams = op_streams(cfg);
    let expected_writes: u64 = streams
        .iter()
        .flatten()
        .filter(|&&is_read| !is_read)
        .count() as u64;
    let report = machine.run_with_init(cfg.nprocs, memory, |p| {
        let mut ps = RwKernel.proc_init(p.pid(), &region);
        for &is_read in &streams[p.pid()] {
            if is_read {
                RwKernel.read_acquire(p, &region);
                SyncCtx::delay(p, cfg.read_hold);
                RwKernel.read_release(p, &region);
            } else {
                let tok = RwKernel.write_acquire(p, &region, &mut ps);
                let v = SyncCtx::load(p, counter);
                SyncCtx::delay(p, cfg.write_hold);
                SyncCtx::store(p, counter, v + 1);
                RwKernel.write_release(p, &region, &mut ps, tok);
            }
        }
    })?;
    assert_eq!(
        report.memory[counter], expected_writes,
        "rwlock lost writes"
    );
    Ok(summarize(cfg, report.metrics.total_cycles, expected_writes))
}

/// Runs the identical mix with every operation exclusive (plain QSM mutex).
pub fn run_mutex(machine: &Machine, cfg: &RwConfig) -> Result<RwResult, SimError> {
    let line_words = machine.params().line_words;
    let lock = QsmLock;
    let (fix, memory) = kernels::locks::fixture(&lock, cfg.nprocs, line_words, 1);
    let counter = fix.scratch.slot(0);
    let streams = op_streams(cfg);
    let expected_writes: u64 = streams
        .iter()
        .flatten()
        .filter(|&&is_read| !is_read)
        .count() as u64;
    let report = machine.run_with_init(cfg.nprocs, memory, |p| {
        let mut ps = lock.proc_init(p.pid(), &fix.region);
        for &is_read in &streams[p.pid()] {
            let tok = lock.acquire(p, &fix.region, &mut ps);
            if is_read {
                SyncCtx::delay(p, cfg.read_hold);
            } else {
                let v = SyncCtx::load(p, counter);
                SyncCtx::delay(p, cfg.write_hold);
                SyncCtx::store(p, counter, v + 1);
            }
            lock.release(p, &fix.region, &mut ps, tok);
        }
    })?;
    assert_eq!(report.memory[counter], expected_writes, "mutex lost writes");
    Ok(summarize(cfg, report.metrics.total_cycles, expected_writes))
}

fn summarize(cfg: &RwConfig, total_cycles: u64, writes: u64) -> RwResult {
    let ops = (cfg.nprocs * cfg.iters) as f64;
    RwResult {
        total_cycles,
        throughput: ops * 1000.0 / total_cycles as f64,
        writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineParams;

    fn cfg(read_fraction: f64) -> RwConfig {
        RwConfig {
            nprocs: 8,
            iters: 12,
            read_fraction,
            // Reads must be long relative to the coherence ops on the
            // shared status word, or reader-counter churn dominates (the
            // classic "reader locks don't pay for short sections" effect).
            read_hold: 400,
            write_hold: 60,
            seed: 0xABCD,
        }
    }

    #[test]
    fn write_totals_match_between_runs() {
        let machine = Machine::new(MachineParams::bus_1991(8));
        let a = run_rwlock(&machine, &cfg(0.5)).unwrap();
        let b = run_mutex(&machine, &cfg(0.5)).unwrap();
        assert_eq!(a.writes, b.writes, "identical streams must agree");
    }

    #[test]
    fn read_heavy_mix_favours_rwlock() {
        let machine = Machine::new(MachineParams::bus_1991(8));
        let rw = run_rwlock(&machine, &cfg(0.95)).unwrap();
        let mx = run_mutex(&machine, &cfg(0.95)).unwrap();
        assert!(
            rw.throughput > 1.3 * mx.throughput,
            "rwlock {:.2} vs mutex {:.2} at 95% reads",
            rw.throughput,
            mx.throughput
        );
    }

    #[test]
    fn write_only_mix_is_not_better_than_mutex() {
        let machine = Machine::new(MachineParams::bus_1991(8));
        let rw = run_rwlock(&machine, &cfg(0.0)).unwrap();
        let mx = run_mutex(&machine, &cfg(0.0)).unwrap();
        assert!(
            rw.throughput <= mx.throughput * 1.1,
            "all-writes rwlock {:.2} should not beat mutex {:.2}",
            rw.throughput,
            mx.throughput
        );
    }

    #[test]
    fn deterministic() {
        let machine = Machine::new(MachineParams::bus_1991(6));
        let c = RwConfig {
            nprocs: 6,
            ..cfg(0.7)
        };
        let a = run_rwlock(&machine, &c).unwrap();
        let b = run_rwlock(&machine, &c).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
    }
}
