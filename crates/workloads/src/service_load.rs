//! Service load generator — the data behind fig11 and table6.
//!
//! Two drivers share one workload shape (bursty open-loop arrivals, Zipf
//! key skew, a reader/writer hold-time mix, a bounded worker pool):
//!
//! * [`sim_load`] — a **virtual-time discrete-event queueing model** of
//!   the sharded lock service under three per-key lock policies. This is
//!   what the figures plot: like every other deterministic figure in the
//!   registry, the output must be a pure function of its configuration,
//!   which no wall-clock run of real threads can be. The model prices the
//!   *handoff* differently per policy — the thing the 1991 paper
//!   measures: QSM hands the lock to one queued waiter at constant cost;
//!   a ticket lock's release invalidates every spinner, so its handoff
//!   cost grows with the waiter count; a TAS lock additionally grants in
//!   effectively random order (the retry scramble), which is what blows
//!   up the tail percentiles rather than the mean.
//! * [`run_real`] — the same arrival/key/hold recipe driven through the
//!   actual [`service::LockService`] on `std::thread` workers, recording
//!   wall-clock wait/hold nanoseconds into the same `trace` histograms.
//!   This is the CI smoke driver and the stress harness's engine; it is
//!   deliberately *not* a figure input.
//! * [`async_load`] — the **identical request schedule** (same generator
//!   streams) driven through the real
//!   [`service::AsyncLockService`] futures on the deterministic
//!   virtual-clock executor ([`crate::executor`]). Unlike `run_real`,
//!   this *is* a figure input (fig12): one task per request, a
//!   [`service::WaitingArraySemaphore`] as the worker pool, and every
//!   futex wake priced at the executor's wake cost — so the async path
//!   is compared against [`sim_load`]'s QSM policy on equal footing.
//!
//! Wait in all drivers is arrival-to-grant (it includes waiting for a
//! worker and waiting for the key), hold is grant-to-release — the same
//! decomposition the `waitdist` module uses for fig10.

use crate::executor::{Executor, Outcome};
use crate::sweeps::{parallel_cells, sweep_threads};
use std::cell::RefCell;
use simcore::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use trace::histo::Histogram;

/// Per-key lock policy of the simulated service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPolicy {
    /// Queue lock: FIFO grant, constant-cost handoff (one wake, one line
    /// transfer, however long the queue).
    Qsm,
    /// Ticket lock: FIFO grant, but release broadcasts to every spinner —
    /// handoff cost grows with the waiter count.
    Ticket,
    /// Test-and-set: grant order is the retry scramble (effectively
    /// random), and every handoff pays the full storm.
    Tas,
}

impl LockPolicy {
    /// The policies fig11/table6 compare, in figure order.
    pub const ALL: &'static [LockPolicy] = &[LockPolicy::Qsm, LockPolicy::Ticket, LockPolicy::Tas];

    /// Curve/row label.
    pub fn name(self) -> &'static str {
        match self {
            LockPolicy::Qsm => "qsm",
            LockPolicy::Ticket => "ticket",
            LockPolicy::Tas => "tas",
        }
    }

    /// Cycles to hand a released key to its next holder, given how many
    /// waiters are queued on the key at release time.
    fn grant_cost(self, waiters: usize) -> u64 {
        match self {
            LockPolicy::Qsm => 40,
            LockPolicy::Ticket => 30 + 12 * waiters as u64,
            LockPolicy::Tas => 30 + 25 * waiters as u64,
        }
    }

    /// Picks which waiter the released key goes to: queue position for
    /// the FIFO policies, a random one for the TAS scramble.
    fn pick(self, waiters: usize, rng: &mut Rng) -> usize {
        match self {
            LockPolicy::Qsm | LockPolicy::Ticket => 0,
            LockPolicy::Tas => rng.next_below(waiters as u64) as usize,
        }
    }
}

/// Zipf(s) sampler over ranks `0..n` via the precomputed CDF — rank 0 is
/// the hottest key. Shared by the simulated and the real driver.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` is uniform).
    ///
    /// # Panics
    ///
    /// If `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u64
    }
}

/// Configuration shared by both drivers. Cycle-valued fields are virtual
/// cycles in [`sim_load`]; [`run_real`] reinterprets holds as spin
/// iterations and ignores the arrival process (its workers are
/// closed-loop).
#[derive(Debug, Clone)]
pub struct ServiceLoadConfig {
    /// Worker pool size — the service's concurrency limit.
    pub threads: usize,
    /// Distinct logical keys.
    pub keys: usize,
    /// Zipf exponent of the key popularity (0 = uniform).
    pub zipf_s: f64,
    /// Total requests to issue.
    pub requests: usize,
    /// Mean gap between arrival *bursts*, in cycles (exponential).
    pub mean_gap: u64,
    /// Max burst size: each burst carries `1..=max_burst` back-to-back
    /// arrivals.
    pub max_burst: usize,
    /// Fraction of requests that are reads (short holds).
    pub read_fraction: f64,
    /// Mean hold for a read request, cycles (exponential).
    pub read_hold: u64,
    /// Mean hold for a write request, cycles (exponential).
    pub write_hold: u64,
    /// RNG seed; every derived stream forks from it.
    pub seed: u64,
}

impl ServiceLoadConfig {
    /// The baseline mix: bursty arrivals, strong skew, 80% short reads.
    pub fn new(threads: usize, requests: usize) -> Self {
        ServiceLoadConfig {
            threads,
            keys: 512,
            zipf_s: 1.1,
            requests,
            mean_gap: 96,
            max_burst: 8,
            read_fraction: 0.8,
            read_hold: 60,
            write_hold: 400,
            seed: 0xC0FFEE,
        }
    }
}

/// One simulated trial's outcome.
#[derive(Debug, Clone)]
pub struct ServiceLoadResult {
    /// The policy simulated.
    pub policy: LockPolicy,
    /// Worker pool size.
    pub threads: usize,
    /// Requests completed (always `requests`).
    pub completed: u64,
    /// Virtual time of the last completion.
    pub makespan: u64,
    /// Arrival-to-grant times, cycles.
    pub wait: Histogram,
    /// Grant-to-release times, cycles.
    pub hold: Histogram,
}

impl ServiceLoadResult {
    /// Completed requests per thousand virtual cycles.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 * 1000.0 / self.makespan.max(1) as f64
    }

    /// Wait-time quantile `q` in `[0, 1]`, cycles.
    pub fn wait_q(&self, q: f64) -> u64 {
        self.wait.quantile(q)
    }
}

/// A request's static description, fixed at generation time so every
/// policy serves the *identical* arrival sequence.
struct Req {
    arrival: u64,
    key: u64,
    hold: u64,
}

/// Generates the arrival schedule: bursts of `1..=max_burst` requests
/// separated by exponential gaps, keys Zipf-ranked, holds drawn from the
/// read/write mix. Pure function of the config (all randomness from
/// forked streams), so every policy replays the same offered load.
fn generate_requests(cfg: &ServiceLoadConfig) -> Vec<Req> {
    let mut root = Rng::new(cfg.seed);
    let mut arrivals = root.fork(1);
    let mut keys = root.fork(2);
    let mut holds = root.fork(3);
    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    let mut reqs = Vec::with_capacity(cfg.requests);
    let mut t = 0u64;
    while reqs.len() < cfg.requests {
        t += arrivals.exp_cycles(cfg.mean_gap).max(1);
        let burst = 1 + arrivals.next_below(cfg.max_burst as u64) as usize;
        for _ in 0..burst.min(cfg.requests - reqs.len()) {
            let hold = if holds.chance(cfg.read_fraction) {
                holds.exp_cycles(cfg.read_hold).max(1)
            } else {
                holds.exp_cycles(cfg.write_hold).max(1)
            };
            reqs.push(Req {
                arrival: t,
                key: zipf.sample(&mut keys),
                hold,
            });
        }
    }
    reqs
}

/// What a scheduled event does when it fires.
enum EventKind {
    Arrival(u32),
    Completion(u32),
}

/// Per-key lock state while the key is live in the model.
#[derive(Default)]
struct KeyState {
    held: bool,
    waiters: VecDeque<u32>,
}

/// Runs the discrete-event model of the service under one policy.
/// Deterministic: the event queue breaks time ties by insertion sequence,
/// and all randomness comes from streams forked off the config seed.
pub fn sim_load(policy: LockPolicy, cfg: &ServiceLoadConfig) -> ServiceLoadResult {
    assert!(cfg.threads > 0, "the service load needs at least one worker");
    let reqs = generate_requests(cfg);
    let mut grant_rng = Rng::new(cfg.seed).fork(4);

    // Min-heap of (time, insertion seq): seq makes tie order — and with
    // it the whole run — deterministic.
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut payload: HashMap<u64, EventKind> = HashMap::new();
    let mut seq = 0u64;
    let mut schedule = |heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                        payload: &mut HashMap<u64, EventKind>,
                        t: u64,
                        kind: EventKind| {
        heap.push(Reverse((t, seq)));
        payload.insert(seq, kind);
        seq += 1;
    };
    for (i, r) in reqs.iter().enumerate() {
        schedule(&mut heap, &mut payload, r.arrival, EventKind::Arrival(i as u32));
    }

    let mut keys: HashMap<u64, KeyState> = HashMap::new();
    let mut admission: VecDeque<u32> = VecDeque::new();
    let mut free_workers = cfg.threads;
    let mut wait = Histogram::new();
    let mut hold = Histogram::new();
    let mut completed = 0u64;
    let mut makespan = 0u64;

    // Grants `r` the key (recording its wait) and schedules its
    // completion after `extra` handoff cycles plus its hold.
    let grant = |r: u32,
                 now: u64,
                 extra: u64,
                 reqs: &[Req],
                 wait: &mut Histogram,
                 heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                 payload: &mut HashMap<u64, EventKind>,
                 seq: &mut u64| {
        let req = &reqs[r as usize];
        wait.record(now + extra - req.arrival);
        heap.push(Reverse((now + extra + req.hold, *seq)));
        payload.insert(*seq, EventKind::Completion(r));
        *seq += 1;
    };

    while let Some(Reverse((now, id))) = heap.pop() {
        match payload.remove(&id).expect("scheduled event has a payload") {
            EventKind::Arrival(r) => {
                if free_workers == 0 {
                    admission.push_back(r);
                    continue;
                }
                free_workers -= 1;
                let key = reqs[r as usize].key;
                let ks = keys.entry(key).or_default();
                if ks.held {
                    ks.waiters.push_back(r);
                } else {
                    ks.held = true;
                    grant(r, now, 0, &reqs, &mut wait, &mut heap, &mut payload, &mut seq);
                }
            }
            EventKind::Completion(r) => {
                let req = &reqs[r as usize];
                hold.record(req.hold);
                completed += 1;
                makespan = makespan.max(now);
                // Release the key: hand off per policy, or retire it.
                let ks = keys.get_mut(&req.key).expect("completed key is live");
                if ks.waiters.is_empty() {
                    keys.remove(&req.key);
                } else {
                    let n = ks.waiters.len();
                    let next = ks
                        .waiters
                        .remove(policy.pick(n, &mut grant_rng))
                        .expect("picked waiter in range");
                    let cost = policy.grant_cost(n);
                    grant(
                        next, now, cost, &reqs, &mut wait, &mut heap, &mut payload, &mut seq,
                    );
                }
                // Free the worker: admit the oldest queued arrival.
                if let Some(q) = admission.pop_front() {
                    let key = reqs[q as usize].key;
                    let ks = keys.entry(key).or_default();
                    if ks.held {
                        ks.waiters.push_back(q);
                    } else {
                        ks.held = true;
                        grant(q, now, 0, &reqs, &mut wait, &mut heap, &mut payload, &mut seq);
                    }
                } else {
                    free_workers += 1;
                }
            }
        }
    }

    debug_assert!(keys.is_empty(), "all keys retired at drain");
    ServiceLoadResult {
        policy,
        threads: cfg.threads,
        completed,
        makespan,
        wait,
        hold,
    }
}

/// The fig11/table6 sweep: every policy at every worker-pool size, fanned
/// out across host threads like the other figure sweeps. Results come
/// back in `(policy, threads)` grid order regardless of the fan-out.
pub fn service_sweep(threads: &[usize], requests: usize) -> Vec<ServiceLoadResult> {
    let cells: Vec<(LockPolicy, usize)> = LockPolicy::ALL
        .iter()
        .flat_map(|&p| threads.iter().map(move |&t| (p, t)))
        .collect();
    parallel_cells(cells.len(), sweep_threads(), |i| {
        let (policy, t) = cells[i];
        sim_load(policy, &ServiceLoadConfig::new(t, requests))
    })
}

/// Outcome of an [`async_load`] run — the async column of fig12.
#[derive(Debug, Clone)]
pub struct AsyncServiceResult {
    /// Worker pool size (semaphore permits).
    pub threads: usize,
    /// Requests completed (always `requests`).
    pub completed: u64,
    /// Virtual time of the last completion.
    pub makespan: u64,
    /// Arrival-to-grant times, cycles.
    pub wait: Histogram,
    /// Grant-to-release times, cycles.
    pub hold: Histogram,
}

impl AsyncServiceResult {
    /// Completed requests per thousand virtual cycles.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 * 1000.0 / self.makespan.max(1) as f64
    }

    /// Wait-time quantile `q` in `[0, 1]`, cycles.
    pub fn wait_q(&self, q: f64) -> u64 {
        self.wait.quantile(q)
    }
}

/// An [`async_load_with_metrics`] run: the workload outcome plus the
/// telemetry the service and the executor collected while serving it.
/// This is what `table7` renders — the counters are pure functions of
/// the schedule, so they are figure-safe; only the histogram *nanosecond*
/// values inside [`service::MetricsSnapshot`] are wall-clock.
#[derive(Debug)]
pub struct AsyncMetricsReport {
    /// The workload outcome, identical to what [`async_load`] returns.
    pub result: AsyncServiceResult,
    /// The service-side telemetry snapshot (lock + semaphore share one
    /// [`service::ServiceMetrics`], so semaphore grants land here too).
    pub snapshot: service::MetricsSnapshot,
    /// Task polls the executor dispatched.
    pub polls: u64,
    /// Virtual cycles from futex wake to the woken task's re-poll.
    pub wake_to_poll: Histogram,
}

/// Drives the async lock service with the *same* request schedule as
/// [`sim_load`] on the deterministic virtual-clock executor: one task per
/// request sleeps until its arrival, acquires a worker permit from a
/// [`service::WaitingArraySemaphore`], locks its key through a real
/// [`service::LockFuture`], holds for the scripted time, then releases
/// both. `wake_cost` is what the executor charges between a futex wake
/// firing and the woken task's re-poll — pass the QSM handoff cost (40)
/// to compare against [`sim_load`]'s QSM policy on equal footing.
///
/// Deterministic despite running real parking-lot code: the executor is
/// single-threaded with a virtual clock, every wake targets a single
/// address whose waiters resume in FIFO order, and batch wakes fire in
/// publication order — no heap address or ASLR artifact can reorder
/// anything observable.
pub fn async_load(cfg: &ServiceLoadConfig, wake_cost: u64) -> AsyncServiceResult {
    async_load_with_metrics(cfg, wake_cost, service::service_metrics()).result
}

/// [`async_load`] with an explicit metrics mode, returning the service's
/// telemetry snapshot and the executor's poll accounting alongside the
/// workload result. The service and the worker-pool semaphore share one
/// per-instance [`service::ServiceMetrics`], so the run never touches the
/// process-global registry and trials at different modes don't bleed into
/// each other — which is exactly what the `table7` overhead comparison
/// needs.
pub fn async_load_with_metrics(
    cfg: &ServiceLoadConfig,
    wake_cost: u64,
    mode: service::MetricsMode,
) -> AsyncMetricsReport {
    assert!(cfg.threads > 0, "the service load needs at least one worker");
    let reqs = generate_requests(cfg);
    let svc = service::AsyncLockService::with_metrics_mode(256, mode);
    let pool = service::WaitingArraySemaphore::with_metrics(
        cfg.threads,
        cfg.threads.next_power_of_two().max(2),
        svc.metrics().clone(),
    );
    struct Tally {
        wait: Histogram,
        hold: Histogram,
        completed: u64,
        makespan: u64,
    }
    let tally = RefCell::new(Tally {
        wait: Histogram::new(),
        hold: Histogram::new(),
        completed: 0,
        makespan: 0,
    });
    let mut ex = Executor::new(wake_cost);
    let h = ex.handle();
    for req in &reqs {
        let (h, svc, pool, tally) = (h.clone(), &svc, &pool, &tally);
        ex.spawn(async move {
            h.sleep_until(req.arrival).await;
            pool.acquire_async().await;
            // Spread ranks across the key space so shard load reflects
            // the hash, not rank adjacency — same as the real driver.
            let guard = svc.lock(parking::futex::mix64(req.key)).await;
            let granted = h.now();
            tally.borrow_mut().wait.record(granted - req.arrival);
            h.sleep(req.hold).await;
            {
                let mut t = tally.borrow_mut();
                t.hold.record(req.hold);
                t.completed += 1;
                t.makespan = t.makespan.max(h.now());
            }
            drop(guard);
            pool.release();
        });
    }
    let outcome = ex.run();
    assert_eq!(outcome, Outcome::Completed, "async load never deadlocks");
    let polls = ex.metrics().polls;
    let wake_to_poll = ex.metrics().wake_to_poll.clone();
    drop(ex);
    debug_assert_eq!(svc.stats().live, 0, "all keys retired at drain");
    let snapshot = svc.metrics_snapshot();
    let t = tally.into_inner();
    AsyncMetricsReport {
        result: AsyncServiceResult {
            threads: cfg.threads,
            completed: t.completed,
            makespan: t.makespan,
            wait: t.wait,
            hold: t.hold,
        },
        snapshot,
        polls,
        wake_to_poll,
    }
}

/// Configuration for the real-thread driver.
#[derive(Debug, Clone)]
pub struct RealServiceConfig {
    /// Worker threads.
    pub threads: usize,
    /// Lock/unlock operations per worker.
    pub requests_per_thread: usize,
    /// Distinct logical keys.
    pub keys: usize,
    /// Zipf exponent of key popularity.
    pub zipf_s: f64,
    /// Busy-spin iterations inside the critical section.
    pub hold_spin: u32,
    /// RNG seed for the key streams.
    pub seed: u64,
}

impl RealServiceConfig {
    /// The CI smoke shape: skewed keys, short holds.
    pub fn smoke(threads: usize, requests_per_thread: usize) -> Self {
        RealServiceConfig {
            threads,
            requests_per_thread,
            keys: 4096,
            zipf_s: 1.1,
            hold_spin: 64,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of a real-thread run.
#[derive(Debug, Clone)]
pub struct RealServiceResult {
    /// Lock/unlock round trips completed.
    pub completed: u64,
    /// Wall-clock for the whole run, nanoseconds.
    pub elapsed_ns: u64,
    /// Arrival-to-grant, nanoseconds.
    pub wait_ns: Histogram,
    /// Grant-to-release, nanoseconds.
    pub hold_ns: Histogram,
    /// Table occupancy after teardown (`live` must be 0).
    pub stats: service::TableStats,
    /// Machine-wide futex accounting delta across the run.
    pub futex: parking::futex::FutexTotals,
}

/// Drives the *real* [`service::LockService`] with closed-loop workers
/// over Zipf-skewed keys: the CI smoke driver and the stress harness's
/// engine. Wall-clock, hence never a figure input.
pub fn run_real(svc: &service::LockService, cfg: &RealServiceConfig) -> RealServiceResult {
    assert!(cfg.threads > 0, "the service load needs at least one worker");
    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    let before = parking::futex::totals();
    let start = std::time::Instant::now();
    let mut per_thread: Vec<(Histogram, Histogram)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let zipf = &zipf;
                s.spawn(move || {
                    let mut rng = Rng::new(cfg.seed).fork(0x1000 + t as u64);
                    let mut wait = Histogram::new();
                    let mut hold = Histogram::new();
                    for _ in 0..cfg.requests_per_thread {
                        // Spread ranks across the key space so shard load
                        // reflects the hash, not rank adjacency.
                        let key = parking::futex::mix64(zipf.sample(&mut rng));
                        let t0 = std::time::Instant::now();
                        let guard = svc.lock(key);
                        let granted = std::time::Instant::now();
                        wait.record((granted - t0).as_nanos() as u64);
                        for _ in 0..cfg.hold_spin {
                            std::hint::spin_loop();
                        }
                        drop(guard);
                        hold.record(granted.elapsed().as_nanos() as u64);
                    }
                    (wait, hold)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let mut wait_ns = Histogram::new();
    let mut hold_ns = Histogram::new();
    for (w, h) in per_thread.drain(..) {
        wait_ns.merge(&w);
        hold_ns.merge(&h);
    }
    RealServiceResult {
        completed: (cfg.threads * cfg.requests_per_thread) as u64,
        elapsed_ns,
        wait_ns,
        hold_ns,
        stats: svc.stats(),
        futex: parking::futex::totals().since(&before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = Rng::new(7);
        let mut counts = [0u64; 100];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 not hot: {counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn sim_load_is_deterministic() {
        let cfg = ServiceLoadConfig::new(16, 1_000);
        let a = sim_load(LockPolicy::Tas, &cfg);
        let b = sim_load(LockPolicy::Tas, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.wait.quantile(0.999), b.wait.quantile(0.999));
        assert_eq!(a.completed, cfg.requests as u64);
    }

    #[test]
    fn policies_separate_in_the_tail() {
        let cfg = ServiceLoadConfig::new(32, 4_000);
        let qsm = sim_load(LockPolicy::Qsm, &cfg);
        let ticket = sim_load(LockPolicy::Ticket, &cfg);
        let tas = sim_load(LockPolicy::Tas, &cfg);
        // The paper's ordering: constant-handoff FIFO beats broadcast
        // FIFO, and the random scramble owns the worst tail.
        assert!(
            qsm.wait_q(0.999) < ticket.wait_q(0.999),
            "qsm p999 {} !< ticket p999 {}",
            qsm.wait_q(0.999),
            ticket.wait_q(0.999)
        );
        assert!(
            ticket.wait_q(0.999) < tas.wait_q(0.999),
            "ticket p999 {} !< tas p999 {}",
            ticket.wait_q(0.999),
            tas.wait_q(0.999)
        );
        assert!(qsm.throughput() >= ticket.throughput());
    }

    #[test]
    fn every_request_completes_under_every_policy() {
        for &policy in LockPolicy::ALL {
            let cfg = ServiceLoadConfig::new(8, 500);
            let r = sim_load(policy, &cfg);
            assert_eq!(r.completed, 500, "{}", policy.name());
            assert_eq!(r.wait.count(), 500);
            assert_eq!(r.hold.count(), 500);
        }
    }

    #[test]
    fn async_load_is_deterministic_and_completes() {
        let cfg = ServiceLoadConfig::new(8, 500);
        let a = async_load(&cfg, 40);
        let b = async_load(&cfg, 40);
        assert_eq!(a.completed, 500);
        assert_eq!(a.wait.count(), 500);
        assert_eq!(a.hold.count(), 500);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.wait_q(0.999), b.wait_q(0.999));
        assert_eq!(a.wait_q(0.5), b.wait_q(0.5));
    }

    #[test]
    fn async_metrics_report_counts_the_schedule() {
        let cfg = ServiceLoadConfig::new(8, 400);
        let off = async_load_with_metrics(&cfg, 40, service::MetricsMode::Off);
        let on = async_load_with_metrics(&cfg, 40, service::MetricsMode::Counters);
        // Telemetry must not perturb the virtual schedule in any mode.
        assert_eq!(off.result.makespan, on.result.makespan);
        assert_eq!(off.snapshot.acquires, 0, "off mode still counted");
        assert_eq!(on.snapshot.acquires, 400, "one key acquire per request");
        assert!(on.snapshot.fast_path + on.snapshot.parked <= on.snapshot.acquires);
        assert!(on.polls > 0, "executor poll accounting missing");
        let sampled = async_load_with_metrics(&cfg, 40, service::MetricsMode::Sampled(64));
        assert_eq!(sampled.result.makespan, on.result.makespan);
        assert!(sampled.snapshot.wait_samples() > 0, "sampling never fired");
    }

    #[test]
    fn async_load_tracks_the_qsm_model() {
        // Same schedule, same constant-cost FIFO handoff: the async run
        // and the QSM simulation should land in the same ballpark, not
        // orders of magnitude apart.
        let cfg = ServiceLoadConfig::new(16, 2_000);
        let sim = sim_load(LockPolicy::Qsm, &cfg);
        let real = async_load(&cfg, 40);
        let ratio = real.makespan as f64 / sim.makespan.max(1) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "async makespan {} vs qsm sim {} (ratio {ratio:.2})",
            real.makespan,
            sim.makespan
        );
    }

    #[test]
    fn real_driver_balances_and_drains() {
        let svc = service::LockService::with_shards(64);
        let cfg = RealServiceConfig {
            threads: 4,
            requests_per_thread: 200,
            keys: 64,
            zipf_s: 1.2,
            hold_spin: 16,
            seed: 42,
        };
        let r = run_real(&svc, &cfg);
        assert_eq!(r.completed, 800);
        assert_eq!(r.wait_ns.count(), 800);
        assert_eq!(r.stats.live, 0, "keys left attached after drain");
    }
}
