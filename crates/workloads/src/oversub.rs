//! The oversubscription workload — fig9 and table4's spin-vs-block axis.
//!
//! Every other experiment in the suite runs one processor per simulated
//! core. This one deliberately does not: the machine gets a fixed core
//! count and a scheduler ([`memsim::SchedParams`]), and the processor
//! count sweeps from 1x to 8x the cores. Three wait policies contend:
//!
//! * **pure spin** — the plain QSM lock. A waiting processor burns its
//!   whole quantum polling; past 1x threads/core the lock holder is
//!   regularly descheduled while spinners occupy every core, and passing
//!   time degrades superlinearly.
//! * **spin-then-park** — [`QsmBlockingLock::spin_then_park`]: a bounded
//!   adaptive probe budget, then a futex park that frees the core.
//! * **always-park** — [`QsmBlockingLock::always_park`]: straight to the
//!   futex, paying a wake on every contended hand-off.
//!
//! fig9 plots passing time against the threads-per-core ratio; the
//! crossover between the spin and park curves is the figure's point.
//! table4 complements it with uncontended latency (where parking buys
//! nothing and must cost little) and parks per critical section.

use crate::csbench::{self, CsConfig};
use crate::sweeps::{parallel_cells, sweep_threads};
use kernels::locks::{qsm::QsmLock, qsm_blocking::QsmBlockingLock, LockKernel};
use memsim::{Machine, MachineParams, SchedParams};
use simcore::Series;

/// The three wait policies fig9 compares, in curve order.
pub fn wait_policies() -> Vec<Box<dyn LockKernel + Send + Sync>> {
    vec![
        Box::new(QsmLock),
        Box::new(QsmBlockingLock::spin_then_park()),
        Box::new(QsmBlockingLock::always_park()),
    ]
}

/// The oversubscribed bus machine: `nprocs` processors multiplexed onto
/// `cores` cores by the 1991-flavored scheduler. The cycle limit is finite
/// because polling spinners never block — an unsatisfiable wait shows up
/// as a time limit, not a deadlock — but generous enough that every
/// healthy trial in the suite finishes far below it.
pub fn oversub_machine(nprocs: usize, cores: usize) -> Machine {
    let mut params = MachineParams::bus_1991(nprocs);
    params.sched = Some(SchedParams::oversub_1991(cores));
    params.max_cycles = 50_000_000;
    Machine::new(params)
}

/// fig9 — lock passing time vs threads-per-core ratio at a fixed core
/// count, for the three wait policies. `ratios` are multipliers over
/// `cores` (ratio 1 = a dedicated machine's load on a scheduled machine).
pub fn oversubscription_sweep(cores: usize, ratios: &[usize], iters: usize) -> Series {
    let locks = wait_policies();
    let cells: Vec<(usize, usize)> = (0..locks.len())
        .flat_map(|li| ratios.iter().map(move |&r| (li, r)))
        .collect();
    let results = parallel_cells(cells.len(), sweep_threads(), |i| {
        let (li, ratio) = cells[i];
        let nprocs = ratio * cores;
        let machine = oversub_machine(nprocs, cores);
        let cfg = CsConfig {
            think: 0,
            jitter: false,
            hold: 20,
            ..CsConfig::new(nprocs, iters)
        };
        csbench::run(&machine, locks[li].as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{} ratio={ratio}: {e}", locks[li].name()))
    });
    let mut series = Series::new("threads per core", "cycles per critical section");
    for (&(li, ratio), r) in cells.iter().zip(&results) {
        series.push(locks[li].name(), ratio as u64, r.passing_time);
    }
    series
}

/// One row of table4: a wait policy's latency profile.
#[derive(Debug, Clone)]
pub struct BlockingLatencyRow {
    /// The lock's registry name.
    pub name: String,
    /// Uncontended acquire/release latency on a dedicated machine, in
    /// cycles — the cost of *having* a park path without using it.
    pub uncontended: f64,
    /// Passing time under contention at `ratio` threads per core.
    pub oversub_passing: f64,
    /// Futex parks per critical section in the oversubscribed trial.
    pub parks_per_cs: f64,
}

/// table4 — blocking-lock latency: uncontended cost next to oversubscribed
/// passing time and park rate, one row per wait policy.
pub fn blocking_latency_table(cores: usize, ratio: usize, iters: usize) -> Vec<BlockingLatencyRow> {
    let locks = wait_policies();
    let rows = parallel_cells(locks.len(), sweep_threads(), |i| {
        let lock = locks[i].as_ref();
        let dedicated = Machine::new(MachineParams::bus_1991(1));
        let uncontended = csbench::uncontended_latency(&dedicated, lock, 500);
        let nprocs = ratio * cores;
        let machine = oversub_machine(nprocs, cores);
        let cfg = CsConfig {
            think: 0,
            jitter: false,
            hold: 20,
            ..CsConfig::new(nprocs, iters)
        };
        let r = csbench::run(&machine, lock, &cfg)
            .unwrap_or_else(|e| panic!("{} table4: {e}", lock.name()));
        BlockingLatencyRow {
            name: lock.name().to_string(),
            uncontended,
            oversub_passing: r.passing_time,
            parks_per_cs: r.metrics.futex_parks() as f64 / cfg.total_cs() as f64,
        }
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_have_distinct_names() {
        let names: Vec<&str> = wait_policies().iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["qsm", "qsm-block", "qsm-block-park"]);
    }

    #[test]
    fn sweep_produces_all_curves_and_ratios() {
        let s = oversubscription_sweep(2, &[1, 2], 3);
        assert_eq!(s.curve_names().len(), 3);
        assert_eq!(s.xs(), vec![1, 2]);
    }

    #[test]
    fn oversubscription_shows_the_crossover() {
        // The figure's claim in miniature: pure spin degrades superlinearly
        // past 1x threads/core while spin-then-park stays near-flat. Four
        // cores is the smallest machine where a descheduled lock holder
        // reliably strands a full spinner cohort; at two cores the convoy
        // is too short to measure.
        let s = oversubscription_sweep(4, &[1, 4], 5);
        let at = |curve: &str, x: u64| {
            s.get(curve, x)
                .unwrap_or_else(|| panic!("missing point {curve}@{x}"))
        };
        let spin_1 = at("qsm", 1);
        let spin_4 = at("qsm", 4);
        let park_1 = at("qsm-block", 1);
        let park_4 = at("qsm-block", 4);
        assert!(
            spin_4 > 3.0 * spin_1,
            "pure spin should collapse: {spin_1:.0} -> {spin_4:.0}"
        );
        assert!(
            park_4 < 3.0 * park_1,
            "spin-then-park should stay near-flat: {park_1:.0} -> {park_4:.0}"
        );
        assert!(
            park_4 < spin_4,
            "parking must win oversubscribed: park {park_4:.0} vs spin {spin_4:.0}"
        );
    }

    #[test]
    fn latency_table_rows_are_coherent() {
        let rows = blocking_latency_table(2, 2, 4);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.uncontended > 0.0, "{} free uncontended", row.name);
            assert!(row.oversub_passing > 0.0);
        }
        // Always-park parks on essentially every contended hand-off;
        // pure spin never parks.
        assert_eq!(rows[0].parks_per_cs, 0.0, "qsm cannot park");
        assert!(
            rows[2].parks_per_cs > rows[1].parks_per_cs,
            "always-park must park more than spin-then-park"
        );
        assert!(rows[2].parks_per_cs > 0.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = oversubscription_sweep(2, &[1, 2], 3);
        let b = oversubscription_sweep(2, &[1, 2], 3);
        assert_eq!(a.to_table("fig9").render_csv(), b.to_table("fig9").render_csv());
    }
}
