//! Real-hardware harness — fig8's workload.
//!
//! Exercises the `qsm` crate's std-atomics primitives with actual OS
//! threads and wall-clock timing. On this reproduction's single-core host
//! the contended numbers measure scheduler behaviour rather than coherence
//! traffic (the simulator owns that claim); the harness still validates
//! that the real implementations are correct and reports uncontended
//! latencies, which *are* meaningful on one core.

use qsm::raw::RawLock;
use qsm::QsmBarrier;
use std::sync::Arc;
use std::time::Instant;

/// Nanoseconds per uncontended acquire/release pair, measured over `iters`
/// iterations on the calling thread.
pub fn uncontended_ns(lock: &dyn RawLock, iters: u64) -> f64 {
    // Warm up allocator paths (queue locks allocate nodes).
    for _ in 0..100 {
        let t = lock.lock();
        unsafe { lock.unlock(t) };
    }
    let start = Instant::now();
    for _ in 0..iters {
        let t = lock.lock();
        unsafe { lock.unlock(t) };
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Total critical sections per millisecond with `threads` contending
/// threads each performing `iters` increments of a shared (atomic) cell.
pub fn contended_throughput(lock: Arc<dyn RawLock>, threads: usize, iters: u64) -> f64 {
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let start_gate = Arc::new(QsmBarrier::new(threads));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            let gate = Arc::clone(&start_gate);
            std::thread::spawn(move || {
                gate.wait();
                for _ in 0..iters {
                    let t = lock.lock();
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    unsafe { lock.unlock(t) };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let total = counter.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(total, threads as u64 * iters, "lost critical sections");
    total as f64 / elapsed_ms
}

/// One fig8 row: lock name, uncontended ns/op, and throughput at each
/// requested thread count.
#[derive(Debug, Clone)]
pub struct RealHwRow {
    /// Lock under test.
    pub name: &'static str,
    /// Uncontended acquire+release latency, ns.
    pub uncontended_ns: f64,
    /// `(threads, critical sections per ms)` pairs.
    pub throughput: Vec<(usize, f64)>,
}

/// Runs the full fig8 sweep over the real-hardware lock registry.
///
/// On a single-core host the contended runs are scheduler-bound (every
/// FIFO hand-off needs a context switch), so the iteration count is scaled
/// down hard to keep the sweep finite; the caveat is recorded with fig8.
pub fn sweep(thread_counts: &[usize], iters: u64) -> Vec<RealHwRow> {
    let single_core = std::thread::available_parallelism()
        .map(|n| n.get() == 1)
        .unwrap_or(false);
    let contended_iters = if single_core { (iters / 20).max(500) } else { iters };
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    qsm::all_locks(max_threads)
        .into_iter()
        .map(|lock| {
            let name = lock.name();
            let uncontended = uncontended_ns(lock.as_ref(), iters);
            let lock: Arc<dyn RawLock> = Arc::from(lock);
            let throughput = thread_counts
                .iter()
                .map(|&t| {
                    (
                        t,
                        contended_throughput(Arc::clone(&lock), t, contended_iters / t as u64),
                    )
                })
                .collect();
            RealHwRow {
                name,
                uncontended_ns: uncontended,
                throughput,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_latency_is_positive() {
        let lock = qsm::Qsm::new();
        let ns = uncontended_ns(&lock, 10_000);
        assert!(ns > 0.0 && ns < 100_000.0, "implausible latency {ns}");
    }

    #[test]
    fn contended_throughput_counts_everything() {
        let lock: Arc<dyn RawLock> = Arc::new(qsm::TicketLock::new());
        let thr = contended_throughput(lock, 2, 2_000);
        assert!(thr > 0.0);
    }

    #[test]
    fn sweep_covers_registry() {
        let rows = sweep(&[1, 2], 2_000);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.uncontended_ns > 0.0, "{} zero latency", row.name);
            assert_eq!(row.throughput.len(), 2);
        }
    }
}
