//! # workloads — experiment drivers for the syncmech evaluation
//!
//! Each module drives one experiment family from DESIGN.md's per-experiment
//! index, shared between the `bench` figure binaries, the integration
//! tests, and the examples:
//!
//! * [`csbench`] — the critical-section microbenchmark behind table1,
//!   fig1–fig4 and fig7: P processors repeatedly acquire a lock, hold it
//!   for a configurable time, release, and "think".
//! * [`fairness`] — the acquisition-order workload behind table2: a full
//!   hand-off log from which service distributions are computed.
//! * [`barrierbench`] — barrier episode timing behind fig5/fig6.
//! * [`sweeps`] — parameter sweeps assembling [`simcore::Series`] for each
//!   figure.
//! * [`oversub`] — the oversubscribed (threads > cores) spin-vs-block
//!   comparison behind fig9 and table4, run on the scheduled simulator.
//! * [`realhw`] — the real-hardware (std thread) harness behind fig8,
//!   exercising the `qsm` crate rather than the simulator.
//! * [`differential`] — the cross-backend differential harness: the same
//!   lock workload on the interleave fuzzer, both simulator machines, and
//!   real threads, with the outcomes compared.
//! * [`waitdist`] — the traced wait/hold-time distribution workload behind
//!   table5 and fig10, built on the `trace` crate's event recorder.
//! * [`service_load`] — the sharded lock-service load generator behind
//!   fig11 and table6: a deterministic discrete-event queueing model of
//!   per-key lock policies (the figure input) plus a real-thread driver
//!   over `service::LockService` (the CI smoke/stress engine), and the
//!   async driver behind fig12 running the same request schedule through
//!   `service::AsyncLockService` futures.
//! * [`executor`] — the deterministic single-threaded virtual-clock
//!   executor the async driver (and the `lock_many` ordering tests) run
//!   on: FIFO polling, priced futex wakes, and deadlocks reported as
//!   stalls instead of hangs.

pub mod barrierbench;
pub mod csbench;
pub mod differential;
pub mod executor;
pub mod fairness;
pub mod oversub;
pub mod realhw;
pub mod rwbench;
pub mod service_load;
pub mod sweeps;
pub mod waitdist;
