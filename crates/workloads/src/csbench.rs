//! The critical-section microbenchmark — the workload of fig1–fig4.
//!
//! Every processor executes `iters` iterations of
//! `acquire → hold → release → think`, with optional exponential jitter on
//! the think time so arrivals don't phase-lock (the 1991 studies did the
//! same with random delays). The headline metric is **lock passing time**:
//! total elapsed cycles divided by the number of critical sections, minus
//! nothing — under saturation it converges to the hand-off cost the papers
//! plot.

use kernels::locks::{fixture, LockKernel};
use kernels::SyncCtx;
use memsim::{Machine, SimError};
use simcore::Rng;

/// Parameters of one critical-section trial.
#[derive(Debug, Clone, Copy)]
pub struct CsConfig {
    /// Processors contending.
    pub nprocs: usize,
    /// Critical sections per processor.
    pub iters: usize,
    /// Cycles spent inside the critical section.
    pub hold: u64,
    /// Mean cycles between critical sections (exponential jitter when
    /// `jitter` is set, fixed otherwise).
    pub think: u64,
    /// Randomize think times (recommended; defeats phase-locking).
    pub jitter: bool,
    /// Seed for the per-processor jitter streams.
    pub seed: u64,
}

impl CsConfig {
    /// A sensible default: short critical sections, modest think time.
    pub fn new(nprocs: usize, iters: usize) -> Self {
        CsConfig {
            nprocs,
            iters,
            hold: 20,
            think: 100,
            jitter: true,
            seed: 0x5EED,
        }
    }

    /// Total critical sections executed.
    pub fn total_cs(&self) -> u64 {
        (self.nprocs * self.iters) as u64
    }
}

/// Results of one critical-section trial.
#[derive(Debug, Clone)]
pub struct CsResult {
    /// Elapsed simulated cycles.
    pub total_cycles: u64,
    /// Cycles per critical section (elapsed / total CS count) — the
    /// "lock passing time" of fig1/fig2 under saturation.
    pub passing_time: f64,
    /// Interconnect transactions per critical section — fig3's metric.
    pub transactions_per_cs: f64,
    /// Critical sections per kilocycle — fig4's throughput metric.
    pub throughput: f64,
    /// The final counter value (must equal `total_cs`; checked).
    pub counter: u64,
    /// Raw machine metrics.
    pub metrics: memsim::Metrics,
}

/// Runs the trial for `lock` on `machine`.
///
/// # Errors
///
/// Propagates simulator errors (deadlock in a broken kernel, time limit).
///
/// # Panics
///
/// If mutual exclusion was violated (the non-atomic counter came up short)
/// — that is a bug in the lock under test, not a measurement.
pub fn run(machine: &Machine, lock: &dyn LockKernel, cfg: &CsConfig) -> Result<CsResult, SimError> {
    let line_words = machine.params().line_words;
    let (fix, memory) = fixture(lock, cfg.nprocs, line_words, 1);
    let counter = fix.scratch.slot(0);
    let report = machine.run_with_init(cfg.nprocs, memory, |p| {
        let mut rng = Rng::new(cfg.seed ^ (p.pid() as u64).wrapping_mul(0x9E37_79B9));
        let mut ps = lock.proc_init(p.pid(), &fix.region);
        for _ in 0..cfg.iters {
            let token = lock.acquire(p, &fix.region, &mut ps);
            let v = SyncCtx::load(p, counter);
            if cfg.hold > 0 {
                SyncCtx::delay(p, cfg.hold);
            }
            SyncCtx::store(p, counter, v + 1);
            lock.release(p, &fix.region, &mut ps, token);
            let think = if cfg.jitter {
                rng.exp_cycles(cfg.think)
            } else {
                cfg.think
            };
            if think > 0 {
                SyncCtx::delay(p, think);
            }
        }
    })?;
    let total = cfg.total_cs();
    let counter_val = report.memory[counter];
    assert_eq!(
        counter_val,
        total,
        "{} violated mutual exclusion under the benchmark workload",
        lock.name()
    );
    let cycles = report.metrics.total_cycles;
    Ok(CsResult {
        total_cycles: cycles,
        passing_time: cycles as f64 / total as f64,
        transactions_per_cs: report.metrics.interconnect_transactions as f64 / total as f64,
        throughput: total as f64 * 1000.0 / cycles as f64,
        counter: counter_val,
        metrics: report.metrics,
    })
}

/// Uncontended latency of one acquire/release pair, in cycles: a single
/// processor, no think time, measured over many iterations (table1's lock
/// column). The critical-section body is empty so only lock overhead
/// remains.
pub fn uncontended_latency(machine: &Machine, lock: &dyn LockKernel, iters: usize) -> f64 {
    let line_words = machine.params().line_words;
    let (fix, memory) = fixture(lock, 1, line_words, 1);
    let report = machine
        .run_with_init(1, memory, |p| {
            let mut ps = lock.proc_init(0, &fix.region);
            for _ in 0..iters {
                let token = lock.acquire(p, &fix.region, &mut ps);
                lock.release(p, &fix.region, &mut ps, token);
            }
        })
        .expect("uncontended trial cannot deadlock");
    report.metrics.total_cycles as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::locks::{mcs::McsLock, qsm::QsmLock, tas::TasLock};
    use memsim::MachineParams;

    #[test]
    fn config_accounting() {
        let cfg = CsConfig::new(8, 10);
        assert_eq!(cfg.total_cs(), 80);
    }

    #[test]
    fn trial_counts_every_critical_section() {
        let machine = Machine::new(MachineParams::bus_1991(4));
        let cfg = CsConfig::new(4, 10);
        let r = run(&machine, &QsmLock, &cfg).unwrap();
        assert_eq!(r.counter, 40);
        assert!(r.passing_time > 0.0);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let machine = Machine::new(MachineParams::bus_1991(4));
        let cfg = CsConfig::new(4, 8);
        let a = run(&machine, &McsLock, &cfg).unwrap();
        let b = run(&machine, &McsLock, &cfg).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn different_seed_changes_timing() {
        let machine = Machine::new(MachineParams::bus_1991(4));
        let mut cfg = CsConfig::new(4, 8);
        let a = run(&machine, &McsLock, &cfg).unwrap();
        cfg.seed ^= 0xDEAD_BEEF;
        let b = run(&machine, &McsLock, &cfg).unwrap();
        assert_ne!(
            a.total_cycles, b.total_cycles,
            "jittered workloads should differ across seeds"
        );
    }

    #[test]
    fn uncontended_latency_is_small_and_positive() {
        let machine = Machine::new(MachineParams::bus_1991(1));
        let lat = uncontended_latency(&machine, &QsmLock, 200);
        // One transaction each way plus change; certainly < 200 cycles.
        assert!(lat > 0.0 && lat < 200.0, "unexpected latency {lat}");
    }

    #[test]
    fn tas_collapses_relative_to_qsm_at_scale() {
        // The reproduction's headline in miniature.
        let p = 16;
        let machine = Machine::new(MachineParams::bus_1991(p));
        let cfg = CsConfig {
            think: 0,
            jitter: false,
            ..CsConfig::new(p, 6)
        };
        let tas = run(&machine, &TasLock, &cfg).unwrap();
        let qsm = run(&machine, &QsmLock, &cfg).unwrap();
        assert!(
            tas.passing_time > 1.5 * qsm.passing_time,
            "tas {:.0} should be well above qsm {:.0}",
            tas.passing_time,
            qsm.passing_time
        );
    }
}
