//! Barrier episode timing — fig5/fig6's workload.
//!
//! A thin wrapper over [`kernels::barriers::timing_trial`] that reduces a
//! run to the two numbers the figures plot: cycles per episode and
//! interconnect transactions per episode.

use kernels::barriers::{timing_trial, BarrierKernel};
use memsim::{Machine, SimError};

/// Parameters of a barrier timing trial.
#[derive(Debug, Clone, Copy)]
pub struct BarrierConfig {
    /// Participating processors.
    pub nprocs: usize,
    /// Barrier episodes to time.
    pub episodes: u64,
    /// Cycles of "computation" between episodes (plus a deterministic
    /// per-processor skew so arrivals stagger).
    pub work: u64,
}

/// Results of a barrier timing trial.
#[derive(Debug, Clone)]
pub struct BarrierResult {
    /// Elapsed cycles for the whole run.
    pub total_cycles: u64,
    /// Cycles per episode net of the configured work time.
    pub episode_time: f64,
    /// Interconnect transactions per episode.
    pub transactions_per_episode: f64,
}

/// Runs the trial for `barrier` on `machine`.
pub fn run(
    machine: &Machine,
    barrier: &dyn BarrierKernel,
    cfg: &BarrierConfig,
) -> Result<BarrierResult, SimError> {
    let report = timing_trial(machine, barrier, cfg.nprocs, cfg.episodes, cfg.work)?;
    let cycles = report.metrics.total_cycles;
    let per_episode = cycles as f64 / cfg.episodes as f64;
    Ok(BarrierResult {
        total_cycles: cycles,
        episode_time: (per_episode - cfg.work as f64).max(0.0),
        transactions_per_episode: report.metrics.interconnect_transactions as f64
            / cfg.episodes as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::barriers::central::CentralBarrier;
    use kernels::barriers::dissemination::DisseminationBarrier;
    use memsim::MachineParams;

    #[test]
    fn reports_positive_episode_time() {
        let machine = Machine::new(MachineParams::bus_1991(4));
        let cfg = BarrierConfig {
            nprocs: 4,
            episodes: 10,
            work: 50,
        };
        let r = run(&machine, &CentralBarrier, &cfg).unwrap();
        assert!(r.episode_time > 0.0);
        assert!(r.transactions_per_episode > 0.0);
    }

    #[test]
    fn work_time_is_subtracted() {
        let machine = Machine::new(MachineParams::bus_1991(2));
        let lean = run(
            &machine,
            &CentralBarrier,
            &BarrierConfig {
                nprocs: 2,
                episodes: 10,
                work: 0,
            },
        )
        .unwrap();
        let laden = run(
            &machine,
            &CentralBarrier,
            &BarrierConfig {
                nprocs: 2,
                episodes: 10,
                work: 500,
            },
        )
        .unwrap();
        // Net episode times should be comparable despite 500 cycles of work.
        assert!((laden.episode_time - lean.episode_time).abs() < lean.episode_time * 2.0 + 20.0);
    }

    #[test]
    fn deterministic() {
        let machine = Machine::new(MachineParams::numa_1991(4));
        let cfg = BarrierConfig {
            nprocs: 4,
            episodes: 5,
            work: 30,
        };
        let a = run(&machine, &DisseminationBarrier, &cfg).unwrap();
        let b = run(&machine, &DisseminationBarrier, &cfg).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
    }
}
