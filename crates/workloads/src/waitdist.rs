//! Wait/hold-time distribution workload — the data behind table5 and fig10.
//!
//! Runs the [`csbench`] critical-section workload with the
//! lock wrapped in [`InstrumentedLock`] and a full [`trace::Tracer`]
//! attached to the machine, then reduces the per-processor event streams
//! to per-lock wait (`AcquireStart → Acquired`) and hold
//! (`Acquired → Released`) distributions. The tracer is attached
//! explicitly rather than read from `SYNCMECH_TRACE`, so the figures are
//! pure functions of their configuration and golden-testable; tracing is
//! also timing-invisible by construction, so the `CsResult` here is
//! byte-identical to an untraced run of the same configuration.

use crate::csbench::{self, CsConfig, CsResult};
use kernels::lockdep::InstrumentedLock;
use kernels::locks::{lock_by_name, LockKernel};
use memsim::{Machine, MachineParams, SimError};
use std::sync::Arc;
use trace::histo::{lock_distributions, LockDist};
use trace::Tracer;

/// The stable lock id the instrumented trial records under.
pub const TRACE_LOCK_ID: usize = 0;

/// The locks table5/fig10 profile: the classic spectrum from collapse-prone
/// to scalable, in figure order.
pub const DIST_LOCKS: &[&str] = &["tas", "ttas", "ticket", "mcs", "qsm"];

/// The percentiles fig10 plots the wait-time CDF at.
pub const CDF_PERCENTILES: &[u64] = &[10, 25, 50, 75, 90, 95, 99, 100];

/// One lock's traced trial: benchmark result plus its wait/hold
/// distributions.
#[derive(Debug, Clone)]
pub struct WaitDistResult {
    /// The lock's registry name.
    pub name: String,
    /// Wait/hold histograms and raw wait samples for [`TRACE_LOCK_ID`].
    pub dist: LockDist,
    /// The underlying critical-section trial result.
    pub result: CsResult,
}

impl WaitDistResult {
    /// Wait-time quantile `q` in `[0, 1]`, in cycles.
    pub fn wait_q(&self, q: f64) -> u64 {
        self.dist.wait.quantile(q)
    }

    /// Hold-time quantile `q` in `[0, 1]`, in cycles.
    pub fn hold_q(&self, q: f64) -> u64 {
        self.dist.hold.quantile(q)
    }
}

/// Runs the traced critical-section trial for one registry lock on the bus
/// machine and extracts its wait/hold distributions.
///
/// # Errors
///
/// Propagates simulator errors from the underlying trial.
///
/// # Panics
///
/// On an unknown lock name, or if the full-mode ring dropped events (the
/// distributions would silently miss samples; size the ring up instead).
pub fn run_lock(name: &str, cfg: &CsConfig) -> Result<WaitDistResult, SimError> {
    let lock: Arc<dyn LockKernel + Send + Sync> =
        Arc::from(lock_by_name(name).unwrap_or_else(|| panic!("unknown lock '{name}'")));
    let instrumented = InstrumentedLock::new(lock, TRACE_LOCK_ID);
    let tracer = Tracer::full(cfg.nprocs);
    let machine =
        Machine::new(MachineParams::bus_1991(cfg.nprocs)).with_tracer(Arc::clone(&tracer));
    let result = csbench::run(&machine, &instrumented, cfg)?;
    for pid in 0..cfg.nprocs {
        assert_eq!(
            tracer.dropped(pid),
            0,
            "{name}: p{pid} overflowed the trace ring; distributions would be truncated"
        );
    }
    let dist = lock_distributions(&tracer)
        .remove(&TRACE_LOCK_ID)
        .unwrap_or_default();
    Ok(WaitDistResult {
        name: name.to_string(),
        dist,
        result,
    })
}

/// [`run_lock`] over [`DIST_LOCKS`] — the table5/fig10 sweep.
///
/// # Panics
///
/// On simulator errors: the registry locks are all correct, so an error
/// here is a harness bug.
pub fn distribution_sweep(nprocs: usize, iters: usize) -> Vec<WaitDistResult> {
    let cfg = CsConfig::new(nprocs, iters);
    DIST_LOCKS
        .iter()
        .map(|name| run_lock(name, &cfg).unwrap_or_else(|e| panic!("{name}: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_locks_resolve_in_the_registry() {
        for name in DIST_LOCKS {
            assert!(lock_by_name(name).is_some(), "unknown lock {name}");
        }
    }

    #[test]
    fn traced_trial_collects_every_acquisition() {
        let cfg = CsConfig::new(4, 6);
        let r = run_lock("qsm", &cfg).unwrap();
        // One wait and one hold sample per critical section.
        assert_eq!(r.dist.wait.count(), cfg.total_cs());
        assert_eq!(r.dist.hold.count(), cfg.total_cs());
        assert_eq!(r.dist.wait_samples.len() as u64, cfg.total_cs());
        // Holds include the configured 20-cycle delay, so p50 >= 20.
        assert!(r.hold_q(0.5) >= cfg.hold, "hold p50 {}", r.hold_q(0.5));
        // Quantiles are monotone.
        assert!(r.wait_q(0.5) <= r.wait_q(0.99));
        assert!(r.wait_q(0.99) <= r.dist.wait.max());
    }

    #[test]
    fn tracing_does_not_change_the_benchmark() {
        let cfg = CsConfig::new(4, 6);
        let traced = run_lock("ticket", &cfg).unwrap();
        let machine = Machine::new(MachineParams::bus_1991(cfg.nprocs));
        let lock = lock_by_name("ticket").unwrap();
        let plain = csbench::run(&machine, &*lock, &cfg).unwrap();
        // The instrumented + traced trial must be cycle-identical to the
        // plain one: lock_event hooks and the tracer cost zero simulated
        // time.
        assert_eq!(traced.result.total_cycles, plain.total_cycles);
        assert_eq!(traced.result.metrics, plain.metrics);
    }

    #[test]
    fn contention_shows_up_in_the_wait_tail() {
        let mut cfg = CsConfig::new(8, 6);
        cfg.think = 0;
        cfg.jitter = false;
        let r = run_lock("tas", &cfg).unwrap();
        // Under saturation, waiting dominates: the p99 wait must exceed
        // the hold time by a wide margin.
        assert!(
            r.wait_q(0.99) > 4 * cfg.hold,
            "p99 wait {} suspiciously small under saturation",
            r.wait_q(0.99)
        );
    }
}
