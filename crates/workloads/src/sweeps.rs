//! Parameter sweeps: each function assembles the [`Series`] behind one
//! figure of the reproduction, over the lock/barrier registries.
//!
//! Every sweep is a grid of independent *cells* — one `(kernel, parameter)`
//! simulation each. Cells are deterministic in isolation (the simulator's
//! schedule does not depend on host timing), so the sweep functions fan
//! them out across host threads via [`parallel_cells`] and reassemble the
//! series in grid order: the output is bit-for-bit identical whether the
//! cells ran sequentially, interleaved, or on different machines.
//!
//! Sweeps have **two independent parallelism axes** that compose:
//!
//! * **across cells** — [`parallel_cells`] under `SYNCMECH_SWEEP_THREADS`
//!   ([`sweep_threads`]), the coarse axis; and
//! * **within a run** — fragment replay under `SYNCMECH_REPLAY_FRAGMENT`
//!   ([`replay_fragment`]), which records each cell's simulation once and
//!   re-executes its timeline fragments concurrently on the same worker
//!   pool (`memsim::replay`), the fine axis that keeps cores busy when a
//!   sweep tail is a few long cells (high P) or a figure is one big run.
//!
//! Both produce bit-identical output at any thread/fragment setting, so
//! enabling either (or both) never changes a figure.

use crate::barrierbench::{self, BarrierConfig};
use crate::csbench::{self, CsConfig};
use kernels::barriers::all_barriers;
use kernels::locks::{all_locks, tas_backoff::TasBackoffLock, ticket_prop::TicketPropLock};
use memsim::{Machine, MachineParams};
use simcore::Series;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which machine a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// Bus-based cache-coherent multiprocessor.
    Bus,
    /// Distributed NUMA multiprocessor.
    Numa,
}

impl MachineKind {
    /// Builds the machine for `nprocs`.
    pub fn machine(self, nprocs: usize) -> Machine {
        match self {
            MachineKind::Bus => Machine::new(MachineParams::bus_1991(nprocs)),
            MachineKind::Numa => Machine::new(MachineParams::numa_1991(nprocs)),
        }
    }

    /// Label used in figure titles.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::Bus => "bus",
            MachineKind::Numa => "numa",
        }
    }
}

/// Host threads used by the sweep fan-out: `SYNCMECH_SWEEP_THREADS` if set,
/// otherwise the host's available parallelism. On a single core this is 1
/// and [`parallel_cells`] degenerates to a plain loop.
///
/// # Panics
///
/// If `SYNCMECH_SWEEP_THREADS` is set to anything other than a positive
/// integer. A user who sets the variable meant to control the fan-out;
/// silently falling back to host parallelism would make a typo look like a
/// performance mystery.
pub fn sweep_threads() -> usize {
    let var = std::env::var("SYNCMECH_SWEEP_THREADS").ok();
    match sweep_threads_from(var.as_deref()) {
        Ok(n) => n,
        Err(msg) => panic!("{msg}"),
    }
}

/// The policy behind [`sweep_threads`], with the environment lookup
/// factored out for testability: `None` means the variable is unset.
pub fn sweep_threads_from(var: Option<&str>) -> Result<usize, String> {
    let Some(raw) = var else {
        return Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1));
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(
            "SYNCMECH_SWEEP_THREADS=0: the sweep fan-out needs at least one host thread; \
             set a positive count, or unset the variable to use the host's parallelism"
            .to_string(),
        ),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "SYNCMECH_SWEEP_THREADS={raw:?} is not a positive integer; set a thread count \
             like 4, or unset the variable to use the host's parallelism"
        )),
    }
}

/// Fragment length (simulated cycles) for intra-run replay parallelism:
/// `SYNCMECH_REPLAY_FRAGMENT` if set, `None` otherwise (plain runs). The
/// knob is consumed inside `memsim` — every `Machine::run` a sweep cell
/// performs routes through record-then-replay when it is set — so this
/// delegation exists for callers that want to *report* the effective
/// setting (`bench_sim` records it in BENCH_sim.json).
///
/// # Panics
///
/// If `SYNCMECH_REPLAY_FRAGMENT` is set to zero or a non-numeric value
/// (see `memsim::replay::fragment_cycles_from`).
pub fn replay_fragment() -> Option<u64> {
    memsim::replay::fragment_cycles_env()
}

/// Runs `cell(0..n)` across up to `threads` host threads and returns the
/// results **in index order**, regardless of completion order.
///
/// Work is distributed by an atomic grab counter, so long cells (high
/// processor counts) don't convoy behind a fixed pre-partition. With
/// `threads <= 1` (or a single cell) this is exactly a sequential map —
/// same code path the deterministic-output guarantee is tested against.
///
/// A panicking cell propagates out of the scope, preserving the sweep
/// functions' panic-with-context error reporting.
pub fn parallel_cells<R, F>(n: usize, threads: usize, cell: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(cell).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = cell(i);
                *slots[i].lock().expect("cell slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("cell slot poisoned")
                .expect("cell never ran")
        })
        .collect()
}

/// The default processor-count axis of the scaling figures.
pub fn default_procs() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 48, 64]
}

/// The saturated critical-section configuration of fig1–fig3 (no think
/// time, fixed 20-cycle hold: the 1991 measurement conditions).
fn saturated_cfg(nprocs: usize, iters: usize) -> CsConfig {
    CsConfig {
        think: 0,
        jitter: false,
        hold: 20,
        ..CsConfig::new(nprocs, iters)
    }
}

/// Shared shape of fig1/fig2/fig3: a `(lock, P)` grid under the saturated
/// workload, differing only in which [`csbench::CsResult`] metric a figure
/// plots.
fn cs_over_procs(
    kind: MachineKind,
    procs: &[usize],
    iters: usize,
    ylabel: &str,
    metric: fn(&csbench::CsResult) -> f64,
) -> Series {
    let locks = all_locks();
    let cells: Vec<(usize, usize)> = (0..locks.len())
        .flat_map(|li| procs.iter().map(move |&p| (li, p)))
        .collect();
    let results = parallel_cells(cells.len(), sweep_threads(), |i| {
        let (li, p) = cells[i];
        let machine = kind.machine(p);
        csbench::run(&machine, locks[li].as_ref(), &saturated_cfg(p, iters))
            .unwrap_or_else(|e| panic!("{} P={p}: {e}", locks[li].name()))
    });
    let mut series = Series::new("P", ylabel);
    for (&(li, p), r) in cells.iter().zip(&results) {
        series.push(locks[li].name(), p as u64, metric(r));
    }
    series
}

/// fig1/fig2 — lock passing time vs processor count, every lock.
///
/// `iters` critical sections per processor, saturated workload (no think
/// time): the configuration under which the 1991 curves were produced.
pub fn lock_scaling(kind: MachineKind, procs: &[usize], iters: usize) -> Series {
    cs_over_procs(kind, procs, iters, "cycles per critical section", |r| {
        r.passing_time
    })
}

/// fig3 — interconnect transactions per critical section vs P (bus).
pub fn lock_traffic(kind: MachineKind, procs: &[usize], iters: usize) -> Series {
    cs_over_procs(
        kind,
        procs,
        iters,
        "interconnect transactions per critical section",
        |r| r.transactions_per_cs,
    )
}

/// fig4 — throughput (critical sections per kilocycle) vs critical-section
/// hold time at fixed P: the contention crossover figure.
pub fn contention_sweep(kind: MachineKind, nprocs: usize, holds: &[u64], iters: usize) -> Series {
    let locks = all_locks();
    let cells: Vec<(usize, u64)> = (0..locks.len())
        .flat_map(|li| holds.iter().map(move |&h| (li, h)))
        .collect();
    let results = parallel_cells(cells.len(), sweep_threads(), |i| {
        let (li, hold) = cells[i];
        let machine = kind.machine(nprocs);
        let cfg = CsConfig {
            hold,
            think: 100,
            jitter: true,
            ..CsConfig::new(nprocs, iters)
        };
        csbench::run(&machine, locks[li].as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{} hold={hold}: {e}", locks[li].name()))
    });
    let mut series = Series::new("hold", "critical sections per kilocycle");
    for (&(li, hold), r) in cells.iter().zip(&results) {
        series.push(locks[li].name(), hold, r.throughput);
    }
    series
}

/// fig5/fig6 — barrier episode time vs P, every barrier.
pub fn barrier_scaling(kind: MachineKind, procs: &[usize], episodes: u64) -> Series {
    let barriers = all_barriers();
    let cells: Vec<(usize, usize)> = (0..barriers.len())
        .flat_map(|bi| procs.iter().map(move |&p| (bi, p)))
        .collect();
    let results = parallel_cells(cells.len(), sweep_threads(), |i| {
        let (bi, p) = cells[i];
        let machine = kind.machine(p);
        let cfg = BarrierConfig {
            nprocs: p,
            episodes,
            work: 50,
        };
        barrierbench::run(&machine, barriers[bi].as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{} P={p}: {e}", barriers[bi].name()))
    });
    let mut series = Series::new("P", "cycles per episode");
    for (&(bi, p), r) in cells.iter().zip(&results) {
        series.push(barriers[bi].name(), p as u64, r.episode_time);
    }
    series
}

/// fig7 — backoff ablation: lock passing time at fixed P as the backoff
/// parameters sweep, for the two parameterized algorithms.
pub fn backoff_ablation(kind: MachineKind, nprocs: usize, iters: usize) -> Series {
    let caps = [0u64, 64, 256, 1024, 4096, 16384];
    let factors = [1u64, 10, 30, 60, 120, 300, 1000];
    let results = parallel_cells(caps.len() + factors.len(), sweep_threads(), |i| {
        let machine = kind.machine(nprocs);
        let cfg = saturated_cfg(nprocs, iters);
        if i < caps.len() {
            // TAS backoff: sweep the cap with a fixed base.
            let lock = TasBackoffLock {
                base: 16,
                cap: caps[i],
            };
            csbench::run(&machine, &lock, &cfg)
                .expect("tas-backoff sweep")
                .passing_time
        } else {
            // Proportional ticket: sweep the per-position factor.
            let lock = TicketPropLock {
                factor: factors[i - caps.len()],
            };
            csbench::run(&machine, &lock, &cfg)
                .expect("ticket-prop sweep")
                .passing_time
        }
    });
    let mut series = Series::new("parameter", "cycles per critical section");
    for (i, &cap) in caps.iter().enumerate() {
        series.push("tas-backoff(cap)", cap, results[i]);
    }
    for (j, &factor) in factors.iter().enumerate() {
        series.push("ticket-prop(factor)", factor, results[caps.len() + j]);
    }
    series
}

/// table1 — uncontended latency of every lock and every barrier (P = 1).
pub fn uncontended_table(kind: MachineKind) -> Vec<(String, f64)> {
    let locks = all_locks();
    let barriers = all_barriers();
    let results = parallel_cells(locks.len() + barriers.len(), sweep_threads(), |i| {
        let machine = kind.machine(1);
        if i < locks.len() {
            (
                format!("lock/{}", locks[i].name()),
                csbench::uncontended_latency(&machine, locks[i].as_ref(), 500),
            )
        } else {
            let barrier = barriers[i - locks.len()].as_ref();
            let r = barrierbench::run(
                &machine,
                barrier,
                &BarrierConfig {
                    nprocs: 1,
                    episodes: 200,
                    work: 0,
                },
            )
            .expect("single-processor barrier");
            (format!("barrier/{}", barrier.name()), r.episode_time)
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_kind_builds_both_topologies() {
        assert_eq!(MachineKind::Bus.label(), "bus");
        assert_eq!(MachineKind::Numa.label(), "numa");
        let _ = MachineKind::Bus.machine(4);
        let _ = MachineKind::Numa.machine(4);
    }

    #[test]
    fn small_lock_scaling_has_all_curves() {
        let s = lock_scaling(MachineKind::Bus, &[1, 4], 4);
        assert_eq!(s.curve_names().len(), 10);
        assert_eq!(s.xs(), vec![1, 4]);
    }

    #[test]
    fn small_barrier_scaling_has_all_curves() {
        let s = barrier_scaling(MachineKind::Bus, &[2, 4], 4);
        assert_eq!(s.curve_names().len(), 6);
    }

    #[test]
    fn uncontended_table_covers_registry() {
        let rows = uncontended_table(MachineKind::Bus);
        assert_eq!(rows.len(), 16);
        // Locks always cost something; a P=1 episode of the log-round
        // barriers (dissemination, tournament) is legitimately free.
        for (name, v) in &rows {
            if name.starts_with("lock/") {
                assert!(*v > 0.0, "{name} has zero latency");
            } else {
                assert!(*v >= 0.0, "{name} negative latency");
            }
        }
    }

    #[test]
    fn backoff_ablation_produces_two_curves() {
        let s = backoff_ablation(MachineKind::Bus, 4, 4);
        assert_eq!(s.curve_names().len(), 2);
    }

    #[test]
    fn sweep_threads_env_is_validated_strictly() {
        // Unset: host parallelism, always at least one thread.
        assert!(sweep_threads_from(None).unwrap() >= 1);
        // Valid values parse, with surrounding whitespace tolerated.
        assert_eq!(sweep_threads_from(Some("4")).unwrap(), 4);
        assert_eq!(sweep_threads_from(Some(" 8 ")).unwrap(), 8);
        // Zero and garbage are rejected with actionable messages, never
        // silently replaced by a fallback.
        let zero = sweep_threads_from(Some("0")).unwrap_err();
        assert!(zero.contains("at least one host thread"), "got: {zero}");
        for bad in ["", "four", "-2", "3.5"] {
            let err = sweep_threads_from(Some(bad)).unwrap_err();
            assert!(
                err.contains("not a positive integer"),
                "{bad:?} got: {err}"
            );
        }
    }

    #[test]
    fn parallel_cells_preserves_index_order() {
        let seq = parallel_cells(17, 1, |i| i * i);
        let par = parallel_cells(17, 4, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn threaded_cells_match_sequential_simulation() {
        // Force the threaded path even on a single-core host: each cell is
        // a full simulation, and the fan-out must not perturb its result.
        let procs = [1usize, 2, 4];
        let run_cell = |i: usize| {
            let p = procs[i];
            let machine = MachineKind::Bus.machine(p);
            let locks = all_locks();
            csbench::run(&machine, locks[0].as_ref(), &saturated_cfg(p, 3))
                .expect("cell")
                .total_cycles
        };
        let seq = parallel_cells(procs.len(), 1, run_cell);
        let par = parallel_cells(procs.len(), procs.len(), run_cell);
        assert_eq!(seq, par);
    }
}
