//! Parameter sweeps: each function assembles the [`Series`] behind one
//! figure of the reproduction, over the lock/barrier registries.

use crate::barrierbench::{self, BarrierConfig};
use crate::csbench::{self, CsConfig};
use kernels::barriers::all_barriers;
use kernels::locks::{all_locks, tas_backoff::TasBackoffLock, ticket_prop::TicketPropLock};
use memsim::{Machine, MachineParams};
use simcore::Series;

/// Which machine a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// Bus-based cache-coherent multiprocessor.
    Bus,
    /// Distributed NUMA multiprocessor.
    Numa,
}

impl MachineKind {
    /// Builds the machine for `nprocs`.
    pub fn machine(self, nprocs: usize) -> Machine {
        match self {
            MachineKind::Bus => Machine::new(MachineParams::bus_1991(nprocs)),
            MachineKind::Numa => Machine::new(MachineParams::numa_1991(nprocs)),
        }
    }

    /// Label used in figure titles.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::Bus => "bus",
            MachineKind::Numa => "numa",
        }
    }
}

/// The default processor-count axis of the scaling figures.
pub fn default_procs() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 48, 64]
}

/// fig1/fig2 — lock passing time vs processor count, every lock.
///
/// `iters` critical sections per processor, saturated workload (no think
/// time): the configuration under which the 1991 curves were produced.
pub fn lock_scaling(kind: MachineKind, procs: &[usize], iters: usize) -> Series {
    let mut series = Series::new("P", "cycles per critical section");
    for lock in all_locks() {
        for &p in procs {
            let machine = kind.machine(p);
            let cfg = CsConfig {
                think: 0,
                jitter: false,
                hold: 20,
                ..CsConfig::new(p, iters)
            };
            let r = csbench::run(&machine, lock.as_ref(), &cfg)
                .unwrap_or_else(|e| panic!("{} P={p}: {e}", lock.name()));
            series.push(lock.name(), p as u64, r.passing_time);
        }
    }
    series
}

/// fig3 — interconnect transactions per critical section vs P (bus).
pub fn lock_traffic(kind: MachineKind, procs: &[usize], iters: usize) -> Series {
    let mut series = Series::new("P", "interconnect transactions per critical section");
    for lock in all_locks() {
        for &p in procs {
            let machine = kind.machine(p);
            let cfg = CsConfig {
                think: 0,
                jitter: false,
                hold: 20,
                ..CsConfig::new(p, iters)
            };
            let r = csbench::run(&machine, lock.as_ref(), &cfg)
                .unwrap_or_else(|e| panic!("{} P={p}: {e}", lock.name()));
            series.push(lock.name(), p as u64, r.transactions_per_cs);
        }
    }
    series
}

/// fig4 — throughput (critical sections per kilocycle) vs critical-section
/// hold time at fixed P: the contention crossover figure.
pub fn contention_sweep(kind: MachineKind, nprocs: usize, holds: &[u64], iters: usize) -> Series {
    let mut series = Series::new("hold", "critical sections per kilocycle");
    for lock in all_locks() {
        for &hold in holds {
            let machine = kind.machine(nprocs);
            let cfg = CsConfig {
                hold,
                think: 100,
                jitter: true,
                ..CsConfig::new(nprocs, iters)
            };
            let r = csbench::run(&machine, lock.as_ref(), &cfg)
                .unwrap_or_else(|e| panic!("{} hold={hold}: {e}", lock.name()));
            series.push(lock.name(), hold, r.throughput);
        }
    }
    series
}

/// fig5/fig6 — barrier episode time vs P, every barrier.
pub fn barrier_scaling(kind: MachineKind, procs: &[usize], episodes: u64) -> Series {
    let mut series = Series::new("P", "cycles per episode");
    for barrier in all_barriers() {
        for &p in procs {
            let machine = kind.machine(p);
            let cfg = BarrierConfig {
                nprocs: p,
                episodes,
                work: 50,
            };
            let r = barrierbench::run(&machine, barrier.as_ref(), &cfg)
                .unwrap_or_else(|e| panic!("{} P={p}: {e}", barrier.name()));
            series.push(barrier.name(), p as u64, r.episode_time);
        }
    }
    series
}

/// fig7 — backoff ablation: lock passing time at fixed P as the backoff
/// parameters sweep, for the two parameterized algorithms.
pub fn backoff_ablation(kind: MachineKind, nprocs: usize, iters: usize) -> Series {
    let mut series = Series::new("parameter", "cycles per critical section");
    let cfg = CsConfig {
        think: 0,
        jitter: false,
        hold: 20,
        ..CsConfig::new(nprocs, iters)
    };
    // TAS backoff: sweep the cap with a fixed base.
    for cap in [0u64, 64, 256, 1024, 4096, 16384] {
        let machine = kind.machine(nprocs);
        let lock = TasBackoffLock { base: 16, cap };
        let r = csbench::run(&machine, &lock, &cfg).expect("tas-backoff sweep");
        series.push("tas-backoff(cap)", cap, r.passing_time);
    }
    // Proportional ticket: sweep the per-position factor.
    for factor in [1u64, 10, 30, 60, 120, 300, 1000] {
        let machine = kind.machine(nprocs);
        let lock = TicketPropLock { factor };
        let r = csbench::run(&machine, &lock, &cfg).expect("ticket-prop sweep");
        series.push("ticket-prop(factor)", factor, r.passing_time);
    }
    series
}

/// table1 — uncontended latency of every lock and every barrier (P = 1).
pub fn uncontended_table(kind: MachineKind) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let machine = kind.machine(1);
    for lock in all_locks() {
        rows.push((
            format!("lock/{}", lock.name()),
            csbench::uncontended_latency(&machine, lock.as_ref(), 500),
        ));
    }
    for barrier in all_barriers() {
        let r = barrierbench::run(
            &machine,
            barrier.as_ref(),
            &BarrierConfig {
                nprocs: 1,
                episodes: 200,
                work: 0,
            },
        )
        .expect("single-processor barrier");
        rows.push((format!("barrier/{}", barrier.name()), r.episode_time));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_kind_builds_both_topologies() {
        assert_eq!(MachineKind::Bus.label(), "bus");
        assert_eq!(MachineKind::Numa.label(), "numa");
        let _ = MachineKind::Bus.machine(4);
        let _ = MachineKind::Numa.machine(4);
    }

    #[test]
    fn small_lock_scaling_has_all_curves() {
        let s = lock_scaling(MachineKind::Bus, &[1, 4], 4);
        assert_eq!(s.curve_names().len(), 10);
        assert_eq!(s.xs(), vec![1, 4]);
    }

    #[test]
    fn small_barrier_scaling_has_all_curves() {
        let s = barrier_scaling(MachineKind::Bus, &[2, 4], 4);
        assert_eq!(s.curve_names().len(), 6);
    }

    #[test]
    fn uncontended_table_covers_registry() {
        let rows = uncontended_table(MachineKind::Bus);
        assert_eq!(rows.len(), 16);
        // Locks always cost something; a P=1 episode of the log-round
        // barriers (dissemination, tournament) is legitimately free.
        for (name, v) in &rows {
            if name.starts_with("lock/") {
                assert!(*v > 0.0, "{name} has zero latency");
            } else {
                assert!(*v >= 0.0, "{name} negative latency");
            }
        }
    }

    #[test]
    fn backoff_ablation_produces_two_curves() {
        let s = backoff_ablation(MachineKind::Bus, 4, 4);
        assert_eq!(s.curve_names().len(), 2);
    }
}
