//! Fairness measurement — table2's workload.
//!
//! All processors contend continuously until a global quota of critical
//! sections is consumed. The holder of each critical section writes its pid
//! into a log slot indexed by the acquisition number, so the *complete
//! service order* is recovered from memory afterwards. From it we compute
//! the statistics 1991 papers reported informally ("FIFO order", "processor
//! starvation observed") as numbers: per-processor counts, coefficient of
//! variation, Jain's index, and the longest denial run.

use kernels::locks::{fixture, LockKernel};
use kernels::SyncCtx;
use memsim::{Machine, SimError};
use simcore::RunningStats;

/// Parameters of a fairness trial.
#[derive(Debug, Clone, Copy)]
pub struct FairnessConfig {
    /// Processors contending.
    pub nprocs: usize,
    /// Total critical sections across all processors.
    pub total_cs: usize,
    /// Cycles held per critical section.
    pub hold: u64,
}

/// Results of a fairness trial.
#[derive(Debug, Clone)]
pub struct FairnessResult {
    /// Acquisitions per processor.
    pub counts: Vec<u64>,
    /// The full service order (pid per acquisition).
    pub order: Vec<usize>,
    /// Coefficient of variation of per-processor counts (0 = perfectly even).
    pub cv: f64,
    /// Jain's fairness index in `(0, 1]` (1 = perfectly even).
    pub jain: f64,
    /// Longest run of consecutive acquisitions during which some processor
    /// that wanted the lock did not get it (i.e. the longest denial any
    /// single processor suffered, in hand-offs).
    pub max_denial: u64,
}

/// Runs the fairness trial.
pub fn run(
    machine: &Machine,
    lock: &dyn LockKernel,
    cfg: &FairnessConfig,
) -> Result<FairnessResult, SimError> {
    let line_words = machine.params().line_words;
    // Scratch: 1 line for the ticket counter + enough lines for the log
    // (one word per acquisition, packed within lines).
    let log_lines = cfg.total_cs.div_ceil(line_words);
    let (fix, memory) = fixture(lock, cfg.nprocs, line_words, 1 + log_lines);
    let ticket = fix.scratch.slot(0);
    let log_base = fix.scratch.slot(1);
    let total = cfg.total_cs;
    let report = machine.run_with_init(cfg.nprocs, memory, |p| {
        let mut ps = lock.proc_init(p.pid(), &fix.region);
        loop {
            let token = lock.acquire(p, &fix.region, &mut ps);
            let n = SyncCtx::load(p, ticket);
            if n >= total as u64 {
                lock.release(p, &fix.region, &mut ps, token);
                return;
            }
            SyncCtx::store(p, ticket, n + 1);
            SyncCtx::store(p, log_base + n as usize, p.pid() as u64 + 1);
            if cfg.hold > 0 {
                SyncCtx::delay(p, cfg.hold);
            }
            lock.release(p, &fix.region, &mut ps, token);
        }
    })?;

    let order: Vec<usize> = (0..total)
        .map(|i| {
            let v = report.memory[log_base + i];
            assert!(v >= 1, "log slot {i} unwritten");
            (v - 1) as usize
        })
        .collect();
    let mut counts = vec![0u64; cfg.nprocs];
    for &pid in &order {
        counts[pid] += 1;
    }
    let mut stats = RunningStats::new();
    for &c in &counts {
        stats.push(c as f64);
    }
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sumsq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    let jain = if sumsq == 0.0 {
        1.0
    } else {
        sum * sum / (cfg.nprocs as f64 * sumsq)
    };
    Ok(FairnessResult {
        cv: stats.cv(),
        jain,
        max_denial: max_denial(&order, cfg.nprocs),
        counts,
        order,
    })
}

/// Longest stretch of hand-offs a continuously contending processor went
/// without service (measured between its consecutive appearances in the
/// order, and from the start/end for the edges).
pub fn max_denial(order: &[usize], nprocs: usize) -> u64 {
    let mut last_seen = vec![-1i64; nprocs];
    let mut worst = 0u64;
    for (i, &pid) in order.iter().enumerate() {
        let gap = (i as i64 - last_seen[pid] - 1) as u64;
        worst = worst.max(gap);
        last_seen[pid] = i as i64;
    }
    for (pid, &seen) in last_seen.iter().enumerate() {
        // A processor that appears at all but stops early is fine (it may
        // have finished); one that never appears was starved the whole run.
        if seen < 0 && !order.is_empty() {
            let _ = pid;
            worst = worst.max(order.len() as u64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::locks::{qsm::QsmLock, tas::TasLock, ticket::TicketLock};
    use memsim::MachineParams;

    #[test]
    fn max_denial_arithmetic() {
        assert_eq!(max_denial(&[0, 1, 0, 1], 2), 1);
        assert_eq!(max_denial(&[0, 0, 0, 1], 2), 3);
        assert_eq!(max_denial(&[0, 0, 0, 0], 2), 4); // pid 1 starved entirely
        assert_eq!(max_denial(&[], 2), 0);
    }

    #[test]
    fn counts_and_order_are_consistent() {
        let machine = Machine::new(MachineParams::bus_1991(4));
        let cfg = FairnessConfig {
            nprocs: 4,
            total_cs: 40,
            hold: 10,
        };
        let r = run(&machine, &TicketLock, &cfg).unwrap();
        assert_eq!(r.order.len(), 40);
        assert_eq!(r.counts.iter().sum::<u64>(), 40);
        assert!(r.jain > 0.0 && r.jain <= 1.0 + 1e-12);
    }

    #[test]
    fn queue_locks_are_nearly_perfectly_fair() {
        let machine = Machine::new(MachineParams::bus_1991(8));
        let cfg = FairnessConfig {
            nprocs: 8,
            total_cs: 80,
            hold: 20,
        };
        let r = run(&machine, &QsmLock, &cfg).unwrap();
        assert!(r.jain > 0.95, "qsm jain {} too low", r.jain);
        assert!(
            r.max_denial <= 2 * 8,
            "qsm denial run {} too long",
            r.max_denial
        );
    }

    #[test]
    fn ticket_lock_is_fifo_fair() {
        let machine = Machine::new(MachineParams::bus_1991(6));
        let cfg = FairnessConfig {
            nprocs: 6,
            total_cs: 60,
            hold: 20,
        };
        let r = run(&machine, &TicketLock, &cfg).unwrap();
        assert!(r.cv < 0.2, "ticket cv {}", r.cv);
    }

    #[test]
    fn tas_is_less_fair_than_ticket_under_load() {
        let machine = Machine::new(MachineParams::bus_1991(8));
        let cfg = FairnessConfig {
            nprocs: 8,
            total_cs: 64,
            hold: 30,
        };
        let tas = run(&machine, &TasLock, &cfg).unwrap();
        let ticket = run(&machine, &TicketLock, &cfg).unwrap();
        assert!(
            tas.max_denial >= ticket.max_denial,
            "tas denial {} vs ticket {}",
            tas.max_denial,
            ticket.max_denial
        );
    }
}
