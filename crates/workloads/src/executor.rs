//! A minimal deterministic single-threaded executor with a **virtual
//! clock** — the async driver's analogue of `sim_load`'s discrete-event
//! core.
//!
//! The figures need async runs that are pure functions of their
//! configuration, which rules out every wall-clock runtime. This executor
//! gets there the same way the simulator does: time is a counter, every
//! wake is timestamped, and all ties break on a global sequence number.
//! Specifically:
//!
//! - Tasks are polled from a FIFO ready queue, one at a time, on the
//!   calling thread.
//! - [`Handle::sleep`]/[`Handle::sleep_until`] park a task until a
//!   virtual deadline; expiry costs nothing (time simply passes).
//! - A waker invoked from a *poll* (a lock release waking a parked
//!   future, say) re-schedules the woken task [`WAKE_COST`] cycles later
//!   — the futex-wake latency the blocking drivers price into their grant
//!   costs. The cost is configurable per executor.
//! - When nothing is ready, the clock jumps to the next scheduled event;
//!   when nothing is scheduled and tasks remain, [`Executor::run`]
//!   returns [`Outcome::Stalled`] with the survivors instead of spinning
//!   — which is how the `lock_many` ordering tests *detect* a deadlock
//!   deterministically. Dropping the executor drops the stalled futures,
//!   exercising their cancellation paths.
//!
//! [`Handle::timeout`] wraps a future with a virtual deadline and **drops
//! it** on expiry — in this codebase cancellation *is* drop, so a timeout
//! is nothing more than a race against a [`Sleep`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Default cycles between a waker firing inside a poll and the woken task
/// being re-polled: the executor's price for a futex wake, matching the
/// QSM constant grant cost in `service_load::LockPolicy::grant_cost`.
pub const WAKE_COST: u64 = 40;

/// State shared between the executor, its wakers, and its timers.
struct Shared {
    /// The virtual clock, in cycles.
    now: AtomicU64,
    /// Global tie-break sequence for scheduled events of both kinds.
    seq: AtomicU64,
    /// Task ids whose wakers fired since the last drain.
    woken: Mutex<Vec<usize>>,
    /// Pending sleeps: min-heap on (deadline, seq).
    timers: Mutex<BinaryHeap<Reverse<TimerEntry>>>,
}

impl Shared {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }
}

/// A scheduled sleep expiry. Ordered by (deadline, seq) only; the waker
/// rides along.
struct TimerEntry {
    at: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The per-task waker: records the task id for the executor to re-poll.
/// Safe to invoke from any thread (blocking threads wake async tasks
/// through the shared parking lot), though the deterministic figures
/// never do.
struct TaskWaker {
    id: usize,
    shared: Arc<Shared>,
}

impl std::task::Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.shared.woken.lock().unwrap().push(self.id);
    }
}

/// Poll/wake statistics of one executor, accumulated across `run` calls —
/// the executor's contribution to the service telemetry story (task polls
/// and wake-to-poll latency, both in deterministic virtual units).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorMetrics {
    /// Task polls dispatched.
    pub polls: u64,
    /// Virtual cycles between a waker firing inside a poll and the woken
    /// task's re-poll: the wake cost plus any ready-queue delay. Timer
    /// expiries are time passing, not wakes, and are not recorded.
    pub wake_to_poll: trace::Histogram,
}

/// How an [`Executor::run`] ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every spawned task ran to completion.
    Completed,
    /// No task is ready and nothing is scheduled, but these tasks (by
    /// spawn id) never finished — a deadlock or an abandoned wait.
    Stalled {
        /// Spawn ids of the unfinished tasks.
        unfinished: Vec<usize>,
    },
}

/// The executor. See the module docs for the discipline.
pub struct Executor<'a> {
    shared: Arc<Shared>,
    tasks: Vec<Option<Pin<Box<dyn Future<Output = ()> + 'a>>>>,
    ready: VecDeque<usize>,
    /// Wake-cost re-polls: min-heap on (time, seq, task id, wake time).
    /// The trailing wake timestamp rides along for the wake-to-poll
    /// histogram; (time, seq) stays the unique ordering key.
    resumes: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    wake_cost: u64,
    unfinished: usize,
    metrics: ExecutorMetrics,
}

impl Default for Executor<'_> {
    fn default() -> Self {
        Self::new(WAKE_COST)
    }
}

impl<'a> Executor<'a> {
    /// An executor whose waker-wakes cost `wake_cost` virtual cycles.
    pub fn new(wake_cost: u64) -> Self {
        Executor {
            shared: Arc::new(Shared {
                now: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                woken: Mutex::new(Vec::new()),
                timers: Mutex::new(BinaryHeap::new()),
            }),
            tasks: Vec::new(),
            ready: VecDeque::new(),
            resumes: BinaryHeap::new(),
            wake_cost,
            unfinished: 0,
            metrics: ExecutorMetrics::default(),
        }
    }

    /// Poll/wake statistics accumulated so far.
    pub fn metrics(&self) -> &ExecutorMetrics {
        &self.metrics
    }

    /// A clock/timer handle, cloneable into tasks.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> u64 {
        self.shared.now.load(Ordering::SeqCst)
    }

    /// Spawns a task; it is polled first at the current virtual time, in
    /// spawn order. Returns the task's id (its index in stall reports).
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'a) -> usize {
        let id = self.tasks.len();
        self.tasks.push(Some(Box::pin(fut)));
        self.ready.push_back(id);
        self.unfinished += 1;
        id
    }

    /// Runs until every task completes ([`Outcome::Completed`]) or
    /// nothing can make progress ([`Outcome::Stalled`]). Deterministic:
    /// single-threaded polling, FIFO ready order, and all time ties
    /// broken by one global sequence counter.
    pub fn run(&mut self) -> Outcome {
        loop {
            // Price the wakes fired during the last poll: each woken task
            // is re-polled wake_cost cycles from now.
            let now = self.now();
            for id in self.shared.woken.lock().unwrap().drain(..) {
                self.resumes.push(Reverse((
                    now + self.wake_cost,
                    self.shared.next_seq(),
                    id,
                    now,
                )));
            }
            if let Some(id) = self.ready.pop_front() {
                self.poll_task(id);
                continue;
            }
            // Idle: jump the clock to the next scheduled event and
            // dispatch everything due, merging the two heaps in global
            // (time, seq) order.
            let next_resume = self.resumes.peek().map(|Reverse((t, s, ..))| (*t, *s));
            let next_timer = {
                let timers = self.shared.timers.lock().unwrap();
                timers.peek().map(|Reverse(e)| (e.at, e.seq))
            };
            let Some((t, _)) = [next_resume, next_timer]
                .into_iter()
                .flatten()
                .min()
            else {
                return if self.unfinished == 0 {
                    Outcome::Completed
                } else {
                    Outcome::Stalled {
                        unfinished: (0..self.tasks.len())
                            .filter(|&i| self.tasks[i].is_some())
                            .collect(),
                    }
                };
            };
            debug_assert!(t >= now, "scheduled events never predate the clock");
            self.shared.now.store(t, Ordering::SeqCst);
            loop {
                let due_resume = self
                    .resumes
                    .peek()
                    .filter(|Reverse((at, ..))| *at <= t)
                    .map(|Reverse((at, s, ..))| (*at, *s));
                let due_timer = {
                    let timers = self.shared.timers.lock().unwrap();
                    timers
                        .peek()
                        .filter(|Reverse(e)| e.at <= t)
                        .map(|Reverse(e)| (e.at, e.seq))
                };
                let take_resume = match (due_resume, due_timer) {
                    (None, None) => break,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (Some(r), Some(tm)) => r < tm,
                };
                if take_resume {
                    let Reverse((at, _, id, woke_at)) = self.resumes.pop().expect("peeked");
                    self.metrics.wake_to_poll.record(at.saturating_sub(woke_at));
                    self.ready.push_back(id);
                } else {
                    let entry = {
                        let mut timers = self.shared.timers.lock().unwrap();
                        timers.pop().expect("peeked").0
                    };
                    entry.waker.wake();
                    // A timer expiry is time passing, not a futex wake:
                    // the woken task is ready *now*, cost-free.
                    for id in self.shared.woken.lock().unwrap().drain(..) {
                        self.ready.push_back(id);
                    }
                }
            }
        }
    }

    fn poll_task(&mut self, id: usize) {
        let Some(fut) = self.tasks[id].as_mut() else {
            // A stale duplicate wake of a completed task.
            return;
        };
        self.metrics.polls += 1;
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            shared: Arc::clone(&self.shared),
        }));
        let mut cx = Context::from_waker(&waker);
        if fut.as_mut().poll(&mut cx).is_ready() {
            self.tasks[id] = None;
            self.unfinished -= 1;
        }
    }
}

/// Clock and timer access for tasks; clone freely.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// The current virtual time.
    pub fn now(&self) -> u64 {
        self.shared.now.load(Ordering::SeqCst)
    }

    /// Resolves `cycles` of virtual time from now.
    pub fn sleep(&self, cycles: u64) -> Sleep {
        self.sleep_until(self.now() + cycles)
    }

    /// Resolves once the virtual clock reaches `at` (immediately if it
    /// already has).
    pub fn sleep_until(&self, at: u64) -> Sleep {
        Sleep {
            shared: Arc::clone(&self.shared),
            at,
            registered: false,
        }
    }

    /// Races `fut` against a `cycles`-long sleep: `Some(output)` if the
    /// future resolves first, else `None` with the future **dropped** —
    /// which is exactly the service futures' cancellation path.
    pub fn timeout<F: Future + Unpin>(&self, cycles: u64, fut: F) -> Timeout<F> {
        Timeout {
            sleep: self.sleep(cycles),
            inner: Some(fut),
        }
    }
}

/// Future of [`Handle::sleep`]/[`Handle::sleep_until`].
#[must_use = "futures do nothing unless polled"]
pub struct Sleep {
    shared: Arc<Shared>,
    at: u64,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.shared.now.load(Ordering::SeqCst) >= this.at {
            return Poll::Ready(());
        }
        if !this.registered {
            // One registration suffices: the sleep belongs to one task,
            // so later polls carry a waker for the same task.
            let seq = this.shared.next_seq();
            this.shared.timers.lock().unwrap().push(Reverse(TimerEntry {
                at: this.at,
                seq,
                waker: cx.waker().clone(),
            }));
            this.registered = true;
        }
        Poll::Pending
    }
}

/// Future of [`Handle::timeout`]; resolves to `Some(output)` or, on
/// expiry, drops the inner future and resolves to `None`.
#[must_use = "futures do nothing unless polled"]
pub struct Timeout<F: Future + Unpin> {
    sleep: Sleep,
    inner: Option<F>,
}

impl<F: Future + Unpin> Future for Timeout<F> {
    type Output = Option<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let inner = this.inner.as_mut().expect("Timeout polled after completion");
        if let Poll::Ready(v) = Pin::new(inner).poll(cx) {
            this.inner = None;
            return Poll::Ready(Some(v));
        }
        if Pin::new(&mut this.sleep).poll(cx).is_ready() {
            // Expired: cancellation is drop.
            this.inner = None;
            return Poll::Ready(None);
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn tasks_run_in_spawn_order_at_time_zero() {
        let order = RefCell::new(Vec::new());
        let mut ex = Executor::new(WAKE_COST);
        for i in 0..3 {
            let order = &order;
            ex.spawn(async move {
                order.borrow_mut().push(i);
            });
        }
        assert_eq!(ex.run(), Outcome::Completed);
        assert_eq!(ex.now(), 0);
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn sleeps_advance_the_clock_in_deadline_order() {
        let log = RefCell::new(Vec::new());
        let mut ex = Executor::new(WAKE_COST);
        let h = ex.handle();
        for (i, delay) in [30u64, 10, 20].into_iter().enumerate() {
            let (h, log) = (h.clone(), &log);
            ex.spawn(async move {
                h.sleep(delay).await;
                log.borrow_mut().push((h.now(), i));
            });
        }
        assert_eq!(ex.run(), Outcome::Completed);
        assert_eq!(ex.now(), 30);
        assert_eq!(*log.borrow(), vec![(10, 1), (20, 2), (30, 0)]);
    }

    #[test]
    fn waker_wakes_are_priced_at_wake_cost() {
        let svc = service::AsyncLockService::with_shards(1);
        let granted_at = RefCell::new(0u64);
        let mut ex = Executor::new(7);
        let h = ex.handle();
        {
            let (h, svc) = (h.clone(), &svc);
            ex.spawn(async move {
                let _g = svc.lock(1).await;
                h.sleep(100).await;
            });
        }
        {
            let (h, svc, granted_at) = (h.clone(), &svc, &granted_at);
            ex.spawn(async move {
                let _g = svc.lock(1).await;
                *granted_at.borrow_mut() = h.now();
            });
        }
        assert_eq!(ex.run(), Outcome::Completed);
        // Task 0 releases at t=100; the wake costs 7 cycles.
        assert_eq!(*granted_at.borrow(), 107);
        drop(ex);
        assert_eq!(svc.stats().live, 0);
    }

    #[test]
    fn timeout_expires_and_drops_the_inner_future() {
        let svc = service::AsyncLockService::with_shards(1);
        let outcome = RefCell::new(None);
        let mut ex = Executor::new(WAKE_COST);
        let h = ex.handle();
        {
            let (h, svc) = (h.clone(), &svc);
            ex.spawn(async move {
                let _g = svc.lock(1).await;
                h.sleep(1000).await;
            });
        }
        {
            let (h, svc, outcome) = (h.clone(), &svc, &outcome);
            ex.spawn(async move {
                // Times out long before the holder releases; the inner
                // LockFuture is dropped mid-wait (the cancellation path).
                let r = h.timeout(50, svc.lock(1)).await;
                *outcome.borrow_mut() = Some(r.is_some());
            });
        }
        assert_eq!(ex.run(), Outcome::Completed);
        assert_eq!(*outcome.borrow(), Some(false));
        drop(ex);
        assert_eq!(svc.stats().live, 0);
    }

    #[test]
    fn timeout_completion_beats_the_clock() {
        let svc = service::AsyncLockService::with_shards(1);
        let outcome = RefCell::new(None);
        let mut ex = Executor::new(WAKE_COST);
        let h = ex.handle();
        {
            let (h, svc, outcome) = (h.clone(), &svc, &outcome);
            ex.spawn(async move {
                let r = h.timeout(50, svc.lock(1)).await;
                *outcome.borrow_mut() = Some(r.is_some());
            });
        }
        assert_eq!(ex.run(), Outcome::Completed);
        assert_eq!(*outcome.borrow(), Some(true));
        drop(ex);
        assert_eq!(svc.stats().live, 0);
    }

    #[test]
    fn deadlock_is_reported_as_a_stall_not_a_hang() {
        let svc = service::AsyncLockService::with_shards(4);
        let mut ex = Executor::new(WAKE_COST);
        let h = ex.handle();
        // The classic reversed-order deadlock, staged with sleeps so each
        // task holds its first key before wanting the second.
        {
            let (h, svc) = (h.clone(), &svc);
            ex.spawn(async move {
                let _a = svc.lock(1).await;
                h.sleep(10).await;
                let _b = svc.lock(2).await;
            });
        }
        {
            let (h, svc) = (h.clone(), &svc);
            ex.spawn(async move {
                let _b = svc.lock(2).await;
                h.sleep(10).await;
                let _a = svc.lock(1).await;
            });
        }
        ex.spawn(async {});
        assert_eq!(
            ex.run(),
            Outcome::Stalled {
                unfinished: vec![0, 1]
            }
        );
        // Dropping the executor drops the deadlocked futures, releasing
        // everything through their cancellation paths.
        drop(ex);
        assert_eq!(svc.stats().live, 0);
    }

    #[test]
    fn executor_runs_are_deterministic() {
        let run = || {
            let svc = service::AsyncLockService::with_shards(8);
            let log = RefCell::new(Vec::new());
            let mut ex = Executor::new(WAKE_COST);
            let h = ex.handle();
            for i in 0..8u64 {
                let (h, svc, log) = (h.clone(), &svc, &log);
                ex.spawn(async move {
                    h.sleep(i % 3).await;
                    let _g = svc.lock(i % 2).await;
                    h.sleep(5).await;
                    log.borrow_mut().push((i, h.now()));
                });
            }
            assert_eq!(ex.run(), Outcome::Completed);
            let t = ex.now();
            drop(ex);
            (t, log.into_inner())
        };
        assert_eq!(run(), run());
    }
}
