//! Cross-backend differential testing: one lock kernel, four substrates.
//!
//! Every kernel in the suite is written once against [`kernels::SyncCtx`]
//! and then executed on substrates with very different semantics: the
//! interleave checker (schedule-exhaustive or fuzzed, sequentially
//! consistent), the cycle-level simulator (dedicated and oversubscribed
//! machines), and real std threads over `SeqCst` atomics with the
//! `parking` futex. A bug in a kernel shows up on all of them; a bug in a
//! *substrate* — a miscounted futex wake in the simulator, a checker that
//! parks a thread it should not — shows up as the backends disagreeing
//! about the same workload. This module runs the canonical non-atomic
//! counter workload (the same one [`kernels::locks::counter_trial`] and
//! the interleave harness use) on all four and compares:
//!
//! * the **final counter** against `nthreads * iters` — the mutual
//!   exclusion witness every backend shares;
//! * **futex parks vs. wakes** where the substrate counts them (both
//!   simulator machines, real threads): a completed run must balance,
//!   because every parked waiter had to be woken for the run to finish;
//! * **verdicts**: the checker-fuzz backend additionally race-checks the
//!   counter accesses, so a broken lock fails there deterministically
//!   even when the other backends get lucky.
//!
//! The checker backend samples schedules with the fuzzer (PCT by default)
//! rather than searching exhaustively, which keeps the harness cheap
//! enough to run over every lock in CI while still being a real
//! adversary; see the `interleave::fuzz` module docs for the guarantee.

use interleave::harness::{fuzz_lock, lock_program};
use interleave::{Fuzzer, ReplayEnd, Strategy, Verdict};
use kernels::locks::{counter_trial, fixture, lock_by_name, LockKernel};
use kernels::{Addr, LockEvent, SyncCtx, Word};
use memsim::{Machine, MachineParams, SchedParams};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Probe bound for real-thread spin loops: generous enough for any healthy
/// lock hand-off, small enough that a genuinely stuck waiter fails the
/// test instead of hanging it.
const SPIN_LIMIT: u64 = 1 << 26;

/// Shape of one differential trial.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Threads / simulated processors contending for the lock.
    pub nthreads: usize,
    /// Critical sections per thread.
    pub iters: usize,
    /// Cores for the oversubscribed simulator backend (`nthreads` should
    /// exceed this for the scheduler to matter).
    pub cores: usize,
    /// Seed for the checker-fuzz backend.
    pub fuzz_seed: u64,
    /// Schedule budget for the checker-fuzz backend.
    pub fuzz_iters: usize,
    /// Simulated cycles held inside the critical section on the simulator
    /// backends (widens the violation window for broken locks).
    pub hold: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            nthreads: 2,
            iters: 2,
            cores: 1,
            fuzz_seed: interleave::fuzz::DEFAULT_FUZZ_SEED,
            fuzz_iters: 60,
            hold: 10,
        }
    }
}

/// What one backend observed for the shared workload.
#[derive(Debug, Clone)]
pub struct BackendOutcome {
    /// Backend identifier (`checker-fuzz`, `memsim-bus`, `memsim-oversub`,
    /// `real-threads`).
    pub backend: &'static str,
    /// Final counter value, when the backend completed the run.
    pub counter: Option<Word>,
    /// Futex parks, on backends that count them.
    pub futex_parks: Option<u64>,
    /// Waiters dequeued by futex wakes, on backends that count them.
    pub futex_woken: Option<u64>,
    /// Why the backend failed outright (verdict, simulator error, panic).
    pub failure: Option<String>,
}

/// The four backends' outcomes for one lock, plus the comparison logic.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The lock under test.
    pub lock: String,
    /// `nthreads * iters` — the counter value every backend must reach.
    pub expected: Word,
    /// One entry per backend, in a fixed order.
    pub outcomes: Vec<BackendOutcome>,
}

impl DiffReport {
    /// Every way the backends deviate from the expected outcome or from
    /// each other, one human-readable line each. Empty means agreement.
    pub fn disagreements(&self) -> Vec<String> {
        let mut out = Vec::new();
        for o in &self.outcomes {
            if let Some(f) = &o.failure {
                out.push(format!("{}: {f}", o.backend));
                continue;
            }
            if let Some(c) = o.counter {
                if c != self.expected {
                    out.push(format!(
                        "{}: counter {c} != expected {}",
                        o.backend, self.expected
                    ));
                }
            }
            if let (Some(parks), Some(woken)) = (o.futex_parks, o.futex_woken) {
                if parks != woken {
                    out.push(format!(
                        "{}: {parks} futex parks but {woken} futex wakes",
                        o.backend
                    ));
                }
            }
        }
        out
    }

    /// Whether every backend completed, reached the expected counter, and
    /// balanced its futex parks against wakes.
    pub fn all_agree(&self) -> bool {
        self.disagreements().is_empty()
    }

    /// One-line-per-backend summary table for logs and CI artifacts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("differential {}: expected counter {}\n", self.lock, self.expected);
        for o in &self.outcomes {
            let counter = o
                .counter
                .map_or_else(|| "-".to_string(), |c| c.to_string());
            let parks = o
                .futex_parks
                .map_or_else(|| "-".to_string(), |p| p.to_string());
            let woken = o
                .futex_woken
                .map_or_else(|| "-".to_string(), |w| w.to_string());
            let status = o.failure.as_deref().unwrap_or("ok");
            let _ = writeln!(
                s,
                "  {:<14} counter {:<6} parks {:<4} wakes {:<4} {status}",
                o.backend, counter, parks, woken
            );
        }
        s
    }
}

/// Runs the differential trial for a registry lock, resolved by name
/// through [`kernels::locks::lock_by_name`] (spin-lock study and blocking
/// variants alike).
pub fn differential_lock(name: &str, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let lock: Arc<dyn LockKernel + Send + Sync> = Arc::from(
        lock_by_name(name).ok_or_else(|| format!("unknown lock '{name}'"))?,
    );
    Ok(differential_lock_kernel(lock, cfg))
}

/// Runs the differential trial for an arbitrary kernel — the entry point
/// tests use to prove the harness catches a deliberately broken lock.
pub fn differential_lock_kernel(
    lock: Arc<dyn LockKernel + Send + Sync>,
    cfg: &DiffConfig,
) -> DiffReport {
    let expected = (cfg.nthreads * cfg.iters) as Word;
    let outcomes = vec![
        checker_fuzz_backend(&lock, cfg),
        memsim_backend("memsim-bus", dedicated_machine(cfg), &lock, cfg),
        memsim_backend("memsim-oversub", oversub_machine(cfg), &lock, cfg),
        real_threads_backend(&lock, cfg),
    ];
    DiffReport {
        lock: lock.name().to_string(),
        expected,
        outcomes,
    }
}

/// The paper's dedicated bus machine, with the cycle ceiling raised so the
/// blocking variants' occasional parks fit comfortably.
fn dedicated_machine(cfg: &DiffConfig) -> Machine {
    let mut params = MachineParams::bus_1991(cfg.nthreads);
    params.max_cycles = 50_000_000;
    Machine::new(params)
}

/// The oversubscribed machine: same bus, `cfg.cores` cores under the
/// 1991-flavored scheduler (mirrors `oversub::oversub_machine`).
fn oversub_machine(cfg: &DiffConfig) -> Machine {
    let mut params = MachineParams::bus_1991(cfg.nthreads);
    params.sched = Some(SchedParams::oversub_1991(cfg.cores));
    params.max_cycles = 50_000_000;
    Machine::new(params)
}

fn verdict_summary(v: &Verdict) -> String {
    match v {
        Verdict::Passed(_) => "passed".to_string(),
        Verdict::Deadlock { blocked, .. } => {
            format!("deadlock ({} threads blocked)", blocked.len())
        }
        Verdict::LostWakeup { parked, .. } => {
            format!("lost wakeup ({} threads parked)", parked.len())
        }
        Verdict::Violation { message, .. } => format!("violation: {message}"),
        Verdict::Race { report, .. } => format!("data race: {report:?}"),
        Verdict::Starvation { report, .. } => format!("starvation: {report:?}"),
    }
}

/// Backend 1: the interleave checker driven by the schedule fuzzer. On a
/// pass, the counter is witnessed by replaying the default schedule (the
/// checker's memory is not otherwise exposed through the fuzz report).
fn checker_fuzz_backend(
    lock: &Arc<dyn LockKernel + Send + Sync>,
    cfg: &DiffConfig,
) -> BackendOutcome {
    let fuzzer = Fuzzer::new(cfg.fuzz_seed, cfg.fuzz_iters, Strategy::default());
    let report = fuzz_lock(Arc::clone(lock), cfg.nthreads, cfg.iters, &fuzzer);
    let mut outcome = BackendOutcome {
        backend: "checker-fuzz",
        counter: None,
        futex_parks: None,
        futex_woken: None,
        failure: None,
    };
    match &report.verdict {
        Verdict::Passed(_) => {
            let program = lock_program(Arc::clone(lock), cfg.nthreads, cfg.iters);
            let counter = program.initial_memory().len() - 1;
            match fuzzer.explorer().replay(&program, &[]).end {
                ReplayEnd::Complete(mem) => outcome.counter = Some(mem[counter]),
                other => {
                    outcome.failure =
                        Some(format!("counter-witness replay did not complete: {other:?}"))
                }
            }
        }
        v => {
            let mut failure = verdict_summary(v);
            if let Some(shrunk) = &report.shrunk {
                use std::fmt::Write as _;
                let _ = write!(
                    failure,
                    " (seed {}, shrunk schedule {:?})",
                    cfg.fuzz_seed, shrunk.schedule
                );
            }
            outcome.failure = Some(failure);
        }
    }
    outcome
}

/// Backends 2 and 3: the cycle-level simulator, dedicated or scheduled.
fn memsim_backend(
    name: &'static str,
    machine: Machine,
    lock: &Arc<dyn LockKernel + Send + Sync>,
    cfg: &DiffConfig,
) -> BackendOutcome {
    match counter_trial(&machine, &**lock, cfg.nthreads, cfg.iters, cfg.hold) {
        Ok((count, report)) => {
            // A completed run must have woken every parked waiter; an
            // imbalance here is a substrate bug, not a lock bug.
            assert_eq!(
                report.metrics.futex_parks(),
                report.metrics.futex_woken(),
                "{name}: futex park/wake imbalance on a completed run"
            );
            BackendOutcome {
                backend: name,
                counter: Some(count),
                futex_parks: Some(report.metrics.futex_parks()),
                futex_woken: Some(report.metrics.futex_woken()),
                failure: None,
            }
        }
        Err(e) => BackendOutcome {
            backend: name,
            counter: None,
            futex_parks: None,
            futex_woken: None,
            failure: Some(format!("simulation error: {e}")),
        },
    }
}

/// A [`SyncCtx`] over real std threads: shared memory is a `Vec<AtomicU64>`
/// accessed at `SeqCst`, spins are bounded probe loops, and the futex
/// methods are the `parking` crate's real parking lot. One instance per
/// thread; the park/wake tallies are summed after the join.
struct RealCtx {
    pid: usize,
    nprocs: usize,
    mem: Arc<Vec<AtomicU64>>,
    parks: u64,
    wakes: u64,
}

impl RealCtx {
    fn new(pid: usize, nprocs: usize, mem: Arc<Vec<AtomicU64>>) -> Self {
        RealCtx {
            pid,
            nprocs,
            mem,
            parks: 0,
            wakes: 0,
        }
    }

    fn probe(probes: &mut u64, addr: Addr) {
        *probes += 1;
        assert!(
            *probes < SPIN_LIMIT,
            "real-threads backend: spin on word {addr} exceeded {SPIN_LIMIT} probes (hung lock?)"
        );
        if (*probes).is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

impl SyncCtx for RealCtx {
    fn pid(&self) -> usize {
        self.pid
    }
    fn nprocs(&self) -> usize {
        self.nprocs
    }
    fn load(&mut self, addr: Addr) -> Word {
        self.mem[addr].load(Ordering::SeqCst)
    }
    fn store(&mut self, addr: Addr, val: Word) {
        self.mem[addr].store(val, Ordering::SeqCst);
    }
    fn swap(&mut self, addr: Addr, val: Word) -> Word {
        self.mem[addr].swap(val, Ordering::SeqCst)
    }
    fn cas(&mut self, addr: Addr, expected: Word, new: Word) -> Result<Word, Word> {
        self.mem[addr].compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }
    fn fetch_add(&mut self, addr: Addr, delta: Word) -> Word {
        self.mem[addr].fetch_add(delta, Ordering::SeqCst)
    }
    fn spin_while(&mut self, addr: Addr, val: Word) -> Word {
        let mut probes = 0;
        loop {
            let cur = self.mem[addr].load(Ordering::SeqCst);
            if cur != val {
                return cur;
            }
            Self::probe(&mut probes, addr);
        }
    }
    fn spin_until(&mut self, addr: Addr, val: Word) {
        let mut probes = 0;
        while self.mem[addr].load(Ordering::SeqCst) != val {
            Self::probe(&mut probes, addr);
        }
    }
    fn delay(&mut self, cycles: u64) {
        for _ in 0..cycles.min(1_000) {
            std::hint::spin_loop();
        }
    }
    fn lock_event(&mut self, _event: LockEvent) {}
    fn futex_wait(&mut self, addr: Addr, expected: Word) -> Word {
        if parking::futex::futex_wait(&self.mem[addr], expected) {
            self.parks += 1;
        }
        self.mem[addr].load(Ordering::SeqCst)
    }
    fn futex_wake(&mut self, addr: Addr, n: usize) -> usize {
        let woken = parking::futex::futex_wake(&self.mem[addr], n);
        self.wakes += woken as u64;
        woken
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "thread panicked".to_string()
    }
}

/// Backend 4: the kernel on real std threads. Same layout as the
/// simulator backends ([`fixture`]), same deliberately non-atomic counter
/// increment in the critical section.
fn real_threads_backend(
    lock: &Arc<dyn LockKernel + Send + Sync>,
    cfg: &DiffConfig,
) -> BackendOutcome {
    // Honour SYNCMECH_TRACE for the real-thread park/wake path (no-op when
    // the knob is off or a tracer is already installed).
    parking::trace_hooks::init_from_env();
    let (fix, init) = fixture(&**lock, cfg.nthreads, 8, 1);
    let counter = fix.scratch.slot(0);
    let mem: Arc<Vec<AtomicU64>> = Arc::new(init.into_iter().map(AtomicU64::new).collect());
    let iters = cfg.iters;
    let nthreads = cfg.nthreads;
    let joined: Vec<Result<(u64, u64), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nthreads)
            .map(|pid| {
                let lock = Arc::clone(lock);
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let mut ctx = RealCtx::new(pid, nthreads, mem);
                    let mut ps = lock.proc_init(pid, &fix.region);
                    for _ in 0..iters {
                        let token = lock.acquire(&mut ctx, &fix.region, &mut ps);
                        let v = ctx.data_load(counter);
                        std::thread::yield_now();
                        ctx.data_store(counter, v + 1);
                        lock.release(&mut ctx, &fix.region, &mut ps, token);
                    }
                    (ctx.parks, ctx.wakes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|e| panic_message(&*e)))
            .collect()
    });
    let mut parks = 0;
    let mut wakes = 0;
    let mut failures = Vec::new();
    for r in joined {
        match r {
            Ok((p, w)) => {
                parks += p;
                wakes += w;
            }
            Err(msg) => failures.push(msg),
        }
    }
    if failures.is_empty() {
        BackendOutcome {
            backend: "real-threads",
            counter: Some(mem[counter].load(Ordering::SeqCst)),
            futex_parks: Some(parks),
            futex_woken: Some(wakes),
            failure: None,
        }
    } else {
        BackendOutcome {
            backend: "real-threads",
            counter: None,
            futex_parks: None,
            futex_woken: None,
            failure: Some(failures.join("; ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::Region;

    #[test]
    fn differential_agrees_on_qsm() {
        let report = differential_lock("qsm", &DiffConfig::default()).unwrap();
        assert!(
            report.all_agree(),
            "qsm backends disagreed:\n{}",
            report.render()
        );
        for o in &report.outcomes {
            assert_eq!(o.counter, Some(report.expected), "{} counter", o.backend);
        }
    }

    #[test]
    fn differential_agrees_on_blocking_qsm() {
        let report = differential_lock("qsm-block-park", &DiffConfig::default()).unwrap();
        assert!(
            report.all_agree(),
            "qsm-block-park backends disagreed:\n{}",
            report.render()
        );
        // The always-park variant must actually exercise the futex on the
        // oversubscribed machine, and the parks must balance the wakes.
        let oversub = report
            .outcomes
            .iter()
            .find(|o| o.backend == "memsim-oversub")
            .unwrap();
        assert_eq!(oversub.futex_parks, oversub.futex_woken);
    }

    #[test]
    fn differential_flags_a_broken_lock() {
        // "Acquire" is a plain store: no atomicity, no waiting. The
        // checker-fuzz backend must fail it deterministically (race
        // detection), whatever the timing-dependent backends observe.
        #[derive(Debug)]
        struct BrokenLock;
        impl LockKernel for BrokenLock {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn lines_needed(&self, _p: usize) -> usize {
                1
            }
            fn acquire(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64) -> u64 {
                ctx.store(region.slot(0), 1);
                0
            }
            fn release(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64, _t: u64) {
                ctx.store(region.slot(0), 0);
            }
        }
        let cfg = DiffConfig {
            iters: 1,
            fuzz_seed: 17,
            fuzz_iters: 200,
            ..DiffConfig::default()
        };
        let report = differential_lock_kernel(Arc::new(BrokenLock), &cfg);
        assert!(!report.all_agree(), "broken lock slipped through:\n{}", report.render());
        let checker = report
            .outcomes
            .iter()
            .find(|o| o.backend == "checker-fuzz")
            .unwrap();
        assert!(
            checker.failure.as_deref().unwrap_or("").contains("data race"),
            "checker backend should flag the race, got {:?}",
            checker.failure
        );
    }

    #[test]
    fn unknown_lock_name_is_an_error() {
        let err = differential_lock("nonexistent", &DiffConfig::default()).unwrap_err();
        assert!(err.contains("unknown lock"), "got: {err}");
    }

    #[test]
    fn report_render_lists_every_backend() {
        let report = differential_lock("ticket", &DiffConfig::default()).unwrap();
        let rendered = report.render();
        for backend in ["checker-fuzz", "memsim-bus", "memsim-oversub", "real-threads"] {
            assert!(rendered.contains(backend), "missing {backend}:\n{rendered}");
        }
    }
}
