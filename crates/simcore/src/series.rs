//! Labeled data series — the in-memory form of a figure.
//!
//! A [`Series`] is a set of named curves sharing an x-axis (for the scaling
//! figures: x = processor count, one curve per lock algorithm). The figure
//! binaries build a `Series`, then render it as a table/CSV and compute
//! scaling fits for EXPERIMENTS.md.

use crate::stats::{power_fit, LinearFit};
use crate::table::{fmt_cell, Table};
use std::collections::BTreeMap;

/// A set of named curves over a shared x-axis.
#[derive(Debug, Clone, Default)]
pub struct Series {
    x_label: String,
    y_label: String,
    /// curve name → (x → y). BTreeMaps keep output deterministic.
    curves: BTreeMap<String, BTreeMap<u64, f64>>,
    /// Insertion order of curve names, so tables list algorithms in the
    /// order the experiment defined them rather than alphabetically.
    order: Vec<String>,
}

impl Series {
    /// Creates an empty series with axis labels.
    pub fn new(x_label: impl Into<String>, y_label: impl Into<String>) -> Self {
        Series {
            x_label: x_label.into(),
            y_label: y_label.into(),
            curves: BTreeMap::new(),
            order: Vec::new(),
        }
    }

    /// Adds one `(x, y)` point to the named curve, creating the curve on
    /// first use. A repeated x overwrites the previous y.
    pub fn push(&mut self, curve: &str, x: u64, y: f64) {
        if !self.curves.contains_key(curve) {
            self.order.push(curve.to_string());
        }
        self.curves.entry(curve.to_string()).or_default().insert(x, y);
    }

    /// All x values present in any curve, ascending.
    pub fn xs(&self) -> Vec<u64> {
        let mut xs: Vec<u64> = self
            .curves
            .values()
            .flat_map(|c| c.keys().copied())
            .collect();
        xs.sort_unstable();
        xs.dedup();
        xs
    }

    /// Curve names in insertion order.
    pub fn curve_names(&self) -> &[String] {
        &self.order
    }

    /// Looks up a point.
    pub fn get(&self, curve: &str, x: u64) -> Option<f64> {
        self.curves.get(curve)?.get(&x).copied()
    }

    /// The points of one curve, ascending in x.
    pub fn points(&self, curve: &str) -> Vec<(f64, f64)> {
        self.curves
            .get(curve)
            .map(|c| c.iter().map(|(&x, &y)| (x as f64, y)).collect())
            .unwrap_or_default()
    }

    /// Log–log power-law fit of one curve (`y ~ x^e`); the scaling exponent
    /// the era's papers argue about. `None` if the curve has < 2 usable points.
    pub fn scaling_exponent(&self, curve: &str) -> Option<LinearFit> {
        power_fit(&self.points(curve))
    }

    /// Renders as a table: one row per x, one column per curve.
    pub fn to_table(&self, title: &str) -> Table {
        let mut header: Vec<&str> = vec![self.x_label.as_str()];
        header.extend(self.order.iter().map(String::as_str));
        let mut t = Table::new(&header).with_title(format!("{title}  [{}]", self.y_label));
        for x in self.xs() {
            let mut cells = vec![x.to_string()];
            for name in &self.order {
                cells.push(
                    self.get(name, x)
                        .map(fmt_cell)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            t.row_owned(cells);
        }
        t
    }

    /// Ratio between two curves at the largest shared x — "who wins, by what
    /// factor" at scale, the headline comparison of the reproduction.
    pub fn final_ratio(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let xs_num = self.curves.get(numerator)?;
        let xs_den = self.curves.get(denominator)?;
        let shared = xs_num
            .keys()
            .rev()
            .find(|x| xs_den.contains_key(x))?;
        let d = xs_den[shared];
        if d == 0.0 {
            None
        } else {
            Some(xs_num[shared] / d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("P", "cycles");
        for p in [1u64, 2, 4, 8] {
            s.push("tas", p, 10.0 * p as f64);
            s.push("mcs", p, 40.0);
        }
        s
    }

    #[test]
    fn xs_are_sorted_and_deduped() {
        let s = sample();
        assert_eq!(s.xs(), vec![1, 2, 4, 8]);
    }

    #[test]
    fn insertion_order_preserved() {
        let s = sample();
        assert_eq!(s.curve_names(), &["tas".to_string(), "mcs".to_string()]);
    }

    #[test]
    fn get_and_overwrite() {
        let mut s = sample();
        assert_eq!(s.get("tas", 4), Some(40.0));
        s.push("tas", 4, 99.0);
        assert_eq!(s.get("tas", 4), Some(99.0));
        assert_eq!(s.get("nope", 4), None);
    }

    #[test]
    fn scaling_exponent_separates_flat_from_linear() {
        let s = sample();
        let tas = s.scaling_exponent("tas").unwrap();
        let mcs = s.scaling_exponent("mcs").unwrap();
        assert!((tas.slope - 1.0).abs() < 1e-9);
        assert!(mcs.slope.abs() < 1e-9);
    }

    #[test]
    fn table_has_row_per_x() {
        let s = sample();
        let t = s.to_table("fig1");
        assert_eq!(t.len(), 4);
        let text = t.render();
        assert!(text.contains("fig1"));
        assert!(text.contains("cycles"));
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut s = sample();
        s.push("partial", 8, 1.0);
        let text = s.to_table("t").render();
        assert!(text.contains('-'));
    }

    #[test]
    fn final_ratio_uses_largest_shared_x() {
        let s = sample();
        // tas(8)=80, mcs(8)=40.
        assert_eq!(s.final_ratio("tas", "mcs"), Some(2.0));
        assert_eq!(s.final_ratio("tas", "nope"), None);
    }

    #[test]
    fn final_ratio_zero_denominator() {
        let mut s = Series::new("P", "y");
        s.push("a", 1, 1.0);
        s.push("b", 1, 0.0);
        assert_eq!(s.final_ratio("a", "b"), None);
    }
}
