//! Deterministic pseudo-random number generation.
//!
//! All stochastic choices in the simulator (think-time jitter, workload shapes,
//! property-test corpora) flow through [`Rng`], a xoshiro256\*\* generator seeded
//! explicitly. Two runs with the same seed produce the same stream on every
//! platform, which the integration tests assert end-to-end.

/// A xoshiro256\*\* pseudo-random number generator.
///
/// Chosen because it is tiny, fast, has a 2^256 − 1 period, and passes BigCrush;
/// more than adequate for workload generation (we never use it for cryptography).
///
/// # Examples
///
/// ```
/// use simcore::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded into the 256-bit state with SplitMix64, the
    /// initialization recommended by the xoshiro authors; a zero seed is safe.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    /// `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be nonzero");
        // Lemire (2019): unbiased bounded integers without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed value in the inclusive range `[lo, hi]`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range: lo must be <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples a geometric-ish think time with the given mean, in whole cycles.
    ///
    /// Workload papers of the era model "local computation between synchronization
    /// operations" as an exponential; we use the discrete analogue so simulated
    /// time stays integral. A mean of zero always yields zero.
    pub fn exp_cycles(&mut self, mean: u64) -> u64 {
        if mean == 0 {
            return 0;
        }
        // Inverse-CDF sampling of an exponential, rounded to cycles.
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let x = -(u.ln()) * mean as f64;
        // Cap at a generous multiple of the mean so one unlucky draw cannot
        // dominate a short experiment.
        x.min(mean as f64 * 64.0) as u64
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// processor its own stream while keeping the whole experiment a function
    /// of one root seed.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds overlap: {same}/64");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng::new(0);
        let first = r.next_u64();
        let second = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Rng::new(3);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = Rng::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residues never appeared");
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn next_below_zero_panics() {
        Rng::new(0).next_below(0);
    }

    #[test]
    fn next_range_endpoints_reachable() {
        let mut r = Rng::new(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            match r.next_range(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn next_range_degenerate() {
        let mut r = Rng::new(5);
        assert_eq!(r.next_range(9, 9), 9);
    }

    #[test]
    fn next_range_full_span() {
        let mut r = Rng::new(5);
        // Must not overflow when the span is the entire u64 domain.
        let _ = r.next_range(0, u64::MAX);
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_roughly_half() {
        let mut r = Rng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(17);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn exp_cycles_zero_mean() {
        let mut r = Rng::new(19);
        assert_eq!(r.exp_cycles(0), 0);
    }

    #[test]
    fn exp_cycles_mean_close() {
        let mut r = Rng::new(23);
        let n = 50_000u64;
        let mean = 100u64;
        let total: u64 = (0..n).map(|_| r.exp_cycles(mean)).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - mean as f64).abs() < 5.0,
            "observed mean {observed}, expected ~{mean}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(29);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_elements() {
        let mut r = Rng::new(31);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle was identity");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(37);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
