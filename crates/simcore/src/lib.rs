//! # simcore — deterministic substrate utilities
//!
//! Shared foundation for every experiment in the `syncmech` reproduction of
//! *"A New Synchronization Mechanism"* (ICPP 1991):
//!
//! * [`rng`] — a small, fully deterministic xoshiro256\*\* PRNG. Experiments must
//!   be reproducible bit-for-bit from a seed, so we own the generator rather than
//!   depending on an external crate whose stream might change between versions.
//! * [`stats`] — running statistics (Welford), confidence intervals, histograms,
//!   percentiles, and least-squares regression used to summarize simulator output.
//! * [`table`] — plain-text table and CSV rendering for the figure/table binaries,
//!   so every `figN`/`tableN` binary prints rows in the same format the paper's
//!   evaluation section would.
//! * [`series`] — labeled (x, y…) data series: the in-memory representation of a
//!   "figure" before it is rendered.

pub mod rng;
pub mod series;
pub mod stats;
pub mod table;

pub use rng::Rng;
pub use series::Series;
pub use stats::{Histogram, LinearFit, RunningStats};
pub use table::Table;
