//! Statistics used to summarize simulator output.
//!
//! Everything here is deliberately dependency-free and numerically boring:
//! Welford's running moments, normal-approximation confidence intervals,
//! power-of-two histograms for latency distributions, exact percentiles over
//! retained samples, and ordinary least squares for the scaling-figure slopes.

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for the long cycle counts the simulator produces.
///
/// # Examples
///
/// ```
/// use simcore::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divides by n); zero when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n − 1); zero with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); zero when the mean is zero.
    ///
    /// Table 2 (fairness) reports this over per-processor acquisition counts:
    /// a perfectly fair lock gives 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Half-width of the ~95% confidence interval for the mean
    /// (normal approximation, z = 1.96). Zero with fewer than two samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }
}

/// Power-of-two bucketed histogram for latency distributions.
///
/// Bucket `k` holds values in `[2^k, 2^(k+1))`; bucket 0 also holds 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Iterates `(bucket_floor, count)` pairs for nonempty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k == 0 { 0 } else { 1u64 << k }, c))
    }

    /// Upper bound of the bucket containing the q-quantile (0 ≤ q ≤ 1).
    ///
    /// Returns 0 for an empty histogram. This is a coarse quantile — use
    /// [`percentile`] on retained samples when exactness matters.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if k == 63 { u64::MAX } else { (1u64 << (k + 1)) - 1 };
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.total += other.total;
    }
}

/// Exact percentile over a set of samples, using linear interpolation
/// between closest ranks (the "type 7" estimator used by most tools).
///
/// Returns `None` for an empty slice. The input need not be sorted.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut xs: Vec<f64> = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(xs[lo] + (xs[hi] - xs[lo]) * frac)
}

/// Result of an ordinary-least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Least-squares line through `(x, y)` points.
///
/// Used by the scaling figures to report, e.g., "test-and-set grows linearly
/// in P (slope s, R² r)". Returns `None` with fewer than two points or when
/// all x are identical.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(LinearFit { slope, intercept, r2 })
}

/// Log–log power-law fit `y ≈ c·x^e`, returned as `(exponent, r2)`.
///
/// The ICPP-era scaling claims ("O(1) vs O(P)") are exactly statements about
/// this exponent. Points with nonpositive coordinates are skipped.
pub fn power_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.0 > 0.0 && p.1 > 0.0)
        .map(|p| (p.0.ln(), p.1.ln()))
        .collect();
    linear_fit(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_sane() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.5, -3.0, 7.25, 0.0, 100.0, -50.5];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = s.clone();
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let mut s = RunningStats::new();
        for _ in 0..10 {
            s.push(5.0);
        }
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        let pairs: Vec<_> = h.iter().collect();
        // floor(0)=0 holds {0,1}; 2 holds {2,3}; 4 holds {4,7}; 8 holds {8}; 1024 holds {1024}.
        assert_eq!(pairs, vec![(0, 2), (2, 2), (4, 2), (8, 1), (1024, 1)]);
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1 << 20);
        assert!(h.quantile_bound(0.5) <= 1);
        assert!(h.quantile_bound(1.0) >= (1 << 20));
        assert_eq!(Histogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        a.record(100);
        b.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!(a.quantile_bound(1.0) >= 1_000_000);
    }

    #[test]
    fn percentile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&xs, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
        assert_eq!(percentile(&xs, 75.0), Some(7.5));
    }

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn linear_fit_constant_y() {
        let pts = [(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)];
        let fit = linear_fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn power_fit_recovers_exponent() {
        // y = 2 * x^1.5
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| (i as f64, 2.0 * (i as f64).powf(1.5)))
            .collect();
        let fit = power_fit(&pts).unwrap();
        assert!((fit.slope - 1.5).abs() < 1e-9, "exponent {}", fit.slope);
    }

    #[test]
    fn power_fit_skips_nonpositive() {
        let pts = [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0)];
        // The (0, 1) point must be ignored, not poison the fit with -inf.
        let fit = power_fit(&pts).unwrap();
        assert!(fit.slope.is_finite());
    }
}
