//! Plain-text table and CSV rendering.
//!
//! Every `tableN`/`figN` binary prints its result twice: once as an aligned
//! text table for reading in a terminal (the way the paper's tables read), and
//! once as CSV (behind `--csv`) for plotting. Both come from [`Table`].

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use simcore::Table;
/// let mut t = Table::new(&["lock", "P=1", "P=8"]);
/// t.row(&["mcs", "31", "44"]);
/// t.row(&["tas", "25", "310"]);
/// let text = t.render();
/// assert!(text.contains("mcs"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row of pre-formatted cells. Short rows are padded with
    /// empty cells; long rows extend the column count.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0)
    }

    /// Renders the aligned text form, ending with a newline.
    pub fn render(&self) -> String {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, &w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == cols {
                    let _ = write!(out, "{cell}");
                } else {
                    let _ = write!(out, "{cell:<w$}  ");
                }
            }
            let _ = writeln!(out);
        };
        render_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the CSV form (RFC-4180-ish quoting), ending with a newline.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats a float with a sensible number of digits for table cells:
/// integers print without a fraction; everything else gets two decimals.
pub fn fmt_cell(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "22"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and both rows start the second column at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    fn title_precedes_header() {
        let t = Table::new(&["x"]).with_title("Table 1: latencies");
        assert!(t.render().starts_with("Table 1: latencies\n"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3", "4"]);
        let text = t.render();
        assert!(text.contains('4'));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(&["k", "v"]);
        t.row(&["with,comma", "with\"quote"]);
        let csv = t.render_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn csv_round_count() {
        let mut t = Table::new(&["a"]);
        t.row(&["1"]);
        t.row(&["2"]);
        assert_eq!(t.render_csv().lines().count(), 3);
    }

    #[test]
    fn empty_flags() {
        let t = Table::new(&["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn fmt_cell_shapes() {
        assert_eq!(fmt_cell(3.0), "3");
        assert_eq!(fmt_cell(3.25), "3.25");
        assert_eq!(fmt_cell(1234.567), "1234.6");
        assert_eq!(fmt_cell(-2.0), "-2");
    }
}
