//! An RAII mutex generic over any [`RawLock`].

use crate::qsm::Qsm;
use crate::raw::RawLock;
use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion wrapper around a value, parameterized by the raw
/// busy-wait lock that protects it (QSM by default).
///
/// Differences from `std::sync::Mutex`: no poisoning (a panic while holding
/// the guard simply releases on unwind), no OS blocking (these are the
/// paper's busy-wait primitives), and the protecting algorithm is chosen by
/// a type parameter so experiments can swap baselines without touching
/// call sites.
pub struct Mutex<T: ?Sized, L: RawLock = Qsm> {
    raw: L,
    data: UnsafeCell<T>,
}

// SAFETY: the raw lock serializes all access to `data`, so sharing the
// mutex only requires the value to be Send (same bounds as std's Mutex).
unsafe impl<T: ?Sized + Send, L: RawLock> Send for Mutex<T, L> {}
unsafe impl<T: ?Sized + Send, L: RawLock> Sync for Mutex<T, L> {}

impl<T, L: RawLock + Default> Mutex<T, L> {
    /// Creates a mutex with a default-constructed raw lock.
    pub fn new(value: T) -> Self {
        Mutex {
            raw: L::default(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T, L: RawLock> Mutex<T, L> {
    /// Creates a mutex around an explicitly constructed raw lock (needed
    /// for locks with parameters, e.g. [`crate::AndersonLock`]).
    pub fn with_raw(raw: L, value: T) -> Self {
        Mutex {
            raw,
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized, L: RawLock> Mutex<T, L> {
    /// Acquires the lock, spinning until available.
    pub fn lock(&self) -> MutexGuard<'_, T, L> {
        let token = self.raw.lock();
        MutexGuard {
            mutex: self,
            token,
            _not_send: PhantomData,
        }
    }

    /// Mutable access without locking — safe because `&mut self` proves
    /// exclusivity.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Name of the protecting algorithm.
    pub fn raw_name(&self) -> &'static str {
        self.raw.name()
    }
}

impl<T: Default, L: RawLock + Default> Default for Mutex<T, L> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug, L: RawLock> fmt::Debug for Mutex<T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("raw", &self.raw.name())
            .finish_non_exhaustive()
    }
}

/// RAII guard: the lock is held while this lives; access the value through
/// `Deref`/`DerefMut`.
pub struct MutexGuard<'a, T: ?Sized, L: RawLock> {
    mutex: &'a Mutex<T, L>,
    token: usize,
    /// Guards must stay on the acquiring thread (queue locks encode the
    /// waiter identity in the token).
    _not_send: PhantomData<*const ()>,
}

// SAFETY: a guard is a shared/exclusive reference to T at heart; sharing
// the guard across threads (Sync) is fine when &T is.
unsafe impl<T: ?Sized + Sync, L: RawLock> Sync for MutexGuard<'_, T, L> {}

impl<T: ?Sized, L: RawLock> Deref for MutexGuard<'_, T, L> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves we hold the lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized, L: RawLock> DerefMut for MutexGuard<'_, T, L> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves we hold the lock exclusively.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized, L: RawLock> Drop for MutexGuard<'_, T, L> {
    fn drop(&mut self) {
        // SAFETY: constructed only by `Mutex::lock`, token passed once.
        unsafe { self.mutex.raw.unlock(self.token) };
    }
}

impl<T: ?Sized + fmt::Debug, L: RawLock> fmt::Debug for MutexGuard<'_, T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::{AndersonLock, McsLock, TicketLock};
    use std::sync::Arc;

    #[test]
    fn guard_gives_access_and_releases() {
        let m: Mutex<i32> = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m: Mutex<String> = Mutex::new("a".to_string());
        m.get_mut().push('b');
        assert_eq!(&*m.lock(), "ab");
    }

    #[test]
    fn default_raw_is_qsm() {
        let m: Mutex<()> = Mutex::new(());
        assert_eq!(m.raw_name(), "qsm");
    }

    #[test]
    fn works_with_every_baseline() {
        fn hammer<L: RawLock + 'static>(m: Mutex<u64, L>) {
            let m = Arc::new(m);
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || {
                        for _ in 0..250 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(*m.lock(), 1000, "{} lost updates", m.raw_name());
        }
        hammer::<TicketLock>(Mutex::new(0));
        hammer::<McsLock>(Mutex::new(0));
        hammer(Mutex::with_raw(AndersonLock::new(4), 0));
        hammer::<Qsm>(Mutex::new(0));
    }

    #[test]
    fn panic_while_held_releases_on_unwind() {
        let m = Arc::new(Mutex::<u64>::new(0));
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("boom");
        });
        assert!(t.join().is_err());
        // The unwind dropped the guard; we can lock again.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn debug_formats() {
        let m: Mutex<i32> = Mutex::new(3);
        let s = format!("{m:?}");
        assert!(s.contains("qsm"));
        let g = m.lock();
        assert_eq!(format!("{g:?}"), "3");
    }
}
