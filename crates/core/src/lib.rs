//! # qsm — the Queueing Synchronization Mechanism for real hardware
//!
//! This crate is the production counterpart of the reconstruction in
//! `kernels`: the same algorithms, written against `std::sync::atomic` with
//! explicit memory orderings, packaged behind safe APIs.
//!
//! ## The mechanism
//!
//! [`Qsm`] is a word-based queue lock whose hand-off is an increment of the
//! waiter's **grant word** — a tiny eventcount — rather than a boolean flag
//! store. The same grant-word idea supplies the crate's other services:
//!
//! * [`EventCount`] / [`Sequencer`] — Reed–Kanodia condition
//!   synchronization (`await` / `advance` / `ticket`);
//! * [`QsmBarrier`] — a reusable barrier whose arrival counter and release
//!   epoch are both monotone counters (no reset races by construction);
//! * [`Mutex`] — an RAII mutex generic over any [`RawLock`], defaulting
//!   to QSM.
//!
//! ## The baselines
//!
//! Every lock the 1991 evaluation compares against is here, behind the same
//! [`RawLock`] trait: [`TasLock`], [`TasBackoffLock`], [`TtasLock`],
//! [`TicketLock`], [`AndersonLock`], [`ClhLock`], [`McsLock`]. The figure-8
//! bench drives them all through one harness.
//!
//! ## Verification
//!
//! These are busy-wait primitives with hand-picked orderings, so the crate
//! is written to be model-checked with [loom]: build the test suite with
//! `RUSTFLAGS="--cfg loom" cargo test -p qsm --release --test loom` and
//! every lock/barrier/eventcount test is re-run under loom's C11 memory
//! model exploration. (The sequentially consistent interleaving checks live
//! in the `interleave` crate and cover the simulator-facing kernels.)
//!
//! [loom]: https://docs.rs/loom
//!
//! ## Quick start
//!
//! ```
//! use qsm::Mutex;
//! use std::sync::Arc;
//!
//! let counter: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
//! let threads: Vec<_> = (0..4)
//!     .map(|_| {
//!         let counter = Arc::clone(&counter);
//!         std::thread::spawn(move || {
//!             for _ in 0..1000 {
//!                 *counter.lock() += 1;
//!             }
//!         })
//!     })
//!     .collect();
//! for t in threads {
//!     t.join().unwrap();
//! }
//! assert_eq!(*counter.lock(), 4000);
//! ```

pub mod anderson;
pub mod backoff;
pub mod barrier;
pub mod clh;
pub mod event;
pub mod mcs;
pub mod mutex;
pub mod qsm;
pub mod raw;
pub mod rwlock;
pub mod semaphore;
pub mod tas;
pub mod ticket;
pub mod ttas;

pub use anderson::AndersonLock;
pub use backoff::Backoff;
pub use barrier::QsmBarrier;
pub use clh::ClhLock;
pub use event::{EventCount, Sequencer};
pub use mcs::McsLock;
pub use mutex::{Mutex, MutexGuard};
pub use qsm::Qsm;
pub use raw::{all_locks, RawLock};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use semaphore::{Permit, Semaphore};
pub use tas::{TasBackoffLock, TasLock};
pub use ticket::TicketLock;
pub use ttas::TtasLock;

/// Synchronization shim: `loom` types under `--cfg loom`, `std` otherwise.
///
/// Everything in the crate funnels its atomics and spin hints through here
/// so that one `RUSTFLAGS="--cfg loom"` rebuild puts the whole crate under
/// the model checker.
pub(crate) mod sync {
    #[cfg(loom)]
    pub(crate) use loom::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

    #[cfg(not(loom))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

    /// One spin-wait beat: a pause hint natively; a schedule point under loom
    /// (which cannot otherwise preempt a spin loop).
    #[inline]
    pub(crate) fn spin_hint() {
        #[cfg(loom)]
        loom::thread::yield_now();
        #[cfg(not(loom))]
        std::hint::spin_loop();
    }

    /// Yield the OS thread; identical to a spin beat under loom.
    #[inline]
    pub(crate) fn yield_now() {
        #[cfg(loom)]
        loom::thread::yield_now();
        #[cfg(not(loom))]
        std::thread::yield_now();
    }
}

/// A value padded and aligned to its own cache line (two lines' worth of
/// alignment to defeat adjacent-line prefetchers), so per-waiter spin
/// variables never share a line — the discipline every scalable 1991
/// algorithm demands.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn cache_padded_derefs() {
        let mut p = CachePadded::new(5u32);
        assert_eq!(*p, 5);
        *p = 7;
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn padded_array_elements_do_not_share_lines() {
        let a = [CachePadded::new(0u64), CachePadded::new(0u64)];
        let p0 = &*a[0] as *const u64 as usize;
        let p1 = &*a[1] as *const u64 as usize;
        assert!(p1 - p0 >= 128);
    }
}
