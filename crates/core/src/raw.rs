//! The raw lock interface shared by QSM and every baseline.

/// A busy-wait mutual-exclusion primitive.
///
/// `lock` returns an opaque token that must be passed back to `unlock`;
/// queue locks store a node pointer in it, array locks a slot index, simple
/// locks ignore it. The token makes the trait expressive enough for every
/// algorithm in the study while staying object-safe (the figure-8 bench
/// iterates `Box<dyn RawLock>`).
///
/// Prefer [`crate::Mutex`], which wraps any `RawLock` in an RAII guard;
/// use the trait directly only in harnesses.
pub trait RawLock: Send + Sync {
    /// Acquires the lock, spinning as necessary; returns the release token.
    fn lock(&self) -> usize;

    /// Releases the lock.
    ///
    /// # Safety
    ///
    /// The caller must currently hold the lock and `token` must be the value
    /// returned by the matching [`RawLock::lock`] call, passed exactly once.
    unsafe fn unlock(&self, token: usize);

    /// Short identifier used in benches and tables.
    fn name(&self) -> &'static str;
}

/// Constructs one of every lock in the study, sized for up to `max_threads`
/// concurrent lockers (only the Anderson lock needs the bound).
pub fn all_locks(max_threads: usize) -> Vec<Box<dyn RawLock>> {
    vec![
        Box::new(crate::TasLock::new()),
        Box::new(crate::TasBackoffLock::new()),
        Box::new(crate::TtasLock::new()),
        Box::new(crate::TicketLock::new()),
        Box::new(crate::AndersonLock::new(max_threads)),
        Box::new(crate::ClhLock::new()),
        Box::new(crate::McsLock::new()),
        Box::new(crate::Qsm::new()),
    ]
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn registry_is_complete_and_unique() {
        let locks = all_locks(4);
        let names: Vec<&str> = locks.iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            vec![
                "tas",
                "tas-backoff",
                "ttas",
                "ticket",
                "anderson",
                "clh",
                "mcs",
                "qsm"
            ]
        );
    }

    /// Every registered lock protects a non-atomic counter across threads.
    #[test]
    fn every_lock_is_actually_a_lock() {
        for lock in all_locks(4) {
            let lock: Arc<dyn RawLock> = Arc::from(lock);
            // SAFETY invariant: all access to the cell happens under `lock`.
            struct Shared(std::cell::UnsafeCell<u64>);
            unsafe impl Sync for Shared {}
            let shared = Arc::new(Shared(std::cell::UnsafeCell::new(0)));
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        for _ in 0..500 {
                            let token = lock.lock();
                            // SAFETY: we hold the lock.
                            unsafe {
                                let p = shared.0.get();
                                let v = p.read_volatile();
                                p.write_volatile(v + 1);
                            }
                            unsafe { lock.unlock(token) };
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let total = unsafe { *shared.0.get() };
            assert_eq!(total, 2000, "{} lost updates", lock.name());
        }
    }
}
