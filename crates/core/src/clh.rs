//! The CLH implicit-queue lock for real hardware.

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::sync::{AtomicBool, AtomicPtr, Ordering};
use crate::CachePadded;

/// One queue node: the word a successor spins on.
#[derive(Debug)]
#[repr(align(128))]
struct ClhNode {
    locked: AtomicBool,
}

/// CLH queue lock: each arrival swaps its node into the tail and spins on
/// the *predecessor's* node, so all waiting is on a line that only the
/// predecessor writes.
///
/// # Memory reclamation
///
/// The textbook CLH recycles nodes through thread-local storage. This
/// implementation instead frees the predecessor's node in `lock` — sound
/// because once a waiter observes `locked == false` (an acquire load of the
/// releaser's final store), the releasing thread never touches that node
/// again.
#[derive(Debug)]
pub struct ClhLock {
    tail: CachePadded<AtomicPtr<ClhNode>>,
}

impl ClhLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(false),
        }));
        ClhLock {
            tail: CachePadded::new(AtomicPtr::new(dummy)),
        }
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        ClhLock::new()
    }
}

impl RawLock for ClhLock {
    fn lock(&self) -> usize {
        let node = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(true),
        }));
        let pred = self.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `pred` stays valid until we free it below; only we (the
        // unique successor) may do so, and only after observing the release.
        // Escalating wait: see TicketLock on FIFO convoying.
        let mut backoff = Backoff::new();
        unsafe {
            while (*pred).locked.load(Ordering::Acquire) {
                backoff.snooze();
            }
            drop(Box::from_raw(pred));
        }
        node as usize
    }

    unsafe fn unlock(&self, token: usize) {
        let node = token as *const ClhNode;
        // SAFETY: `token` came from `lock`, so the node is alive; the
        // successor frees it only after seeing this store.
        unsafe { (*node).locked.store(false, Ordering::Release) };
    }

    fn name(&self) -> &'static str {
        "clh"
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // No contenders can exist during drop; the tail node is quiescent.
        let last = self.tail.load(Ordering::Relaxed);
        // SAFETY: exclusive access; `last` was allocated by new() or lock().
        unsafe { drop(Box::from_raw(last)) };
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn solo_lock_unlock_cycles() {
        let l = ClhLock::new();
        for _ in 0..100 {
            let t = l.lock();
            unsafe { l.unlock(t) };
        }
    }

    #[test]
    fn drop_without_use_does_not_leak_or_crash() {
        for _ in 0..10 {
            let _ = ClhLock::new();
        }
    }

    #[test]
    fn excludes_across_threads() {
        let l = Arc::new(ClhLock::new());
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let t = l.lock();
                        sum.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
