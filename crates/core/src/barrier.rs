//! The QSM barrier: reset-free, reusable, built from two monotone counters.

use crate::backoff::Backoff;
use crate::sync::{AtomicU64, Ordering};
use crate::CachePadded;

/// Result of one barrier crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    is_leader: bool,
    epoch: u64,
}

impl BarrierWaitResult {
    /// True for exactly one participant per episode (the last arriver).
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// The episode number just completed (1-based).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A reusable spinning barrier in the QSM style: the arrival counter and
/// the release epoch are both **monotone** grant words, so there are no
/// reset stores and therefore no reset races — the episode a given arrival
/// belongs to is simply `arrivals / n`.
///
/// Unlike `std::sync::Barrier` this never blocks in the OS; waiting is
/// busy-wait with escalating backoff (yields on an oversubscribed host).
#[derive(Debug)]
pub struct QsmBarrier {
    arrivals: CachePadded<AtomicU64>,
    epoch: CachePadded<AtomicU64>,
    n: u64,
}

impl QsmBarrier {
    /// Creates a barrier for `n` participants (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        QsmBarrier {
            arrivals: CachePadded::new(AtomicU64::new(0)),
            epoch: CachePadded::new(AtomicU64::new(0)),
            n: n as u64,
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n as usize
    }

    /// Arrives and waits for the episode to complete.
    pub fn wait(&self) -> BarrierWaitResult {
        let arrival = self.arrivals.fetch_add(1, Ordering::AcqRel);
        let episode = arrival / self.n; // 0-based episode this arrival joins
        let position = arrival % self.n;
        if position == self.n - 1 {
            // Last arriver: open the gate by advancing the epoch.
            self.epoch.fetch_add(1, Ordering::Release);
            return BarrierWaitResult {
                is_leader: true,
                epoch: episode + 1,
            };
        }
        let mut backoff = Backoff::new();
        while self.epoch.load(Ordering::Acquire) < episode + 1 {
            backoff.snooze();
        }
        BarrierWaitResult {
            is_leader: false,
            epoch: episode + 1,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_waits() {
        let b = QsmBarrier::new(1);
        for ep in 1..=5 {
            let r = b.wait();
            assert!(r.is_leader());
            assert_eq!(r.epoch(), ep);
        }
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        let n = 4;
        let episodes = 25;
        let b = Arc::new(QsmBarrier::new(n));
        let leaders = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..episodes {
                        if b.wait().is_leader() {
                            leaders.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            leaders.load(std::sync::atomic::Ordering::Relaxed),
            episodes as u64
        );
    }

    #[test]
    fn no_thread_passes_early() {
        // Each thread stamps before waiting; after the wait all stamps for
        // the episode must be present.
        let n = 4;
        let episodes = 10u64;
        let b = Arc::new(QsmBarrier::new(n));
        let stamps: Arc<Vec<std::sync::atomic::AtomicU64>> =
            Arc::new((0..n).map(|_| std::sync::atomic::AtomicU64::new(0)).collect());
        let threads: Vec<_> = (0..n)
            .map(|i| {
                let b = Arc::clone(&b);
                let stamps = Arc::clone(&stamps);
                std::thread::spawn(move || {
                    for ep in 1..=episodes {
                        stamps[i].store(ep, std::sync::atomic::Ordering::Release);
                        b.wait();
                        for s in stamps.iter() {
                            assert!(
                                s.load(std::sync::atomic::Ordering::Acquire) >= ep,
                                "released before all arrived"
                            );
                        }
                        b.wait();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        QsmBarrier::new(0);
    }
}
