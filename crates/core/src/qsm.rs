//! **QSM** — the Queueing Synchronization Mechanism, real-hardware edition.
//!
//! The lock half of the paper's unified mechanism. Differences from
//! [`crate::McsLock`], mirroring the `kernels` reconstruction:
//!
//! * the hand-off is an *increment* of the successor's **grant word**
//!   (an eventcount) rather than clearing a boolean — the operation shared
//!   with [`crate::EventCount::advance`] and [`crate::QsmBarrier`];
//! * a waiter is granted when its grant word moves past the value it
//!   recorded at enqueue, which is immune to missed-wakeup races by
//!   arithmetic: counts never return to a recorded value;
//! * acquire attempts a single-CAS fast path before enqueueing.
//!
//! In this per-acquisition-node edition each node's grant starts at zero
//! and receives exactly one increment; the monotone-count behaviour across
//! acquisitions is carried by the persistent-node variant in `kernels` and
//! by [`crate::QsmBarrier`]'s reset-free counters.

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::sync::{spin_hint, AtomicPtr, AtomicU64, Ordering};
use crate::CachePadded;

/// One queue node: explicit link + grant eventcount.
#[derive(Debug)]
#[repr(align(128))]
struct QsmNode {
    next: AtomicPtr<QsmNode>,
    grant: AtomicU64,
}

/// The QSM lock.
///
/// Tail states: null = free; otherwise the last enqueued node (which is the
/// holder when the queue has length one).
///
/// # Memory reclamation
///
/// Per-acquisition heap nodes, freed at the end of `unlock` under the same
/// argument as [`crate::McsLock`]: by that point no other thread can still
/// hold a reference to the node.
#[derive(Debug)]
pub struct Qsm {
    tail: CachePadded<AtomicPtr<QsmNode>>,
}

impl Qsm {
    /// Creates an unlocked mechanism.
    pub fn new() -> Self {
        Qsm {
            tail: CachePadded::new(AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Attempts the uncontended fast path once; on success the caller holds
    /// the lock and receives the token.
    pub fn try_lock(&self) -> Option<usize> {
        let node = Box::into_raw(Box::new(QsmNode {
            next: AtomicPtr::new(std::ptr::null_mut()),
            grant: AtomicU64::new(0),
        }));
        // AcqRel: Acquire for the lock edge, Release to publish the node's
        // initialization to the successor that will write `next` into it.
        match self.tail.compare_exchange(
            std::ptr::null_mut(),
            node,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(node as usize),
            Err(_) => {
                // SAFETY: the node was never published.
                unsafe { drop(Box::from_raw(node)) };
                None
            }
        }
    }
}

impl Default for Qsm {
    fn default() -> Self {
        Qsm::new()
    }
}

impl RawLock for Qsm {
    fn lock(&self) -> usize {
        let node = Box::into_raw(Box::new(QsmNode {
            next: AtomicPtr::new(std::ptr::null_mut()),
            grant: AtomicU64::new(0),
        }));
        // Fast path: free lock, single CAS.
        // AcqRel, not Acquire: the successful exchange also publishes the
        // node's initialization to whichever thread later links into it.
        if self
            .tail
            .compare_exchange(
                std::ptr::null_mut(),
                node,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            return node as usize;
        }
        // Slow path: enqueue behind the observed tail.
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if pred.is_null() {
            // The holder released between our CAS and swap.
            return node as usize;
        }
        // SAFETY: `pred` is alive until its owner's unlock, which waits for
        // this link before freeing.
        unsafe { (*pred).next.store(node, Ordering::Release) };
        // Await our grant: the recorded value is 0, so any increment ends
        // the wait — and can never be "un-signalled".
        // SAFETY: our own node.
        // Escalating wait: see TicketLock on FIFO convoying.
        let mut backoff = Backoff::new();
        unsafe {
            while (*node).grant.load(Ordering::Acquire) == 0 {
                backoff.snooze();
            }
        }
        node as usize
    }

    unsafe fn unlock(&self, token: usize) {
        let node = token as *mut QsmNode;
        // SAFETY: `token` came from `lock`; alive until the final free.
        unsafe {
            let mut succ = (*node).next.load(Ordering::Acquire);
            if succ.is_null() {
                // Fast path: close a queue of one with a single CAS.
                if self
                    .tail
                    .compare_exchange(
                        node,
                        std::ptr::null_mut(),
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    drop(Box::from_raw(node));
                    return;
                }
                loop {
                    succ = (*node).next.load(Ordering::Acquire);
                    if !succ.is_null() {
                        break;
                    }
                    spin_hint();
                }
            }
            // Hand off by advancing the successor's grant eventcount.
            (*succ).grant.fetch_add(1, Ordering::Release);
            drop(Box::from_raw(node));
        }
    }

    fn name(&self) -> &'static str {
        "qsm"
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn solo_lock_unlock_cycles() {
        let l = Qsm::new();
        for _ in 0..100 {
            let t = l.lock();
            unsafe { l.unlock(t) };
        }
    }

    #[test]
    fn try_lock_succeeds_only_when_free() {
        let l = Qsm::new();
        let t = l.try_lock().expect("free lock must be acquirable");
        assert!(l.try_lock().is_none());
        unsafe { l.unlock(t) };
        let t2 = l.try_lock().expect("released lock must be acquirable");
        unsafe { l.unlock(t2) };
    }

    #[test]
    fn tail_returns_to_null_when_idle() {
        let l = Qsm::new();
        let t = l.lock();
        unsafe { l.unlock(t) };
        assert!(l.tail.load(Ordering::Relaxed).is_null());
    }

    #[test]
    fn excludes_across_threads() {
        let l = Arc::new(Qsm::new());
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let t = l.lock();
                        sum.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 2000);
    }

    #[test]
    fn heavy_mixed_try_and_lock() {
        let l = Arc::new(Qsm::new());
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let token = if i % 2 == 0 {
                            l.lock()
                        } else {
                            match l.try_lock() {
                                Some(t) => t,
                                None => l.lock(),
                            }
                        };
                        sum.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(token) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 800);
    }
}
