//! Test-and-set locks: the plain baseline and the exponential-backoff
//! variant (Anderson's fix).

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::sync::{spin_hint, AtomicBool, Ordering};

/// Plain test-and-set spin lock: every probe is an atomic swap.
///
/// Kept for fidelity with the 1991 evaluation; do not use under real
/// contention — that collapse is exactly what fig1 reproduces.
#[derive(Debug)]
pub struct TasLock {
    locked: AtomicBool,
}

impl TasLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        TasLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Attempts one acquisition probe.
    pub fn try_lock(&self) -> bool {
        !self.locked.swap(true, Ordering::Acquire)
    }
}

impl Default for TasLock {
    fn default() -> Self {
        TasLock::new()
    }
}

impl RawLock for TasLock {
    fn lock(&self) -> usize {
        while self.locked.swap(true, Ordering::Acquire) {
            spin_hint();
        }
        0
    }

    unsafe fn unlock(&self, _token: usize) {
        self.locked.store(false, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "tas"
    }
}

/// Test-and-set with bounded exponential backoff between probes.
#[derive(Debug)]
pub struct TasBackoffLock {
    locked: AtomicBool,
}

impl TasBackoffLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        TasBackoffLock {
            locked: AtomicBool::new(false),
        }
    }
}

impl Default for TasBackoffLock {
    fn default() -> Self {
        TasBackoffLock::new()
    }
}

impl RawLock for TasBackoffLock {
    fn lock(&self) -> usize {
        let mut backoff = Backoff::new();
        while self.locked.swap(true, Ordering::Acquire) {
            backoff.snooze();
        }
        0
    }

    unsafe fn unlock(&self, _token: usize) {
        self.locked.store(false, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "tas-backoff"
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_lock_reflects_state() {
        let l = TasLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        unsafe { l.unlock(0) };
        assert!(l.try_lock());
    }

    #[test]
    fn tas_excludes_across_threads() {
        let l = Arc::new(TasLock::new());
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let t = l.lock();
                        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 600);
    }

    #[test]
    fn backoff_variant_locks_and_unlocks() {
        let l = TasBackoffLock::new();
        let t = l.lock();
        unsafe { l.unlock(t) };
        let t = l.lock();
        unsafe { l.unlock(t) };
    }
}
