//! Anderson's array-based queue lock for real hardware.

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use crate::CachePadded;

/// Anderson's array queue lock: each waiter spins on its own cache-line
/// padded slot; a release writes exactly one slot.
///
/// The slot array is sized at construction: **at most `capacity` threads
/// may contend simultaneously** (more would alias slots and corrupt the
/// queue). Each slot holds 1 ("has lock") or 0 ("must wait").
#[derive(Debug)]
pub struct AndersonLock {
    tail: CachePadded<AtomicUsize>,
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl AndersonLock {
    /// Creates a lock admitting up to `capacity` concurrent lockers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        let slots: Vec<CachePadded<AtomicU64>> = (0..capacity)
            .map(|i| CachePadded::new(AtomicU64::new(u64::from(i == 0))))
            .collect();
        AndersonLock {
            tail: CachePadded::new(AtomicUsize::new(0)),
            slots: slots.into_boxed_slice(),
        }
    }

    /// The maximum number of simultaneous contenders.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl RawLock for AndersonLock {
    fn lock(&self) -> usize {
        let slot = self.tail.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        // Escalating wait: see TicketLock on FIFO convoying.
        let mut backoff = Backoff::new();
        while self.slots[slot].load(Ordering::Acquire) == 0 {
            backoff.snooze();
        }
        // Reset our slot for its next user; we are its only writer now.
        self.slots[slot].store(0, Ordering::Relaxed);
        slot
    }

    unsafe fn unlock(&self, token: usize) {
        let next = (token + 1) % self.slots.len();
        self.slots[next].store(1, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "anderson"
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn slots_rotate() {
        let l = AndersonLock::new(3);
        for expected in [0usize, 1, 2, 0, 1] {
            let t = l.lock();
            assert_eq!(t, expected);
            unsafe { l.unlock(t) };
        }
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(AndersonLock::new(7).capacity(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        AndersonLock::new(0);
    }

    #[test]
    fn excludes_across_threads() {
        let l = Arc::new(AndersonLock::new(4));
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let t = l.lock();
                        sum.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
