//! Eventcounts and sequencers — the condition-synchronization service.

use crate::backoff::Backoff;
use crate::sync::{AtomicU64, Ordering};
use crate::CachePadded;

/// A monotone eventcount (Reed & Kanodia): producers `advance`, consumers
/// `await_at_least`. The count never decreases, so a waiter can never miss
/// a wakeup — the arithmetic property at the heart of QSM.
///
/// Waiting is busy-wait with escalating backoff, faithful to the 1991
/// design point (no OS blocking); pair with a scheduler-friendly workload
/// or see the simulator kernels for the watchpoint variant.
#[derive(Debug)]
pub struct EventCount {
    count: CachePadded<AtomicU64>,
}

impl EventCount {
    /// Creates a count at zero.
    pub fn new() -> Self {
        EventCount {
            count: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Current value.
    pub fn read(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Increments the count, releasing everything written before the
    /// advance to subsequent awaiters. Returns the new value.
    pub fn advance(&self) -> u64 {
        self.count.fetch_add(1, Ordering::Release) + 1
    }

    /// Blocks (busy-waits) until the count is at least `value`; returns the
    /// first satisfying value observed.
    pub fn await_at_least(&self, value: u64) -> u64 {
        let mut backoff = Backoff::new();
        loop {
            let cur = self.count.load(Ordering::Acquire);
            if cur >= value {
                return cur;
            }
            backoff.snooze();
        }
    }
}

impl Default for EventCount {
    fn default() -> Self {
        EventCount::new()
    }
}

/// A sequencer: hands out unique, ordered turn numbers, pairing with an
/// [`EventCount`] to serialize producers (ticket = `sequencer.ticket()`,
/// then `eventcount.await_at_least(ticket)` before acting).
#[derive(Debug)]
pub struct Sequencer {
    next: CachePadded<AtomicU64>,
}

impl Sequencer {
    /// Creates a sequencer at zero.
    pub fn new() -> Self {
        Sequencer {
            next: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Takes the next turn number (starting from 0).
    pub fn ticket(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Turn numbers handed out so far.
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for Sequencer {
    fn default() -> Self {
        Sequencer::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_and_read() {
        let ec = EventCount::new();
        assert_eq!(ec.read(), 0);
        assert_eq!(ec.advance(), 1);
        assert_eq!(ec.advance(), 2);
        assert_eq!(ec.read(), 2);
    }

    #[test]
    fn await_returns_immediately_when_past() {
        let ec = EventCount::new();
        ec.advance();
        ec.advance();
        assert_eq!(ec.await_at_least(1), 2);
    }

    #[test]
    fn await_blocks_until_advance() {
        let ec = Arc::new(EventCount::new());
        let signaller = {
            let ec = Arc::clone(&ec);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                ec.advance();
            })
        };
        let seen = ec.await_at_least(1);
        assert!(seen >= 1);
        signaller.join().unwrap();
    }

    #[test]
    fn ordering_transfers_data() {
        // The classic publish pattern: write data, advance; await, read data.
        let ec = Arc::new(EventCount::new());
        let data = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let producer = {
            let ec = Arc::clone(&ec);
            let data = Arc::clone(&data);
            std::thread::spawn(move || {
                data.store(99, std::sync::atomic::Ordering::Relaxed);
                ec.advance();
            })
        };
        ec.await_at_least(1);
        assert_eq!(data.load(std::sync::atomic::Ordering::Relaxed), 99);
        producer.join().unwrap();
    }

    #[test]
    fn sequencer_dense_under_contention() {
        let seq = Arc::new(Sequencer::new());
        let taken = Arc::new(std::sync::Mutex::new(Vec::new()));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let seq = Arc::clone(&seq);
                let taken = Arc::clone(&taken);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..100 {
                        mine.push(seq.ticket());
                    }
                    taken.lock().unwrap().extend(mine);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut all = taken.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<u64>>());
        assert_eq!(seq.issued(), 400);
    }
}
