//! A reader-writer lock in the QSM style.
//!
//! Reader-writer variants of queue locks are exactly contemporary with the
//! paper (Mellor-Crummey & Scott published theirs in 1991), so the
//! mechanism's extension to shared/exclusive mode belongs in the
//! reproduction. This implementation composes two of QSM's monotone
//! counters with a writer-presence bit:
//!
//! * `readers` — active-reader count (low bits) plus a writer-waiting flag
//!   (a high bit) packed in one word;
//! * writers serialize among themselves through the crate's [`Qsm`] queue
//!   lock, so writer hand-off inherits its FIFO order and local spinning.
//!
//! The lock is **write-preferring**: once a writer announces itself, new
//! readers hold back, bounding writer wait by the in-flight readers.

use crate::backoff::Backoff;
use crate::qsm::Qsm;
use crate::raw::RawLock;
use crate::sync::{AtomicU64, Ordering};
use crate::CachePadded;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

const WRITER_BIT: u64 = 1 << 62;

/// A write-preferring reader-writer lock over a value.
pub struct RwLock<T: ?Sized> {
    /// Active readers + writer-pending bit.
    readers: CachePadded<AtomicU64>,
    /// Serializes writers (and carries the FIFO hand-off).
    writer_queue: Qsm,
    data: UnsafeCell<T>,
}

// SAFETY: standard RwLock bounds — readers share &T (needs Sync), the value
// moves between threads under exclusive access (needs Send).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            readers: CachePadded::new(AtomicU64::new(0)),
            writer_queue: Qsm::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared (read) access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut backoff = Backoff::new();
        loop {
            let cur = self.readers.load(Ordering::Relaxed);
            if cur & WRITER_BIT == 0 {
                // No writer pending: try to join the readers.
                if self
                    .readers
                    .compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return RwLockReadGuard { lock: self };
                }
            }
            backoff.snooze();
        }
    }

    /// Acquires exclusive (write) access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        // FIFO among writers via the QSM queue.
        let token = self.writer_queue.lock();
        // Announce ourselves so new readers hold back...
        self.readers.fetch_or(WRITER_BIT, Ordering::Relaxed);
        // ...then drain the in-flight readers.
        let mut backoff = Backoff::new();
        while self.readers.load(Ordering::Acquire) & !WRITER_BIT != 0 {
            backoff.snooze();
        }
        RwLockWriteGuard { lock: self, token }
    }

    /// Mutable access without locking (`&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Snapshot of the active reader count (diagnostics only).
    pub fn reader_count(&self) -> u64 {
        self.readers.load(Ordering::Relaxed) & !WRITER_BIT
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("readers", &self.reader_count())
            .finish_non_exhaustive()
    }
}

/// Shared-access guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: reader count > 0 excludes writers.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.readers.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive-access guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    token: usize,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: we hold the writer queue and readers are drained.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive by construction.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // Readers may return as soon as the bit clears; the queue hand-off
        // releases the next writer.
        self.lock.readers.fetch_and(!WRITER_BIT, Ordering::Release);
        // SAFETY: token from the matching lock() in write().
        unsafe { self.lock.writer_queue.unlock(self.token) };
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_then_write_solo() {
        let l = RwLock::new(1);
        {
            let r = l.read();
            assert_eq!(*r, 1);
        }
        {
            let mut w = l.write();
            *w = 2;
        }
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn many_concurrent_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        let r3 = l.read();
        assert_eq!(l.reader_count(), 3);
        assert_eq!(*r1 + *r2 + *r3, 21);
    }

    #[test]
    fn writers_exclude_each_other_and_readers() {
        let l = Arc::new(RwLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if i % 2 == 0 {
                            let mut w = l.write();
                            // Non-atomic RMW under the write lock.
                            let v = *w;
                            *w = v + 1;
                        } else {
                            let r = l.read();
                            let _ = *r;
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }

    #[test]
    fn write_preference_blocks_new_readers() {
        // With a writer pending, a fresh reader must wait; exercised by
        // holding a reader, starting a writer, then racing a second reader.
        let l = Arc::new(RwLock::new(0));
        let r = l.read();
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                let mut w = l.write();
                *w = 1;
            })
        };
        // Give the writer time to set its pending bit.
        while l.readers.load(Ordering::Relaxed) & WRITER_BIT == 0 {
            std::thread::yield_now();
        }
        let late_reader = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || *l.read())
        };
        drop(r); // release the in-flight reader; writer proceeds
        writer.join().unwrap();
        assert_eq!(late_reader.join().unwrap(), 1, "late reader must see the write");
    }

    #[test]
    fn get_mut_without_locking() {
        let mut l = RwLock::new(5);
        *l.get_mut() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn debug_shows_reader_count() {
        let l = RwLock::new(());
        let _r = l.read();
        assert!(format!("{l:?}").contains("readers: 1"));
    }
}
