//! Test-and-test-and-set: spin on a cached read, swap only when free.

use crate::raw::RawLock;
use crate::sync::{spin_hint, AtomicBool, Ordering};

/// Test-and-test-and-set lock: waiting probes are plain loads that hit the
/// local cache; the atomic swap happens only when the lock reads free.
#[derive(Debug)]
pub struct TtasLock {
    locked: AtomicBool,
}

impl TtasLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        TtasLock {
            locked: AtomicBool::new(false),
        }
    }
}

impl Default for TtasLock {
    fn default() -> Self {
        TtasLock::new()
    }
}

impl RawLock for TtasLock {
    fn lock(&self) -> usize {
        loop {
            // Cached spin while held.
            while self.locked.load(Ordering::Relaxed) {
                spin_hint();
            }
            // Race for it; on failure, back to cached spinning.
            if !self.locked.swap(true, Ordering::Acquire) {
                return 0;
            }
        }
    }

    unsafe fn unlock(&self, _token: usize) {
        self.locked.store(false, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "ttas"
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_cycles() {
        let l = TtasLock::new();
        for _ in 0..10 {
            let t = l.lock();
            unsafe { l.unlock(t) };
        }
    }

    #[test]
    fn excludes_across_threads() {
        let l = Arc::new(TtasLock::new());
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let t = l.lock();
                        sum.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
