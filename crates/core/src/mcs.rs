//! The MCS explicit-queue lock for real hardware.

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::sync::{spin_hint, AtomicBool, AtomicPtr, Ordering};
use crate::CachePadded;

/// One queue node; the waiter spins on its **own** `locked` word.
#[derive(Debug)]
#[repr(align(128))]
struct McsNode {
    next: AtomicPtr<McsNode>,
    locked: AtomicBool,
}

/// MCS queue lock: explicit `next` links, local-only spinning, O(1)
/// hand-off traffic — the 1991 state of the art the paper's mechanism is
/// measured against.
///
/// # Memory reclamation
///
/// Nodes are heap-allocated per acquisition and freed at the end of
/// `unlock`, which is sound because by then no other thread can hold a
/// reference: a mid-enqueue successor has finished writing `next` (we
/// waited for it), and the tail no longer points at us (our CAS either
/// succeeded or the tail had already moved on).
#[derive(Debug)]
pub struct McsLock {
    tail: CachePadded<AtomicPtr<McsNode>>,
}

impl McsLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        McsLock {
            tail: CachePadded::new(AtomicPtr::new(std::ptr::null_mut())),
        }
    }
}

impl Default for McsLock {
    fn default() -> Self {
        McsLock::new()
    }
}

impl RawLock for McsLock {
    fn lock(&self) -> usize {
        let node = Box::into_raw(Box::new(McsNode {
            next: AtomicPtr::new(std::ptr::null_mut()),
            // Armed before publication, so a hand-off can never be missed.
            locked: AtomicBool::new(true),
        }));
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` is kept alive by its owner until it has seen
            // our link (its unlock waits for `next` to become non-null).
            unsafe { (*pred).next.store(node, Ordering::Release) };
            // SAFETY: our own node; freed only by our unlock.
            // Escalating wait: see TicketLock on FIFO convoying.
            let mut backoff = Backoff::new();
            unsafe {
                while (*node).locked.load(Ordering::Acquire) {
                    backoff.snooze();
                }
            }
        }
        node as usize
    }

    unsafe fn unlock(&self, token: usize) {
        let node = token as *mut McsNode;
        // SAFETY: `token` came from `lock`; the node is alive until the
        // `Box::from_raw` below.
        unsafe {
            let mut succ = (*node).next.load(Ordering::Acquire);
            if succ.is_null() {
                if self
                    .tail
                    .compare_exchange(
                        node,
                        std::ptr::null_mut(),
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    drop(Box::from_raw(node));
                    return;
                }
                // A successor is mid-enqueue; wait for its link.
                loop {
                    succ = (*node).next.load(Ordering::Acquire);
                    if !succ.is_null() {
                        break;
                    }
                    spin_hint();
                }
            }
            (*succ).locked.store(false, Ordering::Release);
            drop(Box::from_raw(node));
        }
    }

    fn name(&self) -> &'static str {
        "mcs"
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn solo_lock_unlock_cycles() {
        let l = McsLock::new();
        for _ in 0..100 {
            let t = l.lock();
            unsafe { l.unlock(t) };
        }
    }

    #[test]
    fn tail_returns_to_null_when_idle() {
        let l = McsLock::new();
        let t = l.lock();
        unsafe { l.unlock(t) };
        assert!(l.tail.load(Ordering::Relaxed).is_null());
    }

    #[test]
    fn excludes_across_threads() {
        let l = Arc::new(McsLock::new());
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let t = l.lock();
                        sum.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
