//! Ticket lock: FIFO service from a dispenser and a display.

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::sync::{AtomicU64, Ordering};
use crate::CachePadded;

/// Classic ticket lock. The dispenser and display are cache-line padded so
/// ticket draws do not disturb the spinners.
#[derive(Debug)]
pub struct TicketLock {
    next_ticket: CachePadded<AtomicU64>,
    now_serving: CachePadded<AtomicU64>,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        TicketLock {
            next_ticket: CachePadded::new(AtomicU64::new(0)),
            now_serving: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of lockers currently waiting or holding (a snapshot).
    pub fn queue_length(&self) -> u64 {
        self.next_ticket
            .load(Ordering::Relaxed)
            .saturating_sub(self.now_serving.load(Ordering::Relaxed))
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        TicketLock::new()
    }
}

impl RawLock for TicketLock {
    fn lock(&self) -> usize {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        // FIFO hand-off convoys badly on oversubscribed hosts if waiters
        // never yield (the next holder may be descheduled), so the wait
        // escalates from pause hints to yields.
        let mut backoff = Backoff::new();
        while self.now_serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        ticket as usize
    }

    unsafe fn unlock(&self, token: usize) {
        // Only the holder writes the display; a plain release store suffices.
        self.now_serving.store(token as u64 + 1, Ordering::Release);
    }

    fn name(&self) -> &'static str {
        "ticket"
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tickets_are_sequential() {
        let l = TicketLock::new();
        for expected in 0..5 {
            let t = l.lock();
            assert_eq!(t, expected);
            unsafe { l.unlock(t) };
        }
    }

    #[test]
    fn queue_length_snapshot() {
        let l = TicketLock::new();
        assert_eq!(l.queue_length(), 0);
        let t = l.lock();
        assert_eq!(l.queue_length(), 1);
        unsafe { l.unlock(t) };
        assert_eq!(l.queue_length(), 0);
    }

    #[test]
    fn excludes_across_threads() {
        let l = Arc::new(TicketLock::new());
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        let t = l.lock();
                        sum.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock(t) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 1000);
    }
}
