//! Bounded exponential backoff for contended retry loops.

use crate::sync::{spin_hint, yield_now};

/// Exponential backoff helper: each [`Backoff::snooze`] doubles the number
/// of pause hints up to a cap, then starts yielding the OS thread — the
/// right behaviour both on a loaded multicore and on a single-core host
/// where pure spinning would starve the lock holder.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Fresh backoff state (used per acquisition attempt).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Waits one backoff quantum and escalates the next one.
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                spin_hint();
            }
        } else {
            yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once backoff has escalated past pure spinning; callers that
    /// must not block can use this to switch strategies.
    pub fn is_completed(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_yield() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn step_saturates() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.snooze();
        }
        assert_eq!(b.step, Backoff::YIELD_LIMIT + 1);
    }
}
