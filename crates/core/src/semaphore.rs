//! A FIFO counting semaphore from a sequencer and an eventcount — the
//! textbook Reed–Kanodia construction, and the cleanest demonstration that
//! QSM's two counter primitives subsume general resource counting.
//!
//! `acquire` takes turn number `t` from the sequencer and awaits
//! `releases + permits > t`; `release` advances the eventcount. Because
//! turn numbers are handed out in order and each waiter waits on a distinct
//! threshold, service is strictly FIFO and no wakeup can be lost.

use crate::event::{EventCount, Sequencer};

/// A FIFO counting semaphore (busy-waiting, like every primitive here).
#[derive(Debug)]
pub struct Semaphore {
    turns: Sequencer,
    releases: EventCount,
    permits: u64,
}

/// RAII permit; released on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    sem: &'a Semaphore,
    /// The turn number that claimed this permit (diagnostics).
    pub turn: u64,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits (≥ 1).
    pub fn new(permits: usize) -> Self {
        assert!(permits >= 1, "semaphore needs at least one permit");
        Semaphore {
            turns: Sequencer::new(),
            releases: EventCount::new(),
            permits: permits as u64,
        }
    }

    /// Number of permits the semaphore was created with.
    pub fn capacity(&self) -> u64 {
        self.permits
    }

    /// Acquires a permit, waiting FIFO behind earlier arrivals.
    pub fn acquire(&self) -> Permit<'_> {
        let turn = self.turns.ticket();
        if turn >= self.permits {
            // Permit `turn` frees up after `turn - permits + 1` releases.
            self.releases.await_at_least(turn - self.permits + 1);
        }
        Permit { sem: self, turn }
    }

    /// Current number of threads that could acquire without waiting
    /// (snapshot; racy by nature).
    pub fn available(&self) -> u64 {
        let taken = self.turns.issued();
        let freed = self.releases.read();
        (self.permits + freed).saturating_sub(taken)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.sem.releases.advance();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn capacity_and_availability() {
        let s = Semaphore::new(3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.available(), 3);
        let p1 = s.acquire();
        let p2 = s.acquire();
        assert_eq!(s.available(), 1);
        drop(p1);
        assert_eq!(s.available(), 2);
        drop(p2);
        assert_eq!(s.available(), 3);
    }

    #[test]
    fn turns_are_fifo() {
        let s = Semaphore::new(2);
        let a = s.acquire();
        let b = s.acquire();
        assert_eq!(a.turn, 0);
        assert_eq!(b.turn, 1);
    }

    #[test]
    #[should_panic(expected = "at least one permit")]
    fn zero_permits_rejected() {
        Semaphore::new(0);
    }

    #[test]
    fn bounds_concurrency() {
        // N threads through a 2-permit semaphore: the in-section count must
        // never exceed 2, and everyone gets through.
        let sem = Arc::new(Semaphore::new(2));
        let inside = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..5)
            .map(|_| {
                let sem = Arc::clone(&sem);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let permit = sem.acquire();
                        let now = inside.fetch_add(1, Ordering::AcqRel) + 1;
                        peak.fetch_max(now, Ordering::AcqRel);
                        assert!(now <= 2, "semaphore overadmitted: {now}");
                        inside.fetch_sub(1, Ordering::AcqRel);
                        drop(permit);
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 500);
        assert!(peak.load(Ordering::Relaxed) <= 2);
    }
}
