//! Loom model-checking of the real-hardware primitives.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p qsm --release --test loom
//! ```
//!
//! Every test explores the C11-memory-model interleavings of a small
//! scenario under loom with a preemption bound of 2 (loom's recommended
//! setting — almost all ordering bugs need ≤ 2 preemptions). Under a
//! normal build this file compiles to nothing.

#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicU64, Ordering};
use loom::thread;
use qsm::raw::RawLock;
use qsm::{ClhLock, EventCount, McsLock, Qsm, QsmBarrier, TasLock, TicketLock, TtasLock};
use std::sync::Arc;

fn model<F: Fn() + Sync + Send + 'static>(f: F) {
    let mut builder = loom::model::Builder::new();
    builder.preemption_bound = Some(2);
    builder.check(f);
}

/// Two threads increment a plain (non-atomic) cell under the lock; loom
/// proves no interleaving or reordering loses an update.
fn check_lock_excludes<L, N>(new_lock: N)
where
    L: RawLock + 'static,
    N: Fn() -> L + Sync + Send + Copy + 'static,
{
    model(move || {
        let lock = Arc::new(new_lock());
        let cell = Arc::new(UnsafeCell::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let token = lock.lock();
                    cell.with_mut(|p| unsafe { *p += 1 });
                    unsafe { lock.unlock(token) };
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = cell.with(|p| unsafe { *p });
        assert_eq!(total, 2, "lost update under {}", lock.name());
    });
}

#[test]
fn loom_qsm_lock_excludes() {
    check_lock_excludes(Qsm::new);
}

#[test]
fn loom_mcs_lock_excludes() {
    check_lock_excludes(McsLock::new);
}

#[test]
fn loom_clh_lock_excludes() {
    check_lock_excludes(ClhLock::new);
}

#[test]
fn loom_ticket_lock_excludes() {
    check_lock_excludes(TicketLock::new);
}

// TasLock / TtasLock are deliberately absent: their acquire loops retry an
// atomic swap unboundedly, which loom cannot bound ("model exceeded maximum
// number of branches" — the documented spin-lock limitation). Their single
// swap/store protocol is covered by `loom_tas_handoff_publishes` below,
// which checks the one interesting property (the Release/Acquire edge of a
// hand-off) on a bounded scenario.

/// One bounded hand-off through TasLock: T1 acquires only after observing
/// the release, so data written in T0's critical section must be visible.
#[test]
fn loom_tas_handoff_publishes() {
    model(|| {
        let lock = Arc::new(TasLock::new());
        let data = Arc::new(AtomicU64::new(0));
        let t0 = lock.lock();
        data.store(7, Ordering::Relaxed);
        unsafe { lock.unlock(t0) };
        let other = {
            let lock = Arc::clone(&lock);
            let data = Arc::clone(&data);
            thread::spawn(move || {
                if let Some(t1) = bounded_tas_try(&lock) {
                    assert_eq!(data.load(Ordering::Relaxed), 7);
                    unsafe { lock.unlock(t1) };
                }
            })
        };
        other.join().unwrap();
    });
}

/// A bounded acquire for loom: at most a few probes instead of an
/// unbounded spin.
fn bounded_tas_try(lock: &TasLock) -> Option<usize> {
    for _ in 0..3 {
        if lock.try_lock() {
            return Some(0);
        }
        loom::thread::yield_now();
    }
    None
}

/// Same bounded-probe check for TtasLock's swap path.
#[test]
fn loom_ttas_handoff_publishes() {
    model(|| {
        let lock = Arc::new(TtasLock::new());
        let data = Arc::new(AtomicU64::new(0));
        let t0 = lock.lock(); // uncontended: no spin
        data.store(9, Ordering::Relaxed);
        unsafe { lock.unlock(t0) };
        let lock2 = Arc::clone(&lock);
        let data2 = Arc::clone(&data);
        let other = thread::spawn(move || {
            let t1 = lock2.lock(); // holder already released: bounded
            assert_eq!(data2.load(Ordering::Relaxed), 9);
            unsafe { lock2.unlock(t1) };
        });
        other.join().unwrap();
    });
}

/// Eventcount publication: data written before `advance` must be visible
/// after `await_at_least` — the Release/Acquire pairing under test.
#[test]
fn loom_eventcount_publishes() {
    model(|| {
        let ec = Arc::new(EventCount::new());
        let data = Arc::new(AtomicU64::new(0));
        let producer = {
            let ec = Arc::clone(&ec);
            let data = Arc::clone(&data);
            thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                ec.advance();
            })
        };
        ec.await_at_least(1);
        assert_eq!(data.load(Ordering::Relaxed), 42, "publication not visible");
        producer.join().unwrap();
    });
}

/// Barrier: neither thread may pass before both have stamped.
#[test]
fn loom_barrier_is_safe() {
    model(|| {
        let barrier = Arc::new(QsmBarrier::new(2));
        let stamps = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
        let other = {
            let barrier = Arc::clone(&barrier);
            let stamps = Arc::clone(&stamps);
            thread::spawn(move || {
                stamps.1.store(1, Ordering::Release);
                barrier.wait();
                assert_eq!(stamps.0.load(Ordering::Acquire), 1);
            })
        };
        stamps.0.store(1, Ordering::Release);
        barrier.wait();
        assert_eq!(stamps.1.load(Ordering::Acquire), 1);
        other.join().unwrap();
    });
}

/// RwLock: a reader and a writer over the same cell — the writer's drain
/// and the reader's join race in every explorable order, and the value read
/// must be consistent (0 before the write or 1 after, never torn state).
#[test]
fn loom_rwlock_reader_writer() {
    model(|| {
        let lock = Arc::new(qsm::RwLock::new(0u64));
        let writer = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                *lock.write() = 1;
            })
        };
        let seen = *lock.read();
        assert!(seen == 0 || seen == 1, "torn read: {seen}");
        writer.join().unwrap();
        assert_eq!(*lock.read(), 1);
    });
}

/// Semaphore with one permit degenerates to a FIFO mutex: two threads
/// each take a permit and bump a plain cell; no update may be lost.
#[test]
fn loom_semaphore_excludes() {
    model(|| {
        let sem = Arc::new(qsm::Semaphore::new(1));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let sem = Arc::clone(&sem);
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let permit = sem.acquire();
                    cell.with_mut(|p| unsafe { *p += 1 });
                    drop(permit);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.with(|p| unsafe { *p }), 2);
    });
}

/// QSM try_lock never admits two holders.
#[test]
fn loom_qsm_try_lock_excludes() {
    model(|| {
        let lock = Arc::new(Qsm::new());
        let holders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let holders = Arc::clone(&holders);
                thread::spawn(move || {
                    if let Some(token) = lock.try_lock() {
                        let inside = holders.fetch_add(1, Ordering::AcqRel);
                        assert_eq!(inside, 0, "two holders via try_lock");
                        holders.fetch_sub(1, Ordering::AcqRel);
                        unsafe { lock.unlock(token) };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}
