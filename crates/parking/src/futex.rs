//! A word-sized futex over a bucketed parking lot.
//!
//! The primitive is the Linux futex restricted to what the blocking QSM
//! variants need: [`futex_wait`] blocks iff an `AtomicU64` still holds an
//! expected value, [`futex_wake`] releases up to `n` waiters of that word
//! in FIFO order. There is no kernel to lean on here, so the wait queue is
//! a process-global **parking lot**: a fixed array of buckets, each a
//! mutex-protected FIFO of parked threads, indexed by a hash of the word's
//! address. Any `AtomicU64` in the process is a futex — no per-word queue
//! allocation, no registration.
//!
//! The lost-wakeup argument is the whole point of the design. The waiter
//! re-checks the word *after* taking the bucket lock and enqueues while
//! still holding it; the waker changes the word first and then takes the
//! same bucket lock to wake. Whichever side wins the bucket lock, the
//! other observes its effect: a waiter that enqueued first is found in the
//! queue, a waiter that arrives second sees the changed word and never
//! parks. `thread::park` itself may return spuriously, which is fine —
//! [`futex_wait`] consumes parks in a loop gated on its own wake flag, and
//! callers loop on their real condition as futex discipline requires.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, Thread};

/// Number of parking-lot buckets. Collisions are correctness-neutral (the
/// queue entries carry the full address) and only contend the bucket lock,
/// so a modest fixed count beats sizing to the thread population.
const BUCKETS: usize = 64;

/// One parked thread: the word it parked on, how to wake it, and the flag
/// that distinguishes a real wake from a spurious `park` return.
struct Waiter {
    addr: usize,
    thread: Thread,
    woken: AtomicBool,
}

struct Bucket {
    queue: Mutex<VecDeque<Arc<Waiter>>>,
}

fn lot() -> &'static [Bucket; BUCKETS] {
    static LOT: OnceLock<[Bucket; BUCKETS]> = OnceLock::new();
    LOT.get_or_init(|| {
        std::array::from_fn(|_| Bucket {
            queue: Mutex::new(VecDeque::new()),
        })
    })
}

/// Fibonacci-hashes a word address into its bucket.
fn bucket_for(addr: usize) -> &'static Bucket {
    let hash = (addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    &lot()[(hash >> (64 - 7)) as usize % BUCKETS]
}

/// The parking-lot identity of a futex word: its address. Exposed so a
/// waker whose last reference to the word may die under it (a queue-lock
/// releaser whose successor frees its node on wake) can capture the
/// identity while the word is still alive and wake by address afterwards.
pub fn addr_of(word: &AtomicU64) -> usize {
    word as *const AtomicU64 as usize
}

/// Blocks the calling thread iff `word` still holds `expected`, with the
/// comparison and the enqueue performed atomically with respect to
/// [`futex_wake`] on the same word. Returns `true` if the thread parked
/// (and was later woken), `false` if the word had already changed.
///
/// A `true` return means *some* [`futex_wake`] covered this thread — not
/// that the word changed. Callers must re-check their condition in a loop.
pub fn futex_wait(word: &AtomicU64, expected: u64) -> bool {
    let addr = addr_of(word);
    let bucket = bucket_for(addr);
    let waiter = {
        let mut queue = bucket.queue.lock().unwrap();
        // The decisive re-check: under the bucket lock, a waker that
        // changed the word has either not yet locked this bucket (we see
        // the new value here) or already drained it (we see the new value
        // here too — the change precedes the wake).
        if word.load(Ordering::SeqCst) != expected {
            return false;
        }
        let waiter = Arc::new(Waiter {
            addr,
            thread: thread::current(),
            woken: AtomicBool::new(false),
        });
        queue.push_back(Arc::clone(&waiter));
        waiter
    };
    crate::trace_hooks::record(trace::EventKind::FutexPark { addr });
    while !waiter.woken.load(Ordering::Acquire) {
        thread::park();
    }
    crate::trace_hooks::record(trace::EventKind::FutexResume {
        addr,
        waker: trace::NO_PID,
    });
    true
}

/// Wakes up to `n` threads parked on `word`, oldest first, returning how
/// many were woken. Callers that may race the death of the word itself
/// should capture [`addr_of`] early and use [`futex_wake_addr`].
pub fn futex_wake(word: &AtomicU64, n: usize) -> usize {
    futex_wake_addr(addr_of(word), n)
}

/// [`futex_wake`] by pre-captured address. Never dereferences the word, so
/// it remains sound after the word's storage has been freed; the worst a
/// recycled address can cause is a spurious wake of a new word's waiter,
/// which futex discipline already tolerates.
pub fn futex_wake_addr(addr: usize, n: usize) -> usize {
    let bucket = bucket_for(addr);
    let mut woken = Vec::new();
    {
        let mut queue = bucket.queue.lock().unwrap();
        let mut i = 0;
        while i < queue.len() && woken.len() < n {
            if queue[i].addr == addr {
                woken.push(queue.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
    }
    // Unpark outside the bucket lock: an instantly-rescheduled wakee that
    // immediately parks again must not find the lock still held.
    for waiter in &woken {
        crate::trace_hooks::record(trace::EventKind::FutexWake {
            addr,
            wakee: trace::NO_PID,
        });
        waiter.woken.store(true, Ordering::Release);
        waiter.thread.unpark();
    }
    woken.len()
}

/// How many threads are currently parked on `word` — a test observability
/// hook, racy by nature.
pub fn parked_count(word: &AtomicU64) -> usize {
    let addr = addr_of(word);
    let queue = bucket_for(addr).queue.lock().unwrap();
    queue.iter().filter(|w| w.addr == addr).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn wait_on_changed_word_returns_without_parking() {
        let word = AtomicU64::new(7);
        assert!(!futex_wait(&word, 3));
        assert_eq!(parked_count(&word), 0);
    }

    #[test]
    fn wake_with_no_waiters_is_zero() {
        let word = AtomicU64::new(0);
        assert_eq!(futex_wake(&word, usize::MAX), 0);
    }

    #[test]
    fn park_and_wake_round_trip() {
        let word = Arc::new(AtomicU64::new(0));
        let handle = {
            let word = Arc::clone(&word);
            thread::spawn(move || {
                while word.load(Ordering::SeqCst) == 0 {
                    futex_wait(&word, 0);
                }
                word.load(Ordering::SeqCst)
            })
        };
        while parked_count(&word) == 0 {
            thread::yield_now();
        }
        // Change first, wake second — the discipline every user follows.
        word.store(42, Ordering::SeqCst);
        assert_eq!(futex_wake(&word, 1), 1);
        assert_eq!(handle.join().unwrap(), 42);
    }

    /// `futex_wake(word, n)` with m > n parked threads wakes exactly n; a
    /// later wake collects the stragglers.
    #[test]
    fn wake_n_of_m_wakes_exactly_n() {
        let word = Arc::new(AtomicU64::new(0));
        let released = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..5)
            .map(|_| {
                let word = Arc::clone(&word);
                let released = Arc::clone(&released);
                thread::spawn(move || {
                    while word.load(Ordering::SeqCst) == 0 {
                        futex_wait(&word, 0);
                    }
                    released.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        while parked_count(&word) < 5 {
            thread::yield_now();
        }
        // Wake 2 without changing the word: exactly those 2 re-check,
        // still see 0, and park again.
        assert_eq!(futex_wake(&word, 2), 2);
        while parked_count(&word) < 5 {
            thread::yield_now();
        }
        assert_eq!(released.load(Ordering::SeqCst), 0);
        word.store(1, Ordering::SeqCst);
        assert_eq!(futex_wake(&word, 3), 3);
        // The remaining 2 are still parked until woken.
        thread::sleep(Duration::from_millis(10));
        assert_eq!(parked_count(&word), 2);
        assert_eq!(futex_wake(&word, usize::MAX), 2);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), 5);
    }

    /// Two words that collide into the same bucket must not wake each
    /// other's waiters: the queue entries carry the full address.
    #[test]
    fn colliding_words_are_independent() {
        // Same bucket by construction: all our buckets come from one
        // array, so just find two addresses that hash together.
        let words: Vec<Arc<AtomicU64>> =
            (0..256).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let target = bucket_for(addr_of(&words[0])) as *const Bucket;
        let other = words[1..]
            .iter()
            .find(|w| std::ptr::eq(bucket_for(addr_of(w)) as *const Bucket, target))
            .expect("256 words must produce a bucket collision")
            .clone();
        let word = Arc::clone(&words[0]);
        let handle = {
            let word = Arc::clone(&word);
            thread::spawn(move || {
                while word.load(Ordering::SeqCst) == 0 {
                    futex_wait(&word, 0);
                }
            })
        };
        while parked_count(&word) == 0 {
            thread::yield_now();
        }
        // Waking the colliding word must not disturb ours.
        assert_eq!(futex_wake(&other, usize::MAX), 0);
        assert_eq!(parked_count(&word), 1);
        word.store(1, Ordering::SeqCst);
        assert_eq!(futex_wake(&word, 1), 1);
        handle.join().unwrap();
    }
}
