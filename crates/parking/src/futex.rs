//! A word-sized futex over a bucketed parking lot.
//!
//! The primitive is the Linux futex restricted to what the blocking QSM
//! variants need: [`futex_wait`] blocks iff an `AtomicU64` still holds an
//! expected value, [`futex_wake`] releases up to `n` waiters of that word
//! in FIFO order. There is no kernel to lean on here, so the wait queue is
//! a process-global **parking lot**: an array of buckets, each a
//! mutex-protected FIFO of parked threads, indexed by a hash of the word's
//! address. Any `AtomicU64` in the process is a futex — no per-word queue
//! allocation, no registration.
//!
//! The lot is a first-class type, [`ParkingLot`]: the `service` crate's
//! sharded per-key lock table embeds its own lot sized to the expected
//! waiter population, while the module-level functions serve the blocking
//! primitives from one process-global instance. Buckets are cache-line
//! padded (a parked waiter's bucket lock must not false-share with its
//! neighbours') and the bucket count is a power of two so indexing is a
//! mask of the full 64-bit [`mix64`] hash — every input bit diffuses into
//! the bucket index, unlike the previous fixed `hash >> (64 - 7)` scheme
//! that consulted only the top 7 bits of a single multiply.
//!
//! The lost-wakeup argument is the whole point of the design. The waiter
//! re-checks the word *after* taking the bucket lock and enqueues while
//! still holding it; the waker changes the word first and then takes the
//! same bucket lock to wake. Whichever side wins the bucket lock, the
//! other observes its effect: a waiter that enqueued first is found in the
//! queue, a waiter that arrives second sees the changed word and never
//! parks. `thread::park` itself may return spuriously, which is fine —
//! [`futex_wait`] consumes parks in a loop gated on its own wake flag, and
//! callers loop on their real condition as futex discipline requires.
//!
//! Waiters come in two kinds sharing the same bucket queues: blocking
//! *threads* ([`ParkingLot::wait`]) and async *wakers*
//! ([`ParkingLot::register`] → [`WaitEntry`]), so one futex word can hold
//! parked threads and parked futures simultaneously and a wake releases
//! them in one FIFO order. A registered waker entry supports
//! *cancellation* ([`ParkingLot::cancel`]) for futures dropped mid-wait;
//! the return value tells the caller whether a wake had already been
//! consumed by the dying future and must be handed onward.
//!
//! Every lot additionally feeds the **machine-wide futex accounting**
//! ([`totals`]): how many waiters actually parked, how many wake
//! dequeues were issued, and how many parked waiters resumed. At any
//! quiescent point `parks == wakes == resumes` — each park is ended by
//! exactly one dequeue, and each dequeue resumes exactly one parked
//! waiter — which the stress suites assert at teardown. Cancellation
//! preserves the invariant by construction: withdrawing a still-queued
//! entry self-accounts its wake and resume, and a cancel that lost the
//! race to a real wake accounts only the resume (the wake was already
//! counted by the waker). Each lot additionally keeps its own *exact*
//! ledger ([`ParkingLot::totals`]) — process-global totals are a union
//! over every lot and test in the process, so only the per-lot view
//! supports equality assertions — and timestamps every park so the
//! service telemetry's stall watchdog can ask for the longest-parked
//! waiter ([`ParkingLot::oldest_parked_age`]).

use qsm::CachePadded;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::task::Waker;
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// Number of buckets in the process-global parking lot. Collisions are
/// correctness-neutral (the queue entries carry the full address) and only
/// contend the bucket lock, so a modest fixed count beats sizing to the
/// thread population; embedders with unusual waiter populations build
/// their own [`ParkingLot`].
const GLOBAL_BUCKETS: usize = 64;

/// Finalizing 64-bit mix (the SplitMix64 / Stafford "variant 13"
/// finalizer): full avalanche, so every input bit flips each output bit
/// with probability ~1/2. Shared by the parking lot's bucket index and the
/// `service` crate's key-to-shard mapping — both mask the *low* bits of
/// the result, which a bare multiplicative hash leaves poorly mixed.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Machine-wide futex accounting: parks, wake dequeues, and resumes across
/// every [`ParkingLot`] in the process (global and embedded alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FutexTotals {
    /// Threads that actually parked (enqueued and blocked).
    pub parks: u64,
    /// Waiters dequeued by `futex_wake` calls.
    pub wakes: u64,
    /// Parked threads that returned from their park.
    pub resumes: u64,
}

impl FutexTotals {
    /// `self - earlier`, for delta accounting around a test phase.
    pub fn since(&self, earlier: &FutexTotals) -> FutexTotals {
        FutexTotals {
            parks: self.parks - earlier.parks,
            wakes: self.wakes - earlier.wakes,
            resumes: self.resumes - earlier.resumes,
        }
    }

    /// True when every park has been matched by a wake dequeue and a
    /// resume — the quiescent-state invariant.
    pub fn balanced(&self) -> bool {
        self.parks == self.wakes && self.wakes == self.resumes
    }
}

static TOTAL_PARKS: AtomicU64 = AtomicU64::new(0);
static TOTAL_WAKES: AtomicU64 = AtomicU64::new(0);
static TOTAL_RESUMES: AtomicU64 = AtomicU64::new(0);

/// Reads the machine-wide futex accounting. Only meaningful at quiescent
/// points (no thread mid-park); the counters themselves are exact.
pub fn totals() -> FutexTotals {
    FutexTotals {
        parks: TOTAL_PARKS.load(Ordering::SeqCst),
        wakes: TOTAL_WAKES.load(Ordering::SeqCst),
        resumes: TOTAL_RESUMES.load(Ordering::SeqCst),
    }
}

/// Per-lot park/wake/resume counters. Each [`Waiter`] captures an `Arc` to
/// its lot's block at enqueue time, so the wake and resume sides — which
/// only hold the waiter, not the lot — can still account against the lot
/// that parked them. The machine-wide statics above remain the union of
/// every lot; these give each lot an *exact* local ledger, which is what
/// lets tests assert `parks == wakes == resumes` without `>=` slack from
/// unrelated lots in the same process.
#[derive(Default)]
struct LotCounters {
    parks: AtomicU64,
    wakes: AtomicU64,
    resumes: AtomicU64,
}

impl LotCounters {
    fn read(&self) -> FutexTotals {
        FutexTotals {
            parks: self.parks.load(Ordering::SeqCst),
            wakes: self.wakes.load(Ordering::SeqCst),
            resumes: self.resumes.load(Ordering::SeqCst),
        }
    }
}

/// A snapshot of one currently parked waiter, for watchdog dumps: the word
/// it is parked on, how long it has been parked, and whether it is a
/// blocking thread or an async waker entry. Racy by nature — the waiter
/// may resume the instant after the scan.
#[derive(Debug, Clone, Copy)]
pub struct ParkedWaiter {
    /// Address of the futex word the waiter is parked on.
    pub addr: usize,
    /// Time since the waiter enqueued (its park began).
    pub age: Duration,
    /// True for an async waker entry, false for a blocking thread.
    pub is_task: bool,
}

/// How a dequeued waiter is resumed: a blocking thread is `unpark`ed, an
/// async task's registered [`Waker`] is invoked so its executor re-polls
/// the future. Both kinds share the same bucket queues — a single futex
/// word can hold parked threads and parked wakers simultaneously, and FIFO
/// order is preserved across the mix.
enum WaitMode {
    Thread(Thread),
    /// The waker lives behind a mutex so the future can swap in a fresh
    /// waker on every poll (executors may migrate tasks between wakers)
    /// without racing the wake path, which `take`s it exactly once.
    Task(Mutex<Option<Waker>>),
}

/// One parked waiter: the word it parked on, how to wake it, the flag
/// that distinguishes a real wake from a spurious `park` return (or, for
/// tasks, from a poll that raced the wake), when it parked (feeds the
/// stall watchdog's oldest-parked-age scan), and the counter block of the
/// lot that parked it (so wake/resume accounting stays lot-local even
/// when only the waiter is in hand).
struct Waiter {
    addr: usize,
    how: WaitMode,
    woken: AtomicBool,
    since: Instant,
    counters: Arc<LotCounters>,
}

struct Bucket {
    queue: Mutex<VecDeque<Arc<Waiter>>>,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            queue: Mutex::new(VecDeque::new()),
        }
    }
}

/// A bucketed FIFO wait table: the user-space analogue of the kernel's
/// futex hash. Size it to the expected *waiter* population, not the word
/// population — words cost nothing until somebody parks on one, which is
/// what lets a table of millions of logical lock words ride on a lot of a
/// few hundred buckets.
pub struct ParkingLot {
    buckets: Box<[CachePadded<Bucket>]>,
    mask: u64,
    counters: Arc<LotCounters>,
}

impl ParkingLot {
    /// A lot with at least `buckets` buckets, rounded up to the next power
    /// of two so indexing is a mask of the mixed hash.
    ///
    /// # Panics
    ///
    /// If `buckets` is zero.
    pub fn with_buckets(buckets: usize) -> Self {
        assert!(buckets > 0, "a parking lot needs at least one bucket");
        let n = buckets.next_power_of_two();
        ParkingLot {
            buckets: (0..n).map(|_| CachePadded::new(Bucket::new())).collect(),
            mask: n as u64 - 1,
            counters: Arc::new(LotCounters::default()),
        }
    }

    /// Number of buckets (always a power of two).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// This lot's own park/wake/resume ledger — exact and local, unlike
    /// the machine-wide [`totals`] which sums every lot in the process.
    /// Pair with [`FutexTotals::since`] for delta accounting around a
    /// test phase, and [`FutexTotals::balanced`] at quiescent points.
    pub fn totals(&self) -> FutexTotals {
        self.counters.read()
    }

    /// Age of the longest-parked waiter currently in the lot, or `None`
    /// when nothing is parked. The stall watchdog's primary signal: a
    /// waiter whose age keeps growing past the threshold is stuck, because
    /// every legitimate park is bounded by its waker's progress. Scans
    /// every bucket under its lock; cost is proportional to parked
    /// waiters, so call it at watchdog cadence, not per operation.
    pub fn oldest_parked_age(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut oldest: Option<Duration> = None;
        for bucket in self.buckets.iter() {
            let queue = bucket.queue.lock().unwrap();
            for waiter in queue.iter() {
                let age = now.duration_since(waiter.since);
                oldest = Some(oldest.map_or(age, |o| o.max(age)));
            }
        }
        oldest
    }

    /// Snapshot of every currently parked waiter (address, age, kind) for
    /// watchdog dumps. Racy by nature; see [`ParkedWaiter`].
    pub fn parked_waiters(&self) -> Vec<ParkedWaiter> {
        let now = Instant::now();
        let mut out = Vec::new();
        for bucket in self.buckets.iter() {
            let queue = bucket.queue.lock().unwrap();
            for waiter in queue.iter() {
                out.push(ParkedWaiter {
                    addr: waiter.addr,
                    age: now.duration_since(waiter.since),
                    is_task: matches!(waiter.how, WaitMode::Task(_)),
                });
            }
        }
        out
    }

    fn bucket_for(&self, addr: usize) -> &Bucket {
        &self.buckets[(mix64(addr as u64) & self.mask) as usize]
    }

    /// Blocks the calling thread iff `word` still holds `expected`, with
    /// the comparison and the enqueue performed atomically with respect to
    /// wakes of the same word through this lot. Returns `true` if the
    /// thread parked (and was later woken), `false` if the word had
    /// already changed.
    ///
    /// A `true` return means *some* wake covered this thread — not that
    /// the word changed. Callers must re-check their condition in a loop.
    pub fn wait(&self, word: &AtomicU64, expected: u64) -> bool {
        let addr = addr_of(word);
        let bucket = self.bucket_for(addr);
        let waiter = {
            let mut queue = bucket.queue.lock().unwrap();
            // The decisive re-check: under the bucket lock, a waker that
            // changed the word has either not yet locked this bucket (we
            // see the new value here) or already drained it (we see the
            // new value here too — the change precedes the wake).
            if word.load(Ordering::SeqCst) != expected {
                return false;
            }
            let waiter = Arc::new(Waiter {
                addr,
                how: WaitMode::Thread(thread::current()),
                woken: AtomicBool::new(false),
                since: Instant::now(),
                counters: Arc::clone(&self.counters),
            });
            queue.push_back(Arc::clone(&waiter));
            waiter
        };
        TOTAL_PARKS.fetch_add(1, Ordering::SeqCst);
        self.counters.parks.fetch_add(1, Ordering::SeqCst);
        crate::trace_hooks::record(trace::EventKind::FutexPark { addr });
        while !waiter.woken.load(Ordering::Acquire) {
            thread::park();
        }
        TOTAL_RESUMES.fetch_add(1, Ordering::SeqCst);
        self.counters.resumes.fetch_add(1, Ordering::SeqCst);
        crate::trace_hooks::record(trace::EventKind::FutexResume {
            addr,
            waker: trace::NO_PID,
        });
        true
    }

    /// Wakes up to `n` threads parked on the word at `addr`, oldest first,
    /// returning how many were woken. Never dereferences the address, so
    /// it remains sound after the word's storage has been freed; the worst
    /// a recycled address can cause is a spurious wake of a new word's
    /// waiter, which futex discipline already tolerates.
    pub fn wake_addr(&self, addr: usize, n: usize) -> usize {
        let bucket = self.bucket_for(addr);
        let mut woken = Vec::new();
        {
            let mut queue = bucket.queue.lock().unwrap();
            Self::dequeue_for(&mut queue, addr, n, &mut woken);
        }
        self.unpark_all(&woken);
        woken.len()
    }

    /// [`ParkingLot::wake_addr`] over a batch of addresses: wakes **every**
    /// waiter parked on each distinct address, with each bucket's lock
    /// taken **once** even when several addresses collide into it. This is
    /// the release path of the `service` semaphore, which publishes a
    /// batch of grants and then issues all the wakes in one sweep; returns
    /// the total woken.
    ///
    /// Waking *all* waiters per address — rather than one per occurrence —
    /// is what makes the batch safe for words that several logical waiters
    /// share (the semaphore's waiting-array slots): a wake-one could
    /// dequeue a sharer whose own condition is still unmet, which re-parks
    /// and swallows the wake while the waiter it was meant for sleeps
    /// forever. Over-woken sharers re-check their condition and park
    /// again, so the cost of sharing is a spurious wake, never a lost one.
    pub fn wake_batch(&self, addrs: &[usize]) -> usize {
        // Group addresses by bucket index without allocating a map: sort a
        // small index vector by bucket, then drain runs. Sorting makes
        // duplicate addresses adjacent, so dedup leaves one drain per
        // distinct address.
        let mut order: Vec<(u64, usize)> = addrs
            .iter()
            .map(|&a| (mix64(a as u64) & self.mask, a))
            .collect();
        order.sort_unstable();
        order.dedup();
        let mut woken = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let bucket_idx = order[i].0;
            let bucket = &self.buckets[bucket_idx as usize];
            let mut queue = bucket.queue.lock().unwrap();
            while i < order.len() && order[i].0 == bucket_idx {
                Self::dequeue_for(&mut queue, order[i].1, usize::MAX, &mut woken);
                i += 1;
            }
        }
        self.unpark_all(&woken);
        woken.len()
    }

    /// Dequeues up to `n` waiters of `addr` (oldest first) into `woken`,
    /// under the caller-held bucket lock.
    fn dequeue_for(
        queue: &mut VecDeque<Arc<Waiter>>,
        addr: usize,
        n: usize,
        woken: &mut Vec<Arc<Waiter>>,
    ) {
        let mut taken = 0;
        let mut i = 0;
        while i < queue.len() && taken < n {
            if queue[i].addr == addr {
                woken.push(queue.remove(i).expect("index in bounds"));
                taken += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Unparks dequeued waiters outside the bucket lock: an
    /// instantly-rescheduled wakee that immediately parks again must not
    /// find the lock still held.
    fn unpark_all(&self, woken: &[Arc<Waiter>]) {
        for waiter in woken {
            TOTAL_WAKES.fetch_add(1, Ordering::SeqCst);
            waiter.counters.wakes.fetch_add(1, Ordering::SeqCst);
            crate::trace_hooks::record(trace::EventKind::FutexWake {
                addr: waiter.addr,
                wakee: trace::NO_PID,
            });
            waiter.woken.store(true, Ordering::Release);
            match &waiter.how {
                WaitMode::Thread(thread) => thread.unpark(),
                WaitMode::Task(waker) => {
                    // `take` so a late second wake of the same entry (a
                    // recycled address, say) is a no-op rather than a
                    // double re-poll request.
                    if let Some(w) = waker.lock().unwrap().take() {
                        w.wake();
                    }
                }
            }
        }
    }

    /// The async analogue of [`ParkingLot::wait`]: enqueues a *waker*
    /// entry iff `word` still holds `expected`, with the same re-check
    /// under the bucket lock, and returns immediately. `Some(entry)` means
    /// the entry is parked (one park is accounted, exactly as if a thread
    /// had blocked) and the waker will be invoked by a future wake of this
    /// word; `None` means the word had already changed and nothing was
    /// enqueued.
    ///
    /// Every returned entry must eventually be consumed by exactly one of
    /// [`WaitEntry::resume`] (after the wake) or [`ParkingLot::cancel`]
    /// (the future was dropped) — that is what keeps the machine-wide
    /// `parks == wakes == resumes` invariant intact across cancellation.
    pub fn register(&self, word: &AtomicU64, expected: u64, waker: &Waker) -> Option<WaitEntry> {
        let addr = addr_of(word);
        let bucket = self.bucket_for(addr);
        let waiter = {
            let mut queue = bucket.queue.lock().unwrap();
            if word.load(Ordering::SeqCst) != expected {
                return None;
            }
            let waiter = Arc::new(Waiter {
                addr,
                how: WaitMode::Task(Mutex::new(Some(waker.clone()))),
                woken: AtomicBool::new(false),
                since: Instant::now(),
                counters: Arc::clone(&self.counters),
            });
            queue.push_back(Arc::clone(&waiter));
            waiter
        };
        TOTAL_PARKS.fetch_add(1, Ordering::SeqCst);
        self.counters.parks.fetch_add(1, Ordering::SeqCst);
        crate::trace_hooks::record(trace::EventKind::FutexPark { addr });
        Some(WaitEntry { waiter })
    }

    /// Withdraws a registered waker entry because its future is being
    /// dropped. Returns `true` if the entry was still queued (no wake had
    /// dequeued it): the park is closed out here with a self-accounted
    /// wake + resume, and no wake was consumed. Returns `false` if a wake
    /// had already dequeued the entry: the wake landed on a waiter that
    /// will never poll again, so the caller **owns that grant** and must
    /// hand it to the next waiter (re-wake the word, release the permit, …)
    /// or it is lost; only the resume is accounted here.
    pub fn cancel(&self, entry: WaitEntry) -> bool {
        let addr = entry.waiter.addr;
        let removed = {
            let mut queue = self.bucket_for(addr).queue.lock().unwrap();
            let before = queue.len();
            queue.retain(|w| !Arc::ptr_eq(w, &entry.waiter));
            queue.len() < before
        };
        if removed {
            TOTAL_WAKES.fetch_add(1, Ordering::SeqCst);
            entry.waiter.counters.wakes.fetch_add(1, Ordering::SeqCst);
            crate::trace_hooks::record(trace::EventKind::FutexWake {
                addr,
                wakee: trace::NO_PID,
            });
        }
        TOTAL_RESUMES.fetch_add(1, Ordering::SeqCst);
        entry.waiter.counters.resumes.fetch_add(1, Ordering::SeqCst);
        crate::trace_hooks::record(trace::EventKind::FutexResume {
            addr,
            waker: trace::NO_PID,
        });
        removed
    }

    /// How many threads are currently parked on `word` — a test
    /// observability hook, racy by nature.
    pub fn parked_count(&self, word: &AtomicU64) -> usize {
        let addr = addr_of(word);
        let queue = self.bucket_for(addr).queue.lock().unwrap();
        queue.iter().filter(|w| w.addr == addr).count()
    }
}

/// A parked *waker* entry returned by [`ParkingLot::register`]: the async
/// side of a futex wait. The owning future polls [`WaitEntry::woken`],
/// refreshes its waker with [`WaitEntry::update_waker`] on every pending
/// poll, and finishes the wait with [`WaitEntry::resume`] once woken — or
/// withdraws it with [`ParkingLot::cancel`] when dropped mid-wait.
///
/// The entry does **not** keep the futex word alive; the owning future
/// must (and in `service` does, via its pinned `SlotRef`).
#[must_use = "a registered wait entry must be resumed or cancelled, or the \
              futex accounting leaks a park"]
pub struct WaitEntry {
    waiter: Arc<Waiter>,
}

impl WaitEntry {
    /// Whether a wake has dequeued this entry. Once true the entry will
    /// never be woken again and must be consumed with
    /// [`WaitEntry::resume`].
    pub fn woken(&self) -> bool {
        self.waiter.woken.load(Ordering::Acquire)
    }

    /// Installs the waker from the *current* poll, replacing the one
    /// captured at registration. Closes the poll-vs-wake race: if a wake
    /// slipped in between the caller's `woken()` check and the swap, the
    /// stored waker may already have been taken and invoked — so after
    /// swapping, a set `woken` flag self-wakes through the fresh waker to
    /// guarantee the task is re-polled.
    pub fn update_waker(&self, waker: &Waker) {
        let WaitMode::Task(slot) = &self.waiter.how else {
            unreachable!("WaitEntry wraps task-mode waiters only");
        };
        *slot.lock().unwrap() = Some(waker.clone());
        if self.woken() {
            if let Some(w) = slot.lock().unwrap().take() {
                w.wake();
            }
        }
    }

    /// Consumes a woken entry, accounting the resume — the moment the
    /// async wait "returns" the way a parked thread returns from
    /// [`ParkingLot::wait`]. Call only after [`WaitEntry::woken`] is true.
    pub fn resume(self) {
        debug_assert!(self.woken(), "resume() before the entry was woken");
        TOTAL_RESUMES.fetch_add(1, Ordering::SeqCst);
        self.waiter.counters.resumes.fetch_add(1, Ordering::SeqCst);
        crate::trace_hooks::record(trace::EventKind::FutexResume {
            addr: self.waiter.addr,
            waker: trace::NO_PID,
        });
    }
}

fn lot() -> &'static ParkingLot {
    static LOT: OnceLock<ParkingLot> = OnceLock::new();
    LOT.get_or_init(|| ParkingLot::with_buckets(GLOBAL_BUCKETS))
}

/// The parking-lot identity of a futex word: its address. Exposed so a
/// waker whose last reference to the word may die under it (a queue-lock
/// releaser whose successor frees its node on wake) can capture the
/// identity while the word is still alive and wake by address afterwards.
pub fn addr_of(word: &AtomicU64) -> usize {
    word as *const AtomicU64 as usize
}

/// Blocks the calling thread iff `word` still holds `expected`, via the
/// process-global lot; see [`ParkingLot::wait`].
pub fn futex_wait(word: &AtomicU64, expected: u64) -> bool {
    lot().wait(word, expected)
}

/// Wakes up to `n` threads parked on `word` through the process-global
/// lot, oldest first, returning how many were woken. Callers that may race
/// the death of the word itself should capture [`addr_of`] early and use
/// [`futex_wake_addr`].
pub fn futex_wake(word: &AtomicU64, n: usize) -> usize {
    lot().wake_addr(addr_of(word), n)
}

/// [`futex_wake`] by pre-captured address; see [`ParkingLot::wake_addr`].
pub fn futex_wake_addr(addr: usize, n: usize) -> usize {
    lot().wake_addr(addr, n)
}

/// Batched wake through the process-global lot — every waiter parked on
/// each distinct address, each bucket lock taken once; see
/// [`ParkingLot::wake_batch`].
pub fn futex_wake_batch(addrs: &[usize]) -> usize {
    lot().wake_batch(addrs)
}

/// Registers an async waker entry on `word` in the process-global lot;
/// see [`ParkingLot::register`].
pub fn futex_register(word: &AtomicU64, expected: u64, waker: &Waker) -> Option<WaitEntry> {
    lot().register(word, expected, waker)
}

/// Withdraws a waker entry registered through [`futex_register`]; see
/// [`ParkingLot::cancel`] for the grant-ownership contract of the return
/// value.
pub fn futex_cancel(entry: WaitEntry) -> bool {
    lot().cancel(entry)
}

/// How many threads are currently parked on `word` in the process-global
/// lot — a test observability hook, racy by nature.
pub fn parked_count(word: &AtomicU64) -> usize {
    lot().parked_count(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn wait_on_changed_word_returns_without_parking() {
        let word = AtomicU64::new(7);
        assert!(!futex_wait(&word, 3));
        assert_eq!(parked_count(&word), 0);
    }

    #[test]
    fn wake_with_no_waiters_is_zero() {
        let word = AtomicU64::new(0);
        assert_eq!(futex_wake(&word, usize::MAX), 0);
    }

    #[test]
    fn park_and_wake_round_trip() {
        let word = Arc::new(AtomicU64::new(0));
        let handle = {
            let word = Arc::clone(&word);
            thread::spawn(move || {
                while word.load(Ordering::SeqCst) == 0 {
                    futex_wait(&word, 0);
                }
                word.load(Ordering::SeqCst)
            })
        };
        while parked_count(&word) == 0 {
            thread::yield_now();
        }
        // Change first, wake second — the discipline every user follows.
        word.store(42, Ordering::SeqCst);
        assert_eq!(futex_wake(&word, 1), 1);
        assert_eq!(handle.join().unwrap(), 42);
    }

    /// `futex_wake(word, n)` with m > n parked threads wakes exactly n; a
    /// later wake collects the stragglers.
    #[test]
    fn wake_n_of_m_wakes_exactly_n() {
        let word = Arc::new(AtomicU64::new(0));
        let released = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..5)
            .map(|_| {
                let word = Arc::clone(&word);
                let released = Arc::clone(&released);
                thread::spawn(move || {
                    while word.load(Ordering::SeqCst) == 0 {
                        futex_wait(&word, 0);
                    }
                    released.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        while parked_count(&word) < 5 {
            thread::yield_now();
        }
        // Wake 2 without changing the word: exactly those 2 re-check,
        // still see 0, and park again.
        assert_eq!(futex_wake(&word, 2), 2);
        while parked_count(&word) < 5 {
            thread::yield_now();
        }
        assert_eq!(released.load(Ordering::SeqCst), 0);
        word.store(1, Ordering::SeqCst);
        assert_eq!(futex_wake(&word, 3), 3);
        // The remaining 2 are still parked until woken.
        thread::sleep(Duration::from_millis(10));
        assert_eq!(parked_count(&word), 2);
        assert_eq!(futex_wake(&word, usize::MAX), 2);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), 5);
    }

    /// Two words that collide into the same bucket must not wake each
    /// other's waiters: the queue entries carry the full address.
    #[test]
    fn colliding_words_are_independent() {
        // A one-bucket lot makes every pair of words a collision.
        let lot = Arc::new(ParkingLot::with_buckets(1));
        let a = Arc::new(AtomicU64::new(0));
        let b = AtomicU64::new(0);
        let handle = {
            let a = Arc::clone(&a);
            let lot = Arc::clone(&lot);
            thread::spawn(move || {
                while a.load(Ordering::SeqCst) == 0 {
                    lot.wait(&a, 0);
                }
            })
        };
        while lot.parked_count(&a) == 0 {
            thread::yield_now();
        }
        // Waking the colliding word must not disturb ours.
        assert_eq!(lot.wake_addr(addr_of(&b), usize::MAX), 0);
        assert_eq!(lot.parked_count(&a), 1);
        a.store(1, Ordering::SeqCst);
        assert_eq!(lot.wake_addr(addr_of(&a), 1), 1);
        handle.join().unwrap();
    }

    /// The bucket hash must spread realistic address patterns — slab
    /// entries at a fixed stride, exactly what a weak hash aliases — close
    /// to uniformly across buckets. The old `hash >> (64 - 7)` scheme
    /// fails this: 64-byte-strided addresses landed on a handful of the
    /// 64 buckets.
    #[test]
    fn bucket_hash_spreads_strided_addresses() {
        for stride in [8usize, 64, 128] {
            let buckets = 64;
            let n = 64 * buckets;
            let mut counts = vec![0usize; buckets];
            let base = 0x7f00_dead_0000usize;
            for i in 0..n {
                let addr = base + i * stride;
                counts[(mix64(addr as u64) & (buckets as u64 - 1)) as usize] += 1;
            }
            let used = counts.iter().filter(|&&c| c > 0).count();
            let max = counts.iter().copied().max().unwrap();
            assert_eq!(
                used, buckets,
                "stride {stride}: {used}/{buckets} buckets used"
            );
            // Uniform would be 64 per bucket; allow 3x skew.
            assert!(
                max <= 3 * (n / buckets),
                "stride {stride}: hottest bucket holds {max} of {n}"
            );
        }
    }

    /// mix64 avalanches: flipping one input bit flips about half the
    /// output bits, and in particular changes the *low* bits a masked
    /// bucket index consumes.
    #[test]
    fn mix64_avalanches_into_low_bits() {
        let mut total_flips = 0u32;
        let samples = 64 * 16;
        for i in 0..16u64 {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9abc_def0;
            for bit in 0..64 {
                let d = mix64(x) ^ mix64(x ^ (1 << bit));
                total_flips += d.count_ones();
                assert!(d & 0xFFFF != 0, "bit {bit} left the low 16 bits unchanged");
            }
        }
        let mean_flips = total_flips as f64 / samples as f64;
        assert!(
            (24.0..40.0).contains(&mean_flips),
            "mean output flips per input bit: {mean_flips}"
        );
    }

    #[test]
    fn lot_sizes_round_up_to_powers_of_two() {
        for (ask, got) in [(1, 1), (2, 2), (3, 4), (64, 64), (1000, 1024)] {
            assert_eq!(ParkingLot::with_buckets(ask).buckets(), got);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_bucket_lot_rejected() {
        ParkingLot::with_buckets(0);
    }

    /// A test waker that just records it fired.
    struct FlagWaker(AtomicBool);

    impl std::task::Wake for FlagWaker {
        fn wake(self: Arc<Self>) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    fn flag_waker() -> (Arc<FlagWaker>, std::task::Waker) {
        let flag = Arc::new(FlagWaker(AtomicBool::new(false)));
        let waker = std::task::Waker::from(Arc::clone(&flag));
        (flag, waker)
    }

    #[test]
    fn register_on_changed_word_returns_none() {
        let word = AtomicU64::new(7);
        let (_, waker) = flag_waker();
        assert!(futex_register(&word, 3, &waker).is_none());
        assert_eq!(parked_count(&word), 0);
    }

    #[test]
    fn register_wake_resume_round_trip_fires_waker() {
        // A private lot gives an exact ledger: no other test in this
        // process can skew it, so the balance assertions are equalities.
        let lot = ParkingLot::with_buckets(1);
        let word = AtomicU64::new(0);
        let (flag, waker) = flag_waker();
        let before = lot.totals();
        let entry = lot.register(&word, 0, &waker).expect("word unchanged");
        assert!(!entry.woken());
        assert!(!flag.0.load(Ordering::SeqCst));
        word.store(1, Ordering::SeqCst);
        assert_eq!(lot.wake_addr(addr_of(&word), 1), 1);
        assert!(entry.woken());
        assert!(flag.0.load(Ordering::SeqCst), "waker not invoked");
        entry.resume();
        let delta = lot.totals().since(&before);
        assert_eq!(
            delta,
            FutexTotals {
                parks: 1,
                wakes: 1,
                resumes: 1
            }
        );
        assert!(delta.balanced());
    }

    #[test]
    fn cancel_before_wake_removes_entry_and_balances() {
        let word = AtomicU64::new(0);
        let (flag, waker) = flag_waker();
        let entry = futex_register(&word, 0, &waker).expect("word unchanged");
        assert_eq!(parked_count(&word), 1);
        assert!(futex_cancel(entry), "no wake raced; entry was still queued");
        assert_eq!(parked_count(&word), 0);
        // Nobody left to wake, and the waker never fired.
        assert_eq!(futex_wake(&word, usize::MAX), 0);
        assert!(!flag.0.load(Ordering::SeqCst));
    }

    #[test]
    fn cancel_after_wake_reports_consumed_grant() {
        let word = AtomicU64::new(0);
        let (_, waker) = flag_waker();
        let entry = futex_register(&word, 0, &waker).expect("word unchanged");
        word.store(1, Ordering::SeqCst);
        assert_eq!(futex_wake(&word, 1), 1);
        // The wake already dequeued the entry: cancel must say so, so the
        // caller knows it owns (and must forward) the grant.
        assert!(!futex_cancel(entry));
    }

    #[test]
    fn update_waker_after_missed_wake_self_wakes() {
        let word = AtomicU64::new(0);
        let (stale, stale_waker) = flag_waker();
        let entry = futex_register(&word, 0, &stale_waker).expect("word unchanged");
        word.store(1, Ordering::SeqCst);
        assert_eq!(futex_wake(&word, 1), 1);
        assert!(stale.0.load(Ordering::SeqCst));
        // A poll racing that wake installs a fresh waker; the set woken
        // flag must punch through to it or the task never re-polls.
        let (fresh, fresh_waker) = flag_waker();
        entry.update_waker(&fresh_waker);
        assert!(fresh.0.load(Ordering::SeqCst), "missed-wake re-poll lost");
        entry.resume();
    }

    /// Threads and wakers parked on the same word are one FIFO: a wake of
    /// one releases the oldest regardless of kind.
    #[test]
    fn threads_and_wakers_share_one_fifo() {
        let lot = Arc::new(ParkingLot::with_buckets(1));
        let word = Arc::new(AtomicU64::new(0));
        let handle = {
            let (lot, word) = (Arc::clone(&lot), Arc::clone(&word));
            thread::spawn(move || {
                while word.load(Ordering::SeqCst) == 0 {
                    lot.wait(&word, 0);
                }
            })
        };
        while lot.parked_count(&word) == 0 {
            thread::yield_now();
        }
        let (flag, waker) = flag_waker();
        let entry = lot.register(&word, 0, &waker).expect("word unchanged");
        assert_eq!(lot.parked_count(&word), 2);
        word.store(1, Ordering::SeqCst);
        // Oldest first: the thread parked before the waker registered.
        assert_eq!(lot.wake_addr(addr_of(&word), 1), 1);
        handle.join().unwrap();
        assert!(!entry.woken(), "wake-one released the waker out of order");
        assert!(!flag.0.load(Ordering::SeqCst));
        assert_eq!(lot.wake_addr(addr_of(&word), 1), 1);
        assert!(entry.woken());
        entry.resume();
    }

    /// Batched wake releases every waiter parked on each distinct
    /// address — including two waiters sharing one word, the case whose
    /// swallowed wake-one motivated the wake-all semantics — with
    /// duplicate addresses collapsed and colliding addresses drained
    /// under one bucket lock.
    #[test]
    fn wake_batch_wakes_all_waiters_per_address() {
        let lot = Arc::new(ParkingLot::with_buckets(2));
        let words: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut handles = Vec::new();
        for w in &words {
            for _ in 0..2 {
                let w = Arc::clone(w);
                let lot = Arc::clone(&lot);
                handles.push(thread::spawn(move || {
                    while w.load(Ordering::SeqCst) == 0 {
                        lot.wait(&w, 0);
                    }
                }));
            }
        }
        for w in &words {
            while lot.parked_count(w) < 2 {
                thread::yield_now();
            }
        }
        let before = lot.totals();
        for w in &words {
            w.store(1, Ordering::SeqCst);
        }
        // A duplicate occurrence must not double-drain: the batch wakes
        // per distinct address, and each address releases both sharers.
        let addrs = vec![addr_of(&words[0]), addr_of(&words[1]), addr_of(&words[0])];
        assert_eq!(lot.wake_batch(&addrs), 4);
        for h in handles {
            h.join().unwrap();
        }
        // The lot-local ledger is exact: nothing else in this process
        // parks through this private lot, so the four wakes and resumes
        // are equalities, not lower bounds. (The parks predate `before`,
        // so the delta carries only the wake phase; the absolute totals
        // balance at quiesce.)
        let delta = lot.totals().since(&before);
        assert_eq!(delta.wakes, 4, "{delta:?}");
        assert_eq!(delta.resumes, 4, "{delta:?}");
        assert_eq!(
            lot.totals(),
            FutexTotals {
                parks: 4,
                wakes: 4,
                resumes: 4
            }
        );
        assert!(lot.totals().balanced());
    }

    /// Per-lot ledgers are independent: traffic on one lot leaves another
    /// lot's counters untouched, while the machine-wide totals see both.
    #[test]
    fn lot_totals_are_local_and_exact() {
        let busy = Arc::new(ParkingLot::with_buckets(2));
        let idle = ParkingLot::with_buckets(2);
        let word = Arc::new(AtomicU64::new(0));
        let global_before = totals();
        let handle = {
            let (busy, word) = (Arc::clone(&busy), Arc::clone(&word));
            thread::spawn(move || {
                while word.load(Ordering::SeqCst) == 0 {
                    busy.wait(&word, 0);
                }
            })
        };
        while busy.parked_count(&word) == 0 {
            thread::yield_now();
        }
        word.store(1, Ordering::SeqCst);
        assert_eq!(busy.wake_addr(addr_of(&word), 1), 1);
        handle.join().unwrap();
        let delta = busy.totals();
        assert_eq!(
            delta,
            FutexTotals {
                parks: 1,
                wakes: 1,
                resumes: 1
            }
        );
        assert_eq!(idle.totals(), FutexTotals::default());
        // The machine-wide statics absorbed this lot's traffic too (other
        // tests may add more concurrently, so lower-bound the global side).
        let global = totals().since(&global_before);
        assert!(global.parks >= 1 && global.wakes >= 1 && global.resumes >= 1);
    }

    /// `oldest_parked_age` reports the longest-parked waiter while one is
    /// parked, and `None` once the lot drains.
    #[test]
    fn oldest_parked_age_tracks_park_lifetime() {
        let lot = Arc::new(ParkingLot::with_buckets(1));
        assert!(lot.oldest_parked_age().is_none());
        let word = Arc::new(AtomicU64::new(0));
        let handle = {
            let (lot, word) = (Arc::clone(&lot), Arc::clone(&word));
            thread::spawn(move || {
                while word.load(Ordering::SeqCst) == 0 {
                    lot.wait(&word, 0);
                }
            })
        };
        while lot.parked_count(&word) == 0 {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(5));
        let age = lot.oldest_parked_age().expect("one waiter is parked");
        assert!(age >= Duration::from_millis(5), "{age:?}");
        let parked = lot.parked_waiters();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].addr, addr_of(&word));
        assert!(!parked[0].is_task);
        word.store(1, Ordering::SeqCst);
        lot.wake_addr(addr_of(&word), 1);
        handle.join().unwrap();
        assert!(lot.oldest_parked_age().is_none());
        assert!(lot.totals().balanced());
    }
}
