//! Real-hardware trace hooks for the parking runtime.
//!
//! The simulator's tracer rides on the `memsim::Machine` it is attached
//! to; real threads have no machine, so the parking runtime records into
//! one process-global [`trace::Tracer`]. It is env-gated: nothing is
//! recorded until [`init_from_env`] (honouring `SYNCMECH_TRACE`) or
//! [`install`] (explicit, for tests and embedders) has provided a tracer,
//! and the per-event cost with tracing off is a single atomic load.
//!
//! Real hardware cannot name the thread a `futex_wake` will reach the way
//! the simulator can, so wake/resume events carry [`trace::NO_PID`] for
//! their counterpart, and timestamps are microseconds of monotonic time
//! since the first recorded event rather than simulated cycles. Threads
//! map onto the tracer's [`TRACE_SLOTS`] processor slots round-robin.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use trace::{EventKind, Tracer};

/// Number of per-thread recording slots in the global tracer. Threads
/// beyond this share slots (the ring discipline tolerates it only per
/// slot, so heavy oversubscription coarsens attribution, never safety:
/// slot-sharing threads interleave through the same counters and, in full
/// mode, may interleave ring writes — acceptable for wall-clock traces,
/// which are already nondeterministic).
pub const TRACE_SLOTS: usize = 64;

static TRACER: OnceLock<Option<Arc<Tracer>>> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Initializes the global tracer from `SYNCMECH_TRACE` (no-op if a tracer
/// was already installed). Returns whether tracing is active afterwards.
///
/// # Panics
///
/// On an unrecognized `SYNCMECH_TRACE` value (strict, like every
/// `SYNCMECH_*` knob).
pub fn init_from_env() -> bool {
    TRACER.get_or_init(|| Tracer::from_env(TRACE_SLOTS)).is_some()
}

/// Installs an explicit tracer (sized for at least [`TRACE_SLOTS`]
/// processors). Returns `false` if one was already installed or env-initialized.
pub fn install(tracer: Arc<Tracer>) -> bool {
    let mut fresh = false;
    TRACER.get_or_init(|| {
        fresh = true;
        Some(tracer)
    });
    fresh
}

/// The active global tracer, if tracing has been initialized and is on.
pub fn tracer() -> Option<&'static Arc<Tracer>> {
    TRACER.get().and_then(|t| t.as_ref())
}

/// This thread's recording slot in `0..TRACE_SLOTS`.
pub fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % TRACE_SLOTS;
    }
    SLOT.with(|s| *s)
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Records one event for the calling thread; no-op when tracing is off.
pub(crate) fn record(kind: EventKind) {
    if let Some(tr) = tracer() {
        tr.record(thread_slot(), now_us(), kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::futex::{futex_wait, futex_wake};
    use std::sync::atomic::AtomicU64;
    use trace::{EventClass, TraceMode};

    #[test]
    fn futex_park_and_wake_are_recorded() {
        // First-come-first-served with any env init; in this test binary
        // nothing else initializes the global, so install succeeds.
        let tracer = Arc::new(Tracer::new(TraceMode::Full, TRACE_SLOTS, 1024));
        assert!(install(Arc::clone(&tracer)), "global tracer already taken");

        static WORD: AtomicU64 = AtomicU64::new(0);
        let waiter = std::thread::spawn(|| {
            while WORD.load(Ordering::SeqCst) == 0 {
                futex_wait(&WORD, 0);
            }
        });
        while crate::futex::parked_count(&WORD) == 0 {
            std::thread::yield_now();
        }
        WORD.store(1, Ordering::SeqCst);
        futex_wake(&WORD, usize::MAX);
        waiter.join().unwrap();

        assert_eq!(tracer.class_total(EventClass::FutexPark), 1);
        assert_eq!(tracer.class_total(EventClass::FutexResume), 1);
        assert!(tracer.class_total(EventClass::FutexWake) >= 1);
        // Wall-clock events still export as a valid Chrome trace.
        let json = trace::chrome::export_tracer(&tracer, "parking");
        trace::chrome::validate(&json).expect("real-hw trace validates");
    }
}
