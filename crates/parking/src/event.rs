//! A blocking Reed–Kanodia eventcount.
//!
//! `advance` bumps a monotone (wrapping) counter and wakes every thread
//! parked on it; `await_at_least` blocks until the count has reached a
//! target, probing for an adaptive budget before parking on the count word
//! with [`crate::futex::futex_wait`]. Because the futex compares against
//! the exact count the waiter last observed, an `advance` that lands
//! between the waiter's read and its park defeats the park — the classic
//! missed-advance window is closed by the compare-and-block, not by luck.
//!
//! Comparisons use wraparound-safe sequence arithmetic (`count - target`
//! as a signed distance), so the eventcount keeps working after the
//! counter passes `u64::MAX` — the same fix the simulated
//! `kernels::EventCount` carries, verified here on real threads.

use crate::futex;
use crate::AdaptiveSpin;
use qsm::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone eventcount whose waiters park.
pub struct EventcountBlocking {
    count: CachePadded<AtomicU64>,
    spin: AdaptiveSpin,
}

impl Default for EventcountBlocking {
    fn default() -> Self {
        EventcountBlocking::new()
    }
}

impl EventcountBlocking {
    /// A fresh eventcount at 0 with the adaptive spin-then-park wait.
    pub fn new() -> Self {
        EventcountBlocking::with_initial(0)
    }

    /// An eventcount starting at `initial` — primarily for wraparound
    /// tests, which start just below `u64::MAX`.
    pub fn with_initial(initial: u64) -> Self {
        EventcountBlocking {
            count: CachePadded::new(AtomicU64::new(initial)),
            spin: AdaptiveSpin::new(64, true),
        }
    }

    /// The current count.
    pub fn read(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Advances the count by one (wrapping) and wakes all parked waiters,
    /// returning the value after the advance. Waking everyone is the
    /// eventcount contract: waiters await *different* targets, and each
    /// re-evaluates its own on wake.
    pub fn advance(&self) -> u64 {
        let new = self.count.fetch_add(1, Ordering::SeqCst).wrapping_add(1);
        futex::futex_wake(&self.count, usize::MAX);
        new
    }

    /// Blocks until the count has reached `target` in sequence order,
    /// returning the count observed. "Reached" is the wraparound-safe
    /// condition: the signed distance `count - target` is non-negative.
    pub fn await_at_least(&self, target: u64) -> u64 {
        let budget = self.spin.budget();
        let mut probes = 0;
        let mut parked = false;
        loop {
            let cur = self.count.load(Ordering::SeqCst);
            if (cur.wrapping_sub(target) as i64) >= 0 {
                self.spin.record(parked);
                return cur;
            }
            if probes < budget {
                probes += 1;
                std::hint::spin_loop();
            } else {
                parked = true;
                futex::futex_wait(&self.count, cur);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn advance_and_read() {
        let ec = EventcountBlocking::new();
        assert_eq!(ec.read(), 0);
        assert_eq!(ec.advance(), 1);
        assert_eq!(ec.advance(), 2);
        assert_eq!(ec.await_at_least(1), 2);
    }

    #[test]
    fn waiter_parks_until_advanced() {
        let ec = Arc::new(EventcountBlocking::new());
        let handle = {
            let ec = Arc::clone(&ec);
            thread::spawn(move || ec.await_at_least(3))
        };
        for _ in 0..3 {
            ec.advance();
        }
        assert!(handle.join().unwrap() >= 3);
    }

    #[test]
    fn await_survives_wraparound() {
        let ec = Arc::new(EventcountBlocking::with_initial(u64::MAX - 1));
        let handle = {
            let ec = Arc::clone(&ec);
            // Await the post-wrap value 1: a naive `<` would see MAX-1 as
            // already past 1 and return immediately with the pre-wrap count.
            thread::spawn(move || ec.await_at_least(1))
        };
        assert_eq!(ec.advance(), u64::MAX);
        assert_eq!(ec.advance(), 0);
        assert_eq!(ec.advance(), 1);
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn many_waiters_all_release() {
        let ec = Arc::new(EventcountBlocking::new());
        let handles: Vec<_> = (1..=6u64)
            .map(|target| {
                let ec = Arc::clone(&ec);
                thread::spawn(move || ec.await_at_least(target))
            })
            .collect();
        for _ in 0..6 {
            ec.advance();
        }
        for h in handles {
            assert!(h.join().unwrap() <= 6);
        }
    }
}
