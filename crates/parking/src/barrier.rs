//! A sense-reversing barrier whose waiters park on the sense word.
//!
//! The classic construction: an arrival counter plus a global **sense**
//! that flips each round. Every thread records the sense it saw on entry;
//! the last arriver resets the counter, flips the sense, and wakes all
//! parked waiters. Flipping *before* waking, combined with the futex's
//! atomic compare-and-block against the entry sense, makes the lost wakeup
//! impossible: a waiter that parks before the flip is covered by the wake,
//! a waiter that reaches the futex after the flip fails the compare and
//! never parks. No thread can re-enter the barrier and re-park on the new
//! round before the flip, because only the flip releases the round.

use crate::futex;
use crate::AdaptiveSpin;
use qsm::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A reusable blocking barrier for a fixed party of threads.
pub struct BlockingBarrier {
    parties: u64,
    arrived: CachePadded<AtomicU64>,
    sense: CachePadded<AtomicU64>,
    spin: AdaptiveSpin,
}

impl BlockingBarrier {
    /// A barrier for `parties` threads (must be nonzero).
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        BlockingBarrier {
            parties: parties as u64,
            arrived: CachePadded::new(AtomicU64::new(0)),
            sense: CachePadded::new(AtomicU64::new(0)),
            spin: AdaptiveSpin::new(64, true),
        }
    }

    /// Blocks until all parties have called `wait` for this round.
    /// Returns `true` on exactly one thread per round (the last arriver),
    /// mirroring `std::sync::Barrier`'s leader token.
    pub fn wait(&self) -> bool {
        let entry_sense = self.sense.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Reset the counter before releasing anyone: the released
            // threads may re-enter immediately, and they observe this
            // store through their acquire load of the flipped sense.
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(entry_sense ^ 1, Ordering::Release);
            futex::futex_wake(&self.sense, usize::MAX);
            return true;
        }
        let budget = self.spin.budget();
        let mut probes = 0;
        let mut parked = false;
        while self.sense.load(Ordering::Acquire) == entry_sense {
            if probes < budget {
                probes += 1;
                std::hint::spin_loop();
            } else {
                parked = true;
                futex::futex_wait(&self.sense, entry_sense);
            }
        }
        self.spin.record(parked);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_party_never_blocks() {
        let barrier = BlockingBarrier::new(1);
        for _ in 0..10 {
            assert!(barrier.wait());
        }
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        BlockingBarrier::new(0);
    }

    #[test]
    fn rounds_separate_phases() {
        // Each thread bumps a per-round cell between waits; if the barrier
        // ever let a thread run ahead a round, a cell would be read before
        // all its increments landed.
        const THREADS: usize = 6;
        const ROUNDS: usize = 25;
        let barrier = Arc::new(BlockingBarrier::new(THREADS));
        let cells: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ROUNDS).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let cells = Arc::clone(&cells);
                thread::spawn(move || {
                    for round in 0..ROUNDS {
                        cells[round].fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        assert_eq!(
                            cells[round].load(Ordering::SeqCst),
                            THREADS,
                            "crossed the barrier before the round completed"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_leader_per_round() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(BlockingBarrier::new(THREADS));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), ROUNDS);
    }
}
