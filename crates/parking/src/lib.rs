//! Blocking synchronization for real hardware: a word-sized **futex** and
//! the QSM primitives rebuilt on top of it.
//!
//! The 1991 study's kernels busy-wait, which is the right call when every
//! processor is dedicated. The moment threads outnumber cores, a spinning
//! waiter burns the very quantum the lock holder needs, and throughput
//! collapses (the `fig9` oversubscription sweep). This crate supplies the
//! alternative wait path:
//!
//! - [`futex`] — `futex_wait(word, expected)` / `futex_wake(word, n)` over a
//!   bucketed parking lot of per-thread parkers, the user-space analogue of
//!   the Linux futex: the compare and the block happen under one bucket
//!   lock, so a waker that changes the word *before* waking can never lose
//!   a wakeup. The lot is a first-class type ([`futex::ParkingLot`]):
//!   cache-line-padded power-of-two buckets indexed by the full-avalanche
//!   [`futex::mix64`] hash, batched wake ([`futex::ParkingLot::wake_batch`])
//!   and machine-wide park/wake/resume accounting ([`futex::totals`]). The
//!   `service` crate embeds its own lot under its sharded per-key lock
//!   table; the module-level functions serve the primitives below from one
//!   process-global instance.
//! - [`mutex::QsmMutexBlocking`] — the QSM queue lock with a spin-then-park
//!   wait, usable anywhere a [`qsm::RawLock`] fits (including
//!   [`qsm::Mutex`]).
//! - [`event::EventcountBlocking`] — a Reed–Kanodia eventcount whose
//!   `await` parks, with wraparound-safe sequence comparison.
//! - [`barrier::BlockingBarrier`] — a sense-reversing barrier that parks on
//!   the sense word.
//!
//! All three use an **adaptive spin-then-park** wait: probe for a bounded
//! budget first (uncontended hand-offs complete in nanoseconds; parking
//! would only add a syscall-shaped wake latency), then park. The budget
//! doubles when a wait was satisfied while still spinning and halves when
//! the waiter had to park.
//!
//! This crate is the *real-hardware* backend of the spin-vs-block axis. The
//! deterministic counterpart lives in `memsim`, whose engine executes
//! `FutexWait`/`FutexWake` as first-class simulated operations (a parked
//! processor yields its simulated core, a wake costs a modeled remote
//! write), and in the `interleave` checker, which explores park/wake
//! interleavings exhaustively and reports lost wakeups. The simulated
//! kernels reach those backends through `kernels::SyncCtx`; this crate is
//! what the same ideas look like on `std::thread`.

pub mod barrier;
pub mod event;
pub mod futex;
pub mod mutex;
pub mod trace_hooks;

pub use barrier::BlockingBarrier;
pub use event::EventcountBlocking;
pub use mutex::QsmMutexBlocking;

use std::sync::atomic::{AtomicU32, Ordering};

/// Smallest adaptive spin budget, in probes.
pub(crate) const MIN_SPIN: u32 = 4;
/// Largest adaptive spin budget, in probes.
pub(crate) const MAX_SPIN: u32 = 1 << 10;

/// The shared spin-then-park policy knob: a probe budget that adapts to
/// whether recent waits were satisfied while spinning (budget doubles) or
/// had to park (budget halves). Updates are racy by design — the budget is
/// a heuristic, and any interleaving of doublings/halvings is a valid one.
pub(crate) struct AdaptiveSpin {
    budget: AtomicU32,
    adaptive: bool,
}

impl AdaptiveSpin {
    /// A policy starting at `initial` probes; non-adaptive policies keep
    /// the initial budget forever (0 = always park).
    pub(crate) fn new(initial: u32, adaptive: bool) -> Self {
        AdaptiveSpin {
            budget: AtomicU32::new(initial),
            adaptive,
        }
    }

    /// The current probe budget.
    pub(crate) fn budget(&self) -> u32 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Records the outcome of one wait: `parked` halves the budget, a
    /// spin-satisfied wait doubles it.
    pub(crate) fn record(&self, parked: bool) {
        if !self.adaptive {
            return;
        }
        let cur = self.budget.load(Ordering::Relaxed);
        let next = if parked {
            (cur / 2).max(MIN_SPIN)
        } else {
            cur.saturating_mul(2).clamp(MIN_SPIN, MAX_SPIN)
        };
        self.budget.store(next, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_budget_moves_within_bounds() {
        let spin = AdaptiveSpin::new(16, true);
        spin.record(false);
        assert_eq!(spin.budget(), 32);
        for _ in 0..20 {
            spin.record(false);
        }
        assert_eq!(spin.budget(), MAX_SPIN);
        for _ in 0..20 {
            spin.record(true);
        }
        assert_eq!(spin.budget(), MIN_SPIN);
    }

    #[test]
    fn non_adaptive_budget_is_frozen() {
        let spin = AdaptiveSpin::new(0, false);
        spin.record(false);
        spin.record(true);
        assert_eq!(spin.budget(), 0);
    }
}
