//! The QSM queue lock with a spin-then-park wait, for real hardware.
//!
//! Queue discipline is [`qsm::Qsm`]'s: acquirers swap themselves onto an
//! implicit tail pointer and each waits on a **grant word** in its own
//! heap-allocated node — the per-waiter eventcount that is the mechanism's
//! signature. The difference is the wait itself: instead of snoozing
//! forever, a waiter probes its grant word for an adaptive budget and then
//! parks on it with [`crate::futex::futex_wait`]. The releaser advances the
//! successor's grant *first* and wakes *second*; together with the futex's
//! atomic compare-and-block that rules out the lost wakeup in both orders.
//!
//! One sharp edge is worth naming: the moment the releaser advances the
//! successor's grant word, the successor may finish `lock`, run its
//! critical section, `unlock`, and free its node — all before the releaser
//! issues the wake. The wake therefore goes through
//! [`crate::futex::futex_wake_addr`] with an address captured while the
//! node was still guaranteed alive; the parking lot never dereferences it.

use crate::futex;
use crate::AdaptiveSpin;
use qsm::{Backoff, CachePadded, RawLock};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// A queue node, one per in-flight acquisition. Padded so a waiter parked
/// on `grant` does not false-share with its neighbor's link traffic.
#[repr(align(128))]
struct Node {
    next: AtomicPtr<Node>,
    grant: AtomicU64,
}

/// QSM mutual exclusion with a spin-then-park wait. Implements
/// [`qsm::RawLock`], so `qsm::Mutex<T, QsmMutexBlocking>` gives a typed
/// blocking mutex.
pub struct QsmMutexBlocking {
    tail: CachePadded<AtomicPtr<Node>>,
    spin: AdaptiveSpin,
    name: &'static str,
}

impl QsmMutexBlocking {
    /// The spin-then-park policy: an adaptive probe budget before parking.
    pub fn spin_then_park() -> Self {
        QsmMutexBlocking {
            tail: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            spin: AdaptiveSpin::new(32, true),
            name: "qsm-mutex-block",
        }
    }

    /// The always-park extreme: no probes, straight to the futex.
    pub fn always_park() -> Self {
        QsmMutexBlocking {
            tail: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            spin: AdaptiveSpin::new(0, false),
            name: "qsm-mutex-park",
        }
    }
}

impl Default for QsmMutexBlocking {
    fn default() -> Self {
        QsmMutexBlocking::spin_then_park()
    }
}

impl RawLock for QsmMutexBlocking {
    fn name(&self) -> &'static str {
        self.name
    }

    fn lock(&self) -> usize {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            grant: AtomicU64::new(0),
        }));
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if pred.is_null() {
            return node as usize;
        }
        // SAFETY: a predecessor stays alive until its grant hand-off to us
        // completes, and it cannot hand off before seeing this link.
        unsafe { (*pred).next.store(node, Ordering::Release) };
        // SAFETY: `node` is ours until we pass it to `unlock`.
        let grant = unsafe { &(*node).grant };
        let budget = self.spin.budget();
        let mut probes = 0;
        let mut parked = false;
        let mut backoff = Backoff::new();
        while grant.load(Ordering::Acquire) == 0 {
            if probes < budget {
                probes += 1;
                backoff.snooze();
            } else {
                parked = true;
                futex::futex_wait(grant, 0);
            }
        }
        self.spin.record(parked);
        node as usize
    }

    unsafe fn unlock(&self, token: usize) {
        let node = token as *mut Node;
        let mut succ = (*node).next.load(Ordering::Acquire);
        if succ.is_null() {
            if self
                .tail
                .compare_exchange(node, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                drop(Box::from_raw(node));
                return;
            }
            // A successor has swapped the tail but not yet linked; its
            // store is imminent, so this wait is bounded and stays a spin.
            let mut backoff = Backoff::new();
            loop {
                succ = (*node).next.load(Ordering::Acquire);
                if !succ.is_null() {
                    break;
                }
                backoff.snooze();
            }
        }
        // Capture the wake identity BEFORE advancing the grant: after the
        // advance the successor may free its node at any instant.
        let grant_addr = futex::addr_of(&(*succ).grant);
        (*succ).grant.fetch_add(1, Ordering::Release);
        futex::futex_wake_addr(grant_addr, 1);
        drop(Box::from_raw(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn hammer(lock: QsmMutexBlocking, threads: usize, iters: usize) {
        let mutex = Arc::new(qsm::Mutex::with_raw(lock, 0u64));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let mutex = Arc::clone(&mutex);
                thread::spawn(move || {
                    for _ in 0..iters {
                        let mut guard = mutex.lock();
                        // Deliberately non-atomic RMW: any mutual-exclusion
                        // failure loses increments.
                        let v = *guard;
                        std::hint::black_box(v);
                        *guard = v + 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*mutex.lock(), (threads * iters) as u64);
    }

    #[test]
    fn uncontended_lock_unlock() {
        let lock = QsmMutexBlocking::spin_then_park();
        let token = lock.lock();
        unsafe { lock.unlock(token) };
        let token = lock.lock();
        unsafe { lock.unlock(token) };
    }

    #[test]
    fn names_distinguish_policies() {
        assert_eq!(QsmMutexBlocking::spin_then_park().name(), "qsm-mutex-block");
        assert_eq!(QsmMutexBlocking::always_park().name(), "qsm-mutex-park");
        assert_eq!(QsmMutexBlocking::default().name(), "qsm-mutex-block");
    }

    #[test]
    fn mutual_exclusion_spin_then_park() {
        hammer(QsmMutexBlocking::spin_then_park(), 8, 2_000);
    }

    #[test]
    fn mutual_exclusion_always_park() {
        hammer(QsmMutexBlocking::always_park(), 8, 1_000);
    }

    #[test]
    fn oversubscribed_mutual_exclusion() {
        // Far more threads than any test runner has cores: the regime the
        // park path exists for.
        let threads = thread::available_parallelism().map_or(32, |n| n.get() * 4).max(16);
        hammer(QsmMutexBlocking::spin_then_park(), threads, 500);
    }
}
