//! Loom checking of the blocking primitives' fast paths.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p parking --release --test loom
//! ```
//!
//! The parking lot itself talks to `std::thread::park`, which loom cannot
//! model, so these scenarios are built so that both the probe (fast) path
//! and the park path get exercised: under the in-tree loom stub each
//! `check` is 64 repeated real executions whose thread timings vary, and
//! under the real loom the spawn-level interleavings are still explored.
//! Under a normal build this file compiles to nothing.

#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::thread;
use parking::{EventcountBlocking, QsmMutexBlocking};
use qsm::RawLock;
use std::sync::Arc;

fn model<F: Fn() + Sync + Send + 'static>(f: F) {
    let mut builder = loom::model::Builder::new();
    builder.preemption_bound = Some(2);
    builder.check(f);
}

/// Two threads increment a plain (non-atomic) cell under the blocking QSM
/// lock; no interleaving may lose an update, whether the loser of the
/// queue race takes the probe path or the park path.
fn check_mutex_excludes<N>(new_lock: N)
where
    N: Fn() -> QsmMutexBlocking + Sync + Send + Copy + 'static,
{
    model(move || {
        let lock = Arc::new(new_lock());
        let cell = Arc::new(UnsafeCell::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let token = lock.lock();
                    cell.with_mut(|p| unsafe { *p += 1 });
                    unsafe { lock.unlock(token) };
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = cell.with(|p| unsafe { *p });
        assert_eq!(total, 2, "lost update under {}", lock.name());
    });
}

#[test]
fn loom_qsm_mutex_spin_then_park_excludes() {
    check_mutex_excludes(QsmMutexBlocking::spin_then_park);
}

#[test]
fn loom_qsm_mutex_always_park_excludes() {
    // No probe budget at all: every contended acquisition goes straight to
    // the futex, making the park path the common case instead of the rare
    // one.
    check_mutex_excludes(QsmMutexBlocking::always_park);
}

/// The eventcount as a publication barrier: the writer publishes into a
/// plain cell *before* `advance`, the reader must observe the value after
/// `await_at_least` returns — whether it won the fast path (advance landed
/// before its first probe) or had to park.
#[test]
fn loom_eventcount_publishes_before_advance() {
    model(|| {
        let ec = Arc::new(EventcountBlocking::new());
        let cell = Arc::new(UnsafeCell::new(0u64));
        let writer = {
            let ec = Arc::clone(&ec);
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.with_mut(|p| unsafe { *p = 42 });
                ec.advance();
            })
        };
        let reader = {
            let ec = Arc::clone(&ec);
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let seen = ec.await_at_least(1);
                assert!(seen >= 1);
                let v = cell.with(|p| unsafe { *p });
                assert_eq!(v, 42, "await returned before the publication");
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

/// An already-satisfied await must return on the pure fast path without
/// ever touching the futex, from any thread.
#[test]
fn loom_eventcount_satisfied_await_is_immediate() {
    model(|| {
        let ec = Arc::new(EventcountBlocking::new());
        ec.advance();
        ec.advance();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let ec = Arc::clone(&ec);
                thread::spawn(move || {
                    assert!(ec.await_at_least(1) >= 2);
                    assert!(ec.await_at_least(2) >= 2);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// Wraparound under concurrency: a waiter awaiting a post-wrap target must
/// not be released by the pre-wrap count, however the advances interleave
/// with its probes and parks.
#[test]
fn loom_eventcount_wraparound_release() {
    model(|| {
        let ec = Arc::new(EventcountBlocking::with_initial(u64::MAX - 1));
        let waiter = {
            let ec = Arc::clone(&ec);
            thread::spawn(move || {
                // Target 1 is three advances away, across the wrap.
                let seen = ec.await_at_least(1);
                assert!(
                    (seen.wrapping_sub(1) as i64) >= 0,
                    "released early at count {seen}"
                );
            })
        };
        let advancer = {
            let ec = Arc::clone(&ec);
            thread::spawn(move || {
                for _ in 0..3 {
                    ec.advance();
                }
            })
        };
        advancer.join().unwrap();
        waiter.join().unwrap();
    });
}
