//! # loom (offline stub)
//!
//! The workspace must build and test with **no network access**, so the
//! `qsm` crate's `cfg(loom)` dependency resolves to this in-tree facade
//! instead of the real [loom](https://docs.rs/loom) model checker. It
//! mirrors exactly the API surface the `qsm` crate and its loom test suite
//! use:
//!
//! * `loom::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering}`
//! * `loom::thread::{spawn, yield_now, JoinHandle}`
//! * `loom::cell::UnsafeCell` (`with` / `with_mut`)
//! * `loom::model::Builder` (`preemption_bound`, `check`)
//!
//! Semantics degrade honestly: atomics are `std` atomics, threads are OS
//! threads, and [`model::Builder::check`] runs the scenario many times
//! instead of exhaustively enumerating C11 interleavings. The loom test
//! suite therefore becomes a repeated-execution stress suite under this
//! stub — still able to catch gross ordering/exclusion bugs, but not a
//! proof. An environment with registry access can restore full checking by
//! patching `loom` back to the crates-io release; the test code needs no
//! changes.

/// Synchronization primitives: direct `std` re-exports.
pub mod sync {
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Thread spawning and scheduling hints: direct `std` re-exports.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Interior-mutability cell with loom's closure-based access API.
pub mod cell {
    /// Loom-compatible `UnsafeCell`: accesses go through `with`/`with_mut`
    /// so code written for loom's checked cell compiles unchanged. The stub
    /// performs no access-tracking; racy use is undefined behavior exactly
    /// as with `std::cell::UnsafeCell`.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    // Matches loom: the cell is Sync when T is Send — callers take
    // responsibility for exclusion, which is what the tests exercise.
    unsafe impl<T: Send> Sync for UnsafeCell<T> {}

    impl<T> UnsafeCell<T> {
        /// Wraps a value.
        pub fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Calls `f` with a shared raw pointer to the contents.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Calls `f` with an exclusive raw pointer to the contents.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

/// The model-checking entry points.
pub mod model {
    /// How many times [`Builder::check`] re-runs the scenario. Real loom
    /// explores distinct interleavings; the stub simply re-executes with
    /// live OS threads and lets the host scheduler vary timing.
    const STUB_ITERATIONS: usize = 64;

    /// Stand-in for `loom::model::Builder`.
    #[derive(Debug, Default)]
    pub struct Builder {
        /// Accepted for API compatibility; the stub cannot bound
        /// preemptions (the host scheduler is in charge).
        pub preemption_bound: Option<usize>,
    }

    impl Builder {
        /// Creates a builder with default settings.
        pub fn new() -> Self {
            Builder::default()
        }

        /// Runs `f` repeatedly. Panics propagate, so assertion failures
        /// fail the test just as under real loom — minus exhaustiveness.
        pub fn check<F: Fn() + Sync + Send + 'static>(&self, f: F) {
            for _ in 0..STUB_ITERATIONS {
                f();
            }
        }
    }

    /// Free-function form used by simple loom tests.
    pub fn model<F: Fn() + Sync + Send + 'static>(f: F) {
        Builder::new().check(f);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_cell_with_and_with_mut() {
        let c = super::cell::UnsafeCell::new(1u64);
        c.with_mut(|p| unsafe { *p += 1 });
        assert_eq!(c.with(|p| unsafe { *p }), 2);
    }

    #[test]
    fn builder_check_runs_closure() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        super::model::Builder::new().check(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        assert!(n.load(Ordering::Relaxed) > 0);
    }
}
