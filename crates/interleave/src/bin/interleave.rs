//! `interleave` — command-line front end for the schedule explorer.
//!
//! Checks any registered lock or barrier kernel, and deterministically
//! re-executes a recorded schedule (the list of thread choices a violating
//! verdict prints) with a per-operation narration:
//!
//! ```text
//! interleave list
//! interleave check lock:ticket --threads 2 --iters 1
//! interleave check lock:tas --threads 2 --iters 3 --preemptions 2 --bypass-bound 1
//! interleave check barrier:central --threads 2 --episodes 1
//! interleave replay lock:mcs --schedule 0,0,1,1,0,0 --threads 2 --iters 1
//! interleave trace lock:qsm-block-park --threads 2 --iters 1 --out sched.json
//! interleave fuzz lock:qsm-block --threads 3 --seed 1991 --iters 500 --strategy pct --shrink
//! ```
//!
//! `check` exits 1 when a violation is found (printing the reproducing
//! schedule and the matching `replay` invocation); `replay` exits 1 when
//! the re-execution ends in a violation, so both compose with shell `&&`.
//! `fuzz` samples random schedules instead of searching: same exit
//! convention, and every failure prints the seed, strategy and a
//! ready-to-paste `replay` line (shrunk when `--shrink` is given).

use interleave::fuzz::{self, Fuzzer, Strategy};
use interleave::harness::{barrier_program, check_barrier, check_lock, check_lock_bypass};
use interleave::harness::{check_barrier_parallel, check_lock_parallel};
use interleave::harness::{fuzz_barrier, fuzz_lock, lock_program};
use interleave::{dpor_workers_from, DporMode, Explorer, OpKind, Program, Replay, ReplayEnd};
use interleave::{Stats, Verdict};
use kernels::barriers::{all_barriers, barrier_by_name};
use kernels::lockdep::InstrumentedLock;
use kernels::locks::{all_locks, lock_by_name, LockKernel};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:
  interleave list
  interleave check  <lock:NAME|barrier:NAME> [options]
  interleave replay <lock:NAME|barrier:NAME> --schedule N,N,... [options]
  interleave trace  <lock:NAME|barrier:NAME> [--schedule N,N,...] [--out PATH] [options]
  interleave fuzz   <lock:NAME|barrier:NAME> [options]

trace renders a (re-)executed schedule — including a shrunk failure
schedule pasted from fuzz — as a Chrome trace-event JSON timeline
(load into Perfetto / chrome://tracing); --out writes it to a file,
otherwise it goes to stdout.

options:
  --threads N       thread count (default 2)
  --iters N         check/replay: critical sections per thread (default 1)
                    fuzz: schedules to sample (default: SYNCMECH_FUZZ_ITERS or 1000)
  --episodes N      barrier episodes per thread (default 1)
  --preemptions K   preemption bound (default: exhaustive)
  --max-steps N     per-run step limit
  --max-runs N      run budget
  --bypass-bound K  fail schedules that bypass a waiter more than K times
  --dpor MODE       partial-order reduction: none | sleep | source | tree
                    (default: source when exhaustive, sleep when bounded)
  --workers N       parallel exploration workers for check (default:
                    SYNCMECH_DPOR_WORKERS or 1); the verdict and stats are
                    worker-count independent. Starvation checks
                    (--bypass-bound) always explore serially.
  --no-reduction    disable partial-order reduction entirely

fuzz options:
  --seed N          campaign seed (default: SYNCMECH_FUZZ_SEED or 1991)
  --strategy S      uniform | pct | pct:<d> (default pct:3)
  --shrink          minimize the failing schedule before reporting
  --cs N            critical sections per thread in the fuzzed workload (default 1)"
    );
    std::process::exit(2);
}

/// What the positional `lock:NAME` / `barrier:NAME` argument named.
enum Target {
    Lock(String),
    Barrier(String),
}

struct Args {
    cmd: String,
    target: Option<Target>,
    threads: usize,
    iters: usize,
    /// Whether `--iters` was given explicitly (fuzz reads it as the
    /// sampling budget, whose default comes from the environment).
    iters_flag: Option<usize>,
    episodes: u64,
    preemptions: Option<usize>,
    max_steps: Option<usize>,
    max_runs: Option<usize>,
    bypass_bound: Option<usize>,
    dpor: Option<DporMode>,
    workers: Option<usize>,
    no_reduction: bool,
    schedule: Option<Vec<usize>>,
    seed: Option<u64>,
    strategy: Option<Strategy>,
    shrink: bool,
    /// Critical sections per thread in the fuzzed lock workload.
    cs: usize,
    /// Output path for `trace` (stdout when absent).
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let cmd = it.next().unwrap_or_else(|| usage());
    let mut args = Args {
        cmd,
        target: None,
        threads: 2,
        iters: 1,
        iters_flag: None,
        episodes: 1,
        preemptions: None,
        max_steps: None,
        max_runs: None,
        bypass_bound: None,
        dpor: None,
        workers: None,
        no_reduction: false,
        schedule: None,
        seed: None,
        strategy: None,
        shrink: false,
        cs: 1,
        out: None,
    };
    fn num<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
        let v = it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: bad value {v:?}");
            std::process::exit(2);
        })
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => args.threads = num(&mut it, "--threads"),
            "--iters" => {
                args.iters = num(&mut it, "--iters");
                args.iters_flag = Some(args.iters);
            }
            "--episodes" => args.episodes = num(&mut it, "--episodes"),
            "--seed" => args.seed = Some(num(&mut it, "--seed")),
            "--strategy" => {
                let spec: String = num(&mut it, "--strategy");
                match Strategy::parse(&spec) {
                    Ok(s) => args.strategy = Some(s),
                    Err(msg) => {
                        eprintln!("--strategy: {msg}");
                        std::process::exit(2);
                    }
                }
            }
            "--shrink" => args.shrink = true,
            "--cs" => args.cs = num(&mut it, "--cs"),
            "--out" => args.out = Some(num(&mut it, "--out")),
            "--preemptions" => args.preemptions = Some(num(&mut it, "--preemptions")),
            "--max-steps" => args.max_steps = Some(num(&mut it, "--max-steps")),
            "--max-runs" => args.max_runs = Some(num(&mut it, "--max-runs")),
            "--bypass-bound" => args.bypass_bound = Some(num(&mut it, "--bypass-bound")),
            "--dpor" => {
                let spec: String = num(&mut it, "--dpor");
                match DporMode::parse(&spec) {
                    Ok(m) => args.dpor = Some(m),
                    Err(msg) => {
                        eprintln!("--dpor: {msg}");
                        std::process::exit(2);
                    }
                }
            }
            "--workers" => {
                let n: usize = num(&mut it, "--workers");
                if n == 0 {
                    eprintln!("--workers: parallel exploration needs at least one worker");
                    std::process::exit(2);
                }
                args.workers = Some(n);
            }
            "--no-reduction" => args.no_reduction = true,
            "--schedule" => {
                let spec: String = num(&mut it, "--schedule");
                let parsed: Result<Vec<usize>, _> =
                    spec.split(',').map(|s| s.trim().parse()).collect();
                match parsed {
                    Ok(v) => args.schedule = Some(v),
                    Err(_) => {
                        eprintln!("--schedule: expected comma-separated thread ids, got {spec:?}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                let target = if let Some(name) = other.strip_prefix("lock:") {
                    Target::Lock(name.to_string())
                } else if let Some(name) = other.strip_prefix("barrier:") {
                    Target::Barrier(name.to_string())
                } else {
                    eprintln!("unrecognized argument {other:?}");
                    usage();
                };
                if args.target.is_some() {
                    eprintln!("only one target allowed");
                    usage();
                }
                args.target = Some(target);
            }
        }
    }
    args
}

fn explorer_from(args: &Args) -> Explorer {
    let mut e = match args.preemptions {
        Some(k) => Explorer::bounded(k),
        None => Explorer::exhaustive(),
    };
    if let Some(s) = args.max_steps {
        e = e.with_max_steps(s);
    }
    if let Some(r) = args.max_runs {
        e = e.with_max_runs(r);
    }
    if let Some(mode) = args.dpor {
        e = e.with_dpor(mode);
    }
    if args.no_reduction {
        e = e.without_reduction();
    }
    if let Some(k) = args.bypass_bound {
        e = e.with_bypass_bound(k);
    }
    e
}

fn render_stats(s: Stats) {
    println!(
        "runs {} (step-limit pruned {}, sleep-set pruned {}, dpor pruned {}, \
         wakeup-tree nodes {}), max depth {}, {}",
        s.runs,
        s.pruned,
        s.sleep_pruned,
        s.dpor_pruned,
        s.wakeup_tree_nodes,
        s.max_depth,
        if s.complete {
            "search complete"
        } else {
            "run budget exhausted"
        }
    );
}

/// Builds the program a target names, mirroring exactly what `check` runs
/// so recorded schedules replay against the same operation sequence.
fn build_program(args: &Args) -> Program {
    match args.target.as_ref().unwrap_or_else(|| usage()) {
        Target::Lock(name) => {
            let mut lock: Arc<dyn LockKernel + Send + Sync> = lock_by_name(name)
                .unwrap_or_else(|| {
                    eprintln!("unknown lock {name:?}; see `interleave list`");
                    std::process::exit(2);
                })
                .into();
            // Mirror `check --bypass-bound`: the waiter accounting only
            // sees locks wrapped in the event-emitting instrumentation.
            if args.bypass_bound.is_some() {
                lock = Arc::new(InstrumentedLock::new(lock, 0));
            }
            lock_program(lock, args.threads, args.iters)
        }
        Target::Barrier(name) => {
            let barrier = barrier_by_name(name).unwrap_or_else(|| {
                eprintln!("unknown barrier {name:?}; see `interleave list`");
                std::process::exit(2);
            });
            barrier_program(barrier.into(), args.threads, args.episodes)
        }
    }
}

fn run_check(args: &Args) -> ExitCode {
    let explorer = explorer_from(args);
    // An explicit worker count — even 1 — selects the fan-out-based
    // parallel algorithm, whose stats are byte-identical for every
    // worker count (but differ from the plain serial DFS, which only
    // runs when no count was requested at all).
    let env_workers = std::env::var("SYNCMECH_DPOR_WORKERS").ok();
    let workers = match (args.workers, env_workers) {
        (Some(n), _) => Some(n),
        (None, var @ Some(_)) => {
            let n = dpor_workers_from(var.as_deref()).unwrap_or_else(|msg| {
                eprintln!("{msg}");
                std::process::exit(2);
            });
            Some(n)
        }
        (None, None) => None,
    };
    let (verdict, target_spec) = match args.target.as_ref().unwrap_or_else(|| usage()) {
        Target::Lock(name) => {
            let lock: Arc<_> = lock_by_name(name)
                .unwrap_or_else(|| {
                    eprintln!("unknown lock {name:?}; see `interleave list`");
                    std::process::exit(2);
                })
                .into();
            let v = match (args.bypass_bound, workers) {
                // Bypass accounting forces reduction off and stays
                // serial: overtaking counts are not trace-invariant.
                (Some(bound), _) => {
                    check_lock_bypass(lock, args.threads, args.iters, bound, explorer)
                }
                (None, None) => check_lock(lock, args.threads, args.iters, explorer),
                (None, Some(w)) => {
                    check_lock_parallel(lock, args.threads, args.iters, explorer, w)
                }
            };
            (v, format!("lock:{name}"))
        }
        Target::Barrier(name) => {
            let barrier: Arc<_> = barrier_by_name(name)
                .unwrap_or_else(|| {
                    eprintln!("unknown barrier {name:?}; see `interleave list`");
                    std::process::exit(2);
                })
                .into();
            let v = match workers {
                None => check_barrier(barrier, args.threads, args.episodes, explorer),
                Some(w) => {
                    check_barrier_parallel(barrier, args.threads, args.episodes, explorer, w)
                }
            };
            (v, format!("barrier:{name}"))
        }
    };
    render_stats(verdict.stats());
    match &verdict {
        Verdict::Passed(_) => {
            println!("PASS: no violation within the explored bounds");
            ExitCode::SUCCESS
        }
        Verdict::Deadlock { blocked, .. } => {
            println!("FAIL: deadlock; blocked (thread, word): {blocked:?}");
            print_repro(args, &target_spec, &verdict);
            ExitCode::FAILURE
        }
        Verdict::LostWakeup { parked, .. } => {
            println!("FAIL: lost wakeup; parked (thread, word): {parked:?}");
            print_repro(args, &target_spec, &verdict);
            ExitCode::FAILURE
        }
        Verdict::Violation { message, .. } => {
            println!("FAIL: {message}");
            print_repro(args, &target_spec, &verdict);
            ExitCode::FAILURE
        }
        Verdict::Race { report, .. } => {
            println!("FAIL: {report}");
            print_repro(args, &target_spec, &verdict);
            ExitCode::FAILURE
        }
        Verdict::Starvation { report, .. } => {
            println!("FAIL: {report}");
            print_repro(args, &target_spec, &verdict);
            ExitCode::FAILURE
        }
    }
}

fn print_repro(args: &Args, target_spec: &str, verdict: &Verdict) {
    let schedule = verdict.schedule().unwrap_or(&[]);
    let sched: Vec<String> = schedule.iter().map(|p| p.to_string()).collect();
    println!("schedule: {}", sched.join(","));
    let mut extent = match args.target {
        Some(Target::Barrier(_)) => format!("--episodes {}", args.episodes),
        _ => format!("--iters {}", args.iters),
    };
    if let Some(k) = args.bypass_bound {
        extent.push_str(&format!(" --bypass-bound {k}"));
    }
    println!(
        "replay with: interleave replay {target_spec} --threads {} {extent} --schedule {}",
        args.threads,
        sched.join(",")
    );
}

fn run_replay(args: &Args) -> ExitCode {
    let schedule = args.schedule.as_deref().unwrap_or_else(|| {
        eprintln!("replay needs --schedule");
        usage();
    });
    let program = build_program(args);
    let replay = explorer_from(args).replay(&program, schedule);
    print!("{}", replay.render());
    match replay.end {
        interleave::ReplayEnd::Complete(_) | interleave::ReplayEnd::StepLimit => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}

/// Converts an executed schedule to Chrome trace-event JSON: one track per
/// thread, timestamps = global step indices, spin probes coalesced into
/// `spin` spans, park/resume pairs rendered as `parked` spans with flow
/// arrows from the wake that ended them.
fn replay_to_chrome(replay: &Replay, process_name: &str, threads: usize) -> String {
    let ops = &replay.ops;
    let last_step = ops.last().map_or(0, |op| op.step as u64);

    // Classify futex waits. A wait op parks when the thread's next op is
    // another wait on the same word with an intervening wake of that word
    // by someone else (the checker re-executes the blocked wait as the
    // waiter's resume step); a final wait in a lost-wakeup or deadlock end
    // parks forever. Everything else returned immediately.
    let wakes: Vec<usize> = (0..ops.len())
        .filter(|&i| ops[i].kind == OpKind::FutexWake)
        .collect();
    let mut wake_used = vec![false; wakes.len()];
    // For op i: does a park interval start here, and which wake (index
    // into `wakes`) resumes op i?
    let mut parks = vec![false; ops.len()];
    let mut resumed_by: Vec<Option<usize>> = vec![None; ops.len()];
    // wake op index -> pids it resumes (for flow arrows).
    let mut wake_targets: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for pid in 0..threads {
        let mine: Vec<usize> = (0..ops.len()).filter(|&i| ops[i].pid == pid).collect();
        for (k, &a) in mine.iter().enumerate() {
            if ops[a].kind != OpKind::FutexWait {
                continue;
            }
            match mine.get(k + 1) {
                Some(&b) if ops[b].kind == OpKind::FutexWait && ops[b].addr == ops[a].addr => {
                    let wake = (0..wakes.len()).find(|&w| {
                        !wake_used[w]
                            && ops[wakes[w]].addr == ops[a].addr
                            && ops[wakes[w]].step > ops[a].step
                            && ops[wakes[w]].step < ops[b].step
                    });
                    if let Some(w) = wake {
                        wake_used[w] = true;
                        parks[a] = true;
                        resumed_by[b] = Some(w);
                        wake_targets.entry(wakes[w]).or_default().push(pid);
                    }
                }
                None if matches!(replay.end, ReplayEnd::LostWakeup(_) | ReplayEnd::Deadlock(_)) => {
                    // Parked at the end of the run and never woken.
                    parks[a] = true;
                }
                _ => {}
            }
        }
    }

    let mut b = trace::chrome::ChromeTraceBuilder::new(process_name);
    for t in 0..threads {
        b.thread(t, &format!("thread {t}"));
    }
    // Open spin span per thread: (addr, begun).
    let mut spinning: Vec<Option<u64>> = vec![None; threads];
    // Open park span per thread (addr).
    let mut parked: Vec<Option<u64>> = vec![None; threads];
    for (i, op) in ops.iter().enumerate() {
        let (pid, ts, addr) = (op.pid, op.step as u64, op.addr as u64);
        if let Some(spin_addr) = spinning[pid] {
            if op.kind != OpKind::SpinRead || spin_addr != addr {
                b.end(pid, ts, &format!("spin @{spin_addr}"));
                spinning[pid] = None;
            }
        }
        match op.kind {
            OpKind::SpinRead => {
                if spinning[pid].is_none() {
                    b.begin(pid, ts, &format!("spin @{addr}"));
                    spinning[pid] = Some(addr);
                }
            }
            OpKind::FutexWait => {
                if let Some(w) = resumed_by[i] {
                    let wake_op = wakes[w];
                    b.end(pid, ts, &format!("parked @{addr}"));
                    parked[pid] = None;
                    b.flow_end(pid, ts, &format!("w{}:{pid}", ops[wake_op].step), "wake");
                }
                if parks[i] {
                    b.begin(pid, ts, &format!("parked @{addr}"));
                    parked[pid] = Some(addr);
                } else if resumed_by[i].is_none() {
                    b.instant(pid, ts, &format!("futex-wait @{addr} (no park)"));
                }
            }
            OpKind::FutexWake => {
                b.instant(pid, ts, &format!("wake @{addr}"));
                for &wakee in wake_targets.get(&i).into_iter().flatten() {
                    b.flow_start(pid, ts, &format!("w{}:{wakee}", op.step), "wake");
                }
            }
            kind => b.instant(pid, ts, &format!("{kind} [{}] = {}", op.addr, op.value)),
        }
    }
    // Close whatever is still open — spinners at a deadlock, waiters a
    // lost wakeup stranded — at the last step so every span balances.
    for pid in 0..threads {
        if let Some(addr) = spinning[pid] {
            b.end(pid, last_step, &format!("spin @{addr}"));
        }
        if let Some(addr) = parked[pid] {
            b.end(pid, last_step, &format!("parked @{addr}"));
        }
    }
    b.finish()
}

fn run_trace(args: &Args) -> ExitCode {
    let program = build_program(args);
    let schedule = args.schedule.clone().unwrap_or_default();
    let replay = explorer_from(args).replay(&program, &schedule);
    let target_name = match args.target.as_ref().unwrap_or_else(|| usage()) {
        Target::Lock(name) => format!("interleave lock:{name}"),
        Target::Barrier(name) => format!("interleave barrier:{name}"),
    };
    let json = replay_to_chrome(&replay, &target_name, args.threads);
    let stats = match trace::chrome::validate(&json) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("internal error: exported trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "trace OK: wrote {path} ({} ops, {} events, {} tracks, {} spans; end: {:?})",
                replay.ops.len(),
                stats.events,
                stats.tracks,
                stats.spans,
                replay.end
            );
        }
        None => print!("{json}"),
    }
    match replay.end {
        ReplayEnd::Complete(_) | ReplayEnd::StepLimit => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}

fn run_fuzz(args: &Args) -> ExitCode {
    let seed = args.seed.unwrap_or_else(fuzz::fuzz_seed);
    let iters = args.iters_flag.unwrap_or_else(fuzz::fuzz_iters);
    let strategy = args.strategy.unwrap_or_default();
    let mut fuzzer = Fuzzer::new(seed, iters, strategy);
    if !args.shrink {
        fuzzer = fuzzer.without_shrink();
    }
    if let Some(k) = args.bypass_bound {
        fuzzer = fuzzer.with_bypass_bound(k);
    }
    if let Some(s) = args.max_steps {
        fuzzer = fuzzer.with_max_steps(s);
    }

    let (report, target_spec, extent) = match args.target.as_ref().unwrap_or_else(|| usage()) {
        Target::Lock(name) => {
            let lock: Arc<_> = lock_by_name(name)
                .unwrap_or_else(|| {
                    eprintln!("unknown lock {name:?}; see `interleave list`");
                    std::process::exit(2);
                })
                .into();
            (
                fuzz_lock(lock, args.threads, args.cs, &fuzzer),
                format!("lock:{name}"),
                format!("--iters {}", args.cs),
            )
        }
        Target::Barrier(name) => {
            let barrier: Arc<_> = barrier_by_name(name)
                .unwrap_or_else(|| {
                    eprintln!("unknown barrier {name:?}; see `interleave list`");
                    std::process::exit(2);
                })
                .into();
            (
                fuzz_barrier(barrier, args.threads, args.episodes, &fuzzer),
                format!("barrier:{name}"),
                format!("--episodes {}", args.episodes),
            )
        }
    };

    println!(
        "fuzz {target_spec}: seed {seed}, strategy {strategy}, budget {iters} schedules"
    );
    render_stats(report.verdict.stats());
    let failure = match &report.verdict {
        Verdict::Passed(s) => {
            println!("PASS: no violation in {} sampled schedules", s.runs);
            return ExitCode::SUCCESS;
        }
        Verdict::Deadlock { blocked, .. } => {
            format!("deadlock; blocked (thread, word): {blocked:?}")
        }
        Verdict::LostWakeup { parked, .. } => {
            format!("lost wakeup; parked (thread, word): {parked:?}")
        }
        Verdict::Violation { message, .. } => message.clone(),
        Verdict::Race { report, .. } => format!("{report}"),
        Verdict::Starvation { report, .. } => format!("{report}"),
    };
    let iter = report.failing_iter.unwrap_or(0);
    println!("FAIL at iteration {iter}: {failure}");
    println!("repro: --seed {seed} --strategy {strategy}");
    let mut extent = extent;
    if let Some(k) = args.bypass_bound {
        extent.push_str(&format!(" --bypass-bound {k}"));
    }
    let render = |schedule: &[usize]| {
        schedule
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let schedule = report.verdict.schedule().unwrap_or(&[]);
    println!("schedule: {}", render(schedule));
    if let Some(shrunk) = &report.shrunk {
        println!(
            "shrunk schedule ({} replays): {}",
            shrunk.replays,
            render(&shrunk.schedule)
        );
        println!(
            "replay with: interleave replay {target_spec} --threads {} {extent} --schedule {}",
            args.threads,
            render(&shrunk.schedule)
        );
    } else {
        println!(
            "replay with: interleave replay {target_spec} --threads {} {extent} --schedule {}",
            args.threads,
            render(schedule)
        );
    }
    ExitCode::FAILURE
}

fn run_list() -> ExitCode {
    println!("locks:");
    for lock in all_locks() {
        println!("  lock:{}", lock.name());
    }
    println!("barriers:");
    for barrier in all_barriers() {
        println!("  barrier:{}", barrier.name());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.cmd.as_str() {
        "list" => run_list(),
        "check" => run_check(&args),
        "replay" => run_replay(&args),
        "trace" => run_trace(&args),
        "fuzz" => run_fuzz(&args),
        _ => usage(),
    }
}
