//! # interleave — exhaustive interleaving checking for synchronization kernels
//!
//! The 1991 paper argues its mechanism correct informally. This crate does
//! what the era could not: it **model-checks** the same kernel code that the
//! simulator measures. A [`Program`] (N threads over a small sequentially
//! consistent shared memory) is executed repeatedly under every schedule a
//! depth-first explorer can reach, replaying recorded prefixes and branching
//! at each step ([`Explorer`]).
//!
//! * Every shared-memory operation is a *schedule point*; between points a
//!   thread runs uninstrumented local code.
//! * `spin_while` / `spin_until` **block**: a blocked thread is not
//!   schedulable until a write makes its predicate true, and when scheduled
//!   it re-checks (wake-up then re-check, as on real hardware).
//! * If no thread is schedulable and someone is blocked, the explorer
//!   reports a **deadlock with the exact schedule** that produced it.
//! * Assertions inside the program (or a final-state invariant) failing
//!   likewise surface with their schedule.
//!
//! Exhaustive exploration explodes combinatorially, so the explorer supports
//! **preemption bounding** (Musuvathi & Qadeer): only schedules with at most
//! `k` involuntary context switches are explored. Almost all synchronization
//! bugs manifest with two or fewer preemptions, which keeps checking every
//! lock in the suite tractable. **Dynamic partial-order reduction**
//! ([`DporMode`]) prunes schedules that merely reorder independent steps
//! of one already explored: sleep sets (Godefroid) cut the obvious
//! repeats, and the default source-set mode plus the wakeup-tree mode
//! (Abdulla et al.) invert the search — branching only where a run's
//! vector clocks prove a reversible race — for order-of-magnitude run
//! reductions at identical coverage ([`Stats::sleep_pruned`] and
//! [`Stats::dpor_pruned`] count the cuts). The search itself can fan out
//! across host threads ([`Explorer::check_parallel`]) with a verdict
//! independent of the worker count.
//! Where even bounded search stops scaling, the [`fuzz`] module *samples*
//! instead: seeded uniform-random and PCT schedules ([`Fuzzer`]) through
//! the same scheduler loop, with greedy schedule shrinking
//! ([`fuzz::shrink_schedule`]) so a fuzz failure debugs like an
//! exhaustive one.
//!
//! On top of exploration sits an **analysis layer**:
//!
//! * **Vector-clock race detection** ([`race`], FastTrack-style epochs):
//!   `SyncCtx` sync operations carry happens-before; the harness's
//!   critical-section counters and barrier stamps are *data* accesses
//!   ([`ChkCtx::data_load`](kernels::SyncCtx::data_load) /
//!   `data_store`) that must be ordered by them. Two concurrent data
//!   accesses surface as [`Verdict::Race`] with both sites and the
//!   reproducing schedule — even when the final state happens to be right.
//! * **Lock-order tracking** ([`kernels::LockOrderGraph`] fed through
//!   [`Program::with_lockdep`]): acquisition edges accumulate across runs,
//!   workloads and tests; a cycle is a potential deadlock no single
//!   explored schedule need exhibit.
//! * **Bounded-bypass checking** ([`Explorer::with_bypass_bound`]): a
//!   waiter bypassed more than `k` times while demonstrably waiting is
//!   reported as [`Verdict::Starvation`]. FIFO queue locks pass any bound;
//!   test-and-set retry locks fail every bound.
//! * **Deterministic replay** ([`Explorer::replay`], also the
//!   `interleave` binary): re-executes a recorded schedule with a
//!   per-operation narration for debugging a reported violation.
//!
//! The sibling check for the *real-hardware* primitives (C11 memory model,
//! weak orderings) is done with `loom` in the `qsm` crate; this crate
//! deliberately models sequential consistency, which is what the simulated
//! 1991 machines provide.
//!
//! ```
//! use interleave::{Explorer, Program};
//! use kernels::SyncCtx;
//!
//! // Two threads increment a counter with plain load/store: a lost update
//! // exists under some interleaving, and the explorer finds it.
//! let program = Program::new(2, 1, |ctx| {
//!     let v = ctx.load(0);
//!     ctx.store(0, v + 1);
//! });
//! let verdict = Explorer::exhaustive().check(&program, |mem| {
//!     if mem[0] == 2 { Ok(()) } else { Err(format!("lost update: {}", mem[0])) }
//! });
//! assert!(verdict.is_violation());
//! ```

pub mod corpus;
pub mod explorer;
pub mod fuzz;
pub mod harness;
pub mod program;
pub mod race;

pub use corpus::{CorpusEntry, VerdictClass};
pub use explorer::{
    dpor_workers, dpor_workers_from, DporMode, Explorer, Replay, ReplayEnd, Stats, Verdict,
    DEFAULT_DPOR_WORKERS, DPOR_SPLIT_DEPTH,
};
pub use fuzz::{FuzzReport, Fuzzer, Shrunk, Strategy};
pub use program::{ChkCtx, OpKind, OpRecord, Program, StarvationReport};
pub use race::{AccessSite, Epoch, RaceReport, VectorClock};
