//! # interleave — exhaustive interleaving checking for synchronization kernels
//!
//! The 1991 paper argues its mechanism correct informally. This crate does
//! what the era could not: it **model-checks** the same kernel code that the
//! simulator measures. A [`Program`] (N threads over a small sequentially
//! consistent shared memory) is executed repeatedly under every schedule a
//! depth-first explorer can reach, replaying recorded prefixes and branching
//! at each step ([`Explorer`]).
//!
//! * Every shared-memory operation is a *schedule point*; between points a
//!   thread runs uninstrumented local code.
//! * `spin_while` / `spin_until` **block**: a blocked thread is not
//!   schedulable until a write makes its predicate true, and when scheduled
//!   it re-checks (wake-up then re-check, as on real hardware).
//! * If no thread is schedulable and someone is blocked, the explorer
//!   reports a **deadlock with the exact schedule** that produced it.
//! * Assertions inside the program (or a final-state invariant) failing
//!   likewise surface with their schedule.
//!
//! Exhaustive exploration explodes combinatorially, so the explorer supports
//! **preemption bounding** (Musuvathi & Qadeer): only schedules with at most
//! `k` involuntary context switches are explored. Almost all synchronization
//! bugs manifest with two or fewer preemptions, which keeps checking every
//! lock in the suite tractable.
//!
//! The sibling check for the *real-hardware* primitives (C11 memory model,
//! weak orderings) is done with `loom` in the `qsm` crate; this crate
//! deliberately models sequential consistency, which is what the simulated
//! 1991 machines provide.
//!
//! ```
//! use interleave::{Explorer, Program};
//! use kernels::SyncCtx;
//!
//! // Two threads increment a counter with plain load/store: a lost update
//! // exists under some interleaving, and the explorer finds it.
//! let program = Program::new(2, 1, |ctx| {
//!     let v = ctx.load(0);
//!     ctx.store(0, v + 1);
//! });
//! let verdict = Explorer::exhaustive().check(&program, |mem| {
//!     if mem[0] == 2 { Ok(()) } else { Err(format!("lost update: {}", mem[0])) }
//! });
//! assert!(verdict.is_violation());
//! ```

pub mod explorer;
pub mod harness;
pub mod program;

pub use explorer::{Explorer, Stats, Verdict};
pub use program::{ChkCtx, Program};
