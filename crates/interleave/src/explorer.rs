//! Schedule-replay depth-first exploration.
//!
//! The explorer re-executes the program under every schedule reachable by
//! replaying a decision prefix and branching at the deepest unexplored
//! point, subject to an optional preemption bound (Musuvathi & Qadeer).
//!
//! Two analysis layers ride on every execution:
//!
//! * a vector-clock **race detector** (see [`crate::race`]) that fails a
//!   run the moment two data accesses are happens-before concurrent, even
//!   when the final state happens to be correct;
//! * **bounded-bypass accounting** over instrumented-lock events, failing
//!   runs in which a waiter is bypassed more often than a configured bound
//!   ([`Explorer::with_bypass_bound`]).
//!
//! Exploration is pruned by **dynamic partial-order reduction**, in one of
//! three cumulative strengths ([`DporMode`]):
//!
//! * **sleep sets** (Godefroid): when a branch at some state has been
//!   fully explored, the chosen thread is put to sleep in the sibling
//!   branches and stays asleep until another thread performs an operation
//!   *dependent* on its pending one. A state whose enabled threads are all
//!   asleep need not be explored further — every continuation from it is a
//!   reordering of independent operations already covered
//!   ([`Stats::sleep_pruned`] counts the cut-off executions). Sleep sets
//!   prune *subtrees already covered*, but still branch on every eligible
//!   sibling first.
//! * **source sets** (Abdulla, Aronis, Jonsson & Sagonas): instead of
//!   branching on every eligible sibling, each executed run is analysed
//!   with dependence-order vector clocks ([`crate::race`]); only when two
//!   dependent steps turn out to be *unordered* (a reversible race) is a
//!   backtrack point planted at the earlier step, and only for a thread
//!   that can actually start the reversed trace (an *initial* of the
//!   not-dependent suffix). Siblings never named by any race are skipped
//!   outright ([`Stats::dpor_pruned`] counts them).
//! * **wakeup trees** (the same paper's optimal algorithm, adapted):
//!   source sets can still schedule a backtracked thread into a state
//!   where every continuation is sleep-set-covered, wasting the run. A
//!   wakeup *sequence* stores the entire reversed trace
//!   `notdep(e)·proc(e')` at the backtrack point and replays it as a
//!   forced prefix, steering the run straight through the reversal
//!   ([`Stats::wakeup_tree_nodes`] counts stored sequence nodes).
//!
//! All three preserve every Mazurkiewicz trace, hence all safety
//! violations, deadlocks and lost wakeups — the enabled sets driving the
//! reduction are park/unpark-aware, so [`Verdict::LostWakeup`] hangs are
//! maximal executions the reduction must (and does) keep.
//! [`Explorer::without_reduction`] turns all reduction off for comparison;
//! bounded-bypass starvation checking forces it off automatically, because
//! bypass counts are *not* invariant under reordering independent steps.
//!
//! [`Explorer::check_parallel`] fans the search out over a worker pool
//! deterministically: the top [`DPOR_SPLIT_DEPTH`] levels are expanded
//! into an explicit task list under sleep-set semantics (so cross-task
//! backtrack insertions are satisfied by construction), tasks run on any
//! number of workers, and verdict/stats merge in task order — the result
//! is byte-identical for 1, 2 or N workers.

use crate::program::{OpMeta, OpRecord, Program, RunCfg, RunState, StarvationReport, TState};
use crate::race::{DporAnalysis, RaceReport};
use memsim::{Addr, Word};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which dynamic partial-order reduction the explorer runs with; see the
/// module docs for what each level adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DporMode {
    /// No reduction: branch on every enabled thread at every step.
    None,
    /// Sleep-set pruning only (the pre-source-set explorer).
    Sleep,
    /// Sleep sets + source sets: branch only where an executed run shows a
    /// reversible race. The default for [`Explorer::exhaustive`].
    Source,
    /// Source sets + wakeup sequences: backtracks replay the full reversed
    /// trace, avoiding sleep-set-blocked wasted runs.
    Tree,
}

impl DporMode {
    /// Parses a CLI spelling: `none`, `sleep`, `source` or `tree`.
    pub fn parse(s: &str) -> Result<DporMode, String> {
        match s {
            "none" => Ok(DporMode::None),
            "sleep" => Ok(DporMode::Sleep),
            "source" => Ok(DporMode::Source),
            "tree" => Ok(DporMode::Tree),
            other => Err(format!(
                "unknown DPOR mode {other:?}; expected none, sleep, source or tree"
            )),
        }
    }

    /// True when source-set race analysis runs (source and tree modes).
    fn analyses_races(self) -> bool {
        matches!(self, DporMode::Source | DporMode::Tree)
    }
}

impl std::fmt::Display for DporMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DporMode::None => "none",
            DporMode::Sleep => "sleep",
            DporMode::Source => "source",
            DporMode::Tree => "tree",
        })
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Executions performed.
    pub runs: usize,
    /// Executions cut off at the step limit (possible livelock branches —
    /// expected for unfair schedules of retry-loop locks).
    pub pruned: usize,
    /// Executions cut off by sleep-set reduction: every continuation was a
    /// reordering of independent steps already covered elsewhere.
    pub sleep_pruned: usize,
    /// Sibling subtrees skipped by source-set filtering: eligible threads
    /// at some decision that no reversible race ever named, so scheduling
    /// them there could only reorder independent steps. Zero under
    /// [`DporMode::Sleep`], which branches on every eligible sibling.
    pub dpor_pruned: usize,
    /// Wakeup-sequence nodes stored under [`DporMode::Tree`]: the total
    /// length of all forced reversal prefixes planted at backtrack points.
    pub wakeup_tree_nodes: usize,
    /// True when the bounded schedule space was fully explored rather than
    /// stopped at `max_runs`.
    pub complete: bool,
    /// Deepest schedule reached, in steps.
    pub max_depth: usize,
}

impl Stats {
    /// Order-insensitive merge for parallel exploration: counters add,
    /// depth maxes, completeness ands.
    fn absorb(&mut self, other: Stats) {
        self.runs += other.runs;
        self.pruned += other.pruned;
        self.sleep_pruned += other.sleep_pruned;
        self.dpor_pruned += other.dpor_pruned;
        self.wakeup_tree_nodes += other.wakeup_tree_nodes;
        self.complete &= other.complete;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// Result of checking a program.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// No schedule within the bounds produced a violation.
    Passed(Stats),
    /// A schedule was found under which every unfinished thread is blocked.
    Deadlock {
        /// The thread choices, step by step, that reproduce the deadlock.
        schedule: Vec<usize>,
        /// Which threads were blocked, on which address (spinners and
        /// futex-parked threads alike).
        blocked: Vec<(usize, Addr)>,
        /// Statistics up to discovery.
        stats: Stats,
    },
    /// A schedule was found under which every unfinished thread is parked
    /// in a futex wait with no thread left to wake it — the **lost
    /// wakeup**, the bug class the futex's atomic compare-and-block
    /// exists to prevent. Distinguished from [`Verdict::Deadlock`]
    /// because the fix differs: a deadlock is a cyclic wait, a lost
    /// wakeup is a wake issued before the sleeper committed to sleeping
    /// (or never issued at all).
    LostWakeup {
        /// The thread choices, step by step, that reproduce the hang.
        schedule: Vec<usize>,
        /// Which threads were parked, on which address.
        parked: Vec<(usize, Addr)>,
        /// Statistics up to discovery.
        stats: Stats,
    },
    /// An in-program assertion or the final-state invariant failed.
    Violation {
        /// The thread choices, step by step, that reproduce the failure.
        schedule: Vec<usize>,
        /// The assertion / invariant message.
        message: String,
        /// Statistics up to discovery.
        stats: Stats,
    },
    /// Two data accesses were happens-before concurrent under some
    /// schedule — a data race, regardless of the final state.
    Race {
        /// The thread choices, step by step, that reproduce the race.
        schedule: Vec<usize>,
        /// Both access sites and the word involved.
        report: RaceReport,
        /// Statistics up to discovery.
        stats: Stats,
    },
    /// A waiter was bypassed more than the configured bound allows while
    /// other threads kept acquiring the lock (starvation / unbounded
    /// bypass).
    Starvation {
        /// The thread choices, step by step, that reproduce the bypasses.
        schedule: Vec<usize>,
        /// Victim, lock and bypass count.
        report: StarvationReport,
        /// Statistics up to discovery.
        stats: Stats,
    },
}

impl Verdict {
    /// True for every verdict except [`Verdict::Passed`].
    pub fn is_violation(&self) -> bool {
        !matches!(self, Verdict::Passed(_))
    }

    /// The statistics regardless of outcome.
    pub fn stats(&self) -> Stats {
        match self {
            Verdict::Passed(s) => *s,
            Verdict::Deadlock { stats, .. }
            | Verdict::LostWakeup { stats, .. }
            | Verdict::Violation { stats, .. }
            | Verdict::Race { stats, .. }
            | Verdict::Starvation { stats, .. } => *stats,
        }
    }

    /// The reproducing schedule, when the verdict carries one.
    pub fn schedule(&self) -> Option<&[usize]> {
        match self {
            Verdict::Passed(_) => None,
            Verdict::Deadlock { schedule, .. }
            | Verdict::LostWakeup { schedule, .. }
            | Verdict::Violation { schedule, .. }
            | Verdict::Race { schedule, .. }
            | Verdict::Starvation { schedule, .. } => Some(schedule),
        }
    }

    /// Replaces the carried statistics (parallel merge rewrites a task's
    /// local stats with the deterministic task-order aggregate).
    fn with_stats(mut self, stats: Stats) -> Verdict {
        match &mut self {
            Verdict::Passed(s) => *s = stats,
            Verdict::Deadlock { stats: s, .. }
            | Verdict::LostWakeup { stats: s, .. }
            | Verdict::Violation { stats: s, .. }
            | Verdict::Race { stats: s, .. }
            | Verdict::Starvation { stats: s, .. } => *s = stats,
        }
        self
    }

    /// Panics with a readable report if the verdict is a violation.
    pub fn expect_pass(&self, what: &str) {
        match self {
            Verdict::Passed(_) => {}
            Verdict::Deadlock {
                schedule, blocked, ..
            } => panic!("{what}: deadlock under schedule {schedule:?}; blocked: {blocked:?}"),
            Verdict::LostWakeup {
                schedule, parked, ..
            } => panic!("{what}: lost wakeup under schedule {schedule:?}; parked: {parked:?}"),
            Verdict::Violation {
                schedule, message, ..
            } => panic!("{what}: violation under schedule {schedule:?}: {message}"),
            Verdict::Race {
                schedule, report, ..
            } => panic!("{what}: {report} under schedule {schedule:?}"),
            Verdict::Starvation {
                schedule, report, ..
            } => panic!("{what}: {report} under schedule {schedule:?}"),
        }
    }
}

/// One scheduling decision in a trace, with the alternatives that existed.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// Branchable choices at this point: enabled threads not in the sleep
    /// set (all enabled threads when reduction is off), in id order.
    eligible: Vec<usize>,
    /// Bitmask of *all* enabled threads here, sleeping or not — backtrack
    /// insertion must distinguish "asleep" (covered elsewhere) from
    /// "disabled" (needs the conservative fallback).
    enabled: u64,
    chosen: usize,
    /// The operation `chosen` executed at this step (its pending op at
    /// grant time) — the input to the dependence-clock race analysis.
    op: Option<OpMeta>,
    /// Bitmask over thread ids already tried at this point.
    tried: u64,
    /// Threads worth exploring here. Sleep/no-reduction modes seed this
    /// with every eligible thread; source/tree modes seed it with `chosen`
    /// alone and grow it only where race analysis plants backtrack points.
    backtrack: u64,
    /// Wakeup sequences planted here (tree mode): full reversed traces to
    /// replay as forced prefixes, thread id per step, head first.
    wakeups: Vec<Vec<usize>>,
    /// Thread that took the previous step (None at step 0).
    prev: Option<usize>,
    /// Preemptions accumulated strictly before this step.
    preempts_before: usize,
}

impl Frame {
    fn is_preemption(&self, choice: usize) -> bool {
        match self.prev {
            Some(prev) => prev != choice && self.eligible.contains(&prev),
            None => false,
        }
    }

    fn preempts_after(&self) -> usize {
        self.preempts_before + usize::from(self.is_preemption(self.chosen))
    }

    /// Sibling choices fully explored before the current one — the seed of
    /// the child's sleep set when this frame is replayed.
    fn done_mask(&self) -> u64 {
        self.tried & !(1u64 << self.chosen)
    }

    fn eligible_mask(&self) -> u64 {
        self.eligible.iter().fold(0u64, |m, &t| m | (1u64 << t))
    }

    /// Respects the preemption bound for choosing `choice` at this frame.
    fn budget_ok(&self, bound: Option<usize>, choice: usize) -> bool {
        match bound {
            None => true,
            Some(k) => self.preempts_before + usize::from(self.is_preemption(choice)) <= k,
        }
    }
}

/// How one execution ended.
#[derive(Debug)]
pub(crate) enum RunEnd {
    Complete(Vec<Word>),
    Pruned,
    /// Every enabled thread was asleep: all continuations are reorderings
    /// of independent steps covered by sibling branches.
    SleepBlocked,
    Deadlock(Vec<(usize, Addr)>),
    /// Every unfinished thread was futex-parked with nobody left to wake it.
    LostWakeup(Vec<(usize, Addr)>),
    Panic(String),
    Race(RaceReport),
    Starvation(StarvationReport),
    /// A prefix choice was not eligible at its step. Unreachable during
    /// exploration (prefixes extend explored traces); reachable from
    /// [`Explorer::replay`], whose schedule is caller-supplied.
    Diverged { step: usize, choice: usize },
}

/// Outcome of one execution: the trace of decisions plus the ending.
pub(crate) struct RunOutcome {
    pub(crate) trace: Vec<Frame>,
    pub(crate) end: RunEnd,
    /// Per-step op log (only when requested, i.e. during replay).
    pub(crate) ops: Vec<OpRecord>,
}

impl RunOutcome {
    /// The thread choice taken at each step, in order.
    pub(crate) fn schedule(&self) -> Vec<usize> {
        self.trace.iter().map(|f| f.chosen).collect()
    }
}

/// An external schedule chooser, called as `(step, eligible, prev) -> chosen`.
pub(crate) type ExternalChooser<'a> = &'a mut dyn FnMut(usize, &[usize], Option<usize>) -> usize;

/// How one execution picks the next thread; see [`Explorer::execute_with`].
pub(crate) enum Policy<'a> {
    /// Follow a decision prefix (choice plus fully-explored sibling mask
    /// per step), then the default policy (stay on the previous thread,
    /// else lowest id). Sleep-set reduction applies when enabled.
    Dfs {
        /// `(chosen, done_mask)` per already-decided step.
        prefix: &'a [(usize, u64)],
    },
    /// Delegate every decision to an external chooser called as
    /// `(step, eligible, prev) -> chosen`. Sleep-set reduction is ignored:
    /// a sampler must see the full enabled set, and the sleep-set
    /// soundness argument (sibling branches cover the reorderings) does
    /// not hold for a random walk that never explores siblings.
    External(ExternalChooser<'a>),
}

/// How a replayed schedule ended; see [`Explorer::replay`].
#[derive(Debug, Clone)]
pub enum ReplayEnd {
    /// All threads finished; final memory attached.
    Complete(Vec<Word>),
    /// The step limit was hit before the program finished.
    StepLimit,
    /// Every unfinished thread was blocked.
    Deadlock(Vec<(usize, Addr)>),
    /// Every unfinished thread was futex-parked with nobody left to wake
    /// it: a lost wakeup.
    LostWakeup(Vec<(usize, Addr)>),
    /// An in-program assertion failed.
    Panic(String),
    /// The race detector fired.
    Race(RaceReport),
    /// The bypass bound was exceeded.
    Starvation(StarvationReport),
    /// The schedule named a thread that was not runnable at that step —
    /// it is not a schedule this program can produce (wrong thread count,
    /// edited by hand, or recorded from a different program).
    Diverged {
        /// The step at which the schedule stopped making sense.
        step: usize,
        /// The thread it asked for.
        choice: usize,
    },
}

/// A deterministic re-execution of a recorded schedule, with the full
/// operation log.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The thread choice actually taken at each step.
    pub schedule: Vec<usize>,
    /// Every operation executed, in order.
    pub ops: Vec<OpRecord>,
    /// How the re-execution ended.
    pub end: ReplayEnd,
}

impl Replay {
    /// Human-readable narration of the replay, one line per operation.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for op in &self.ops {
            let _ = writeln!(out, "{op}");
        }
        match &self.end {
            ReplayEnd::Complete(mem) => {
                let _ = writeln!(out, "completed; final memory = {mem:?}");
            }
            ReplayEnd::StepLimit => {
                let _ = writeln!(out, "stopped at step limit");
            }
            ReplayEnd::Deadlock(blocked) => {
                let _ = writeln!(out, "deadlock; blocked: {blocked:?}");
            }
            ReplayEnd::LostWakeup(parked) => {
                let _ = writeln!(out, "lost wakeup; parked: {parked:?}");
            }
            ReplayEnd::Panic(msg) => {
                let _ = writeln!(out, "panic: {msg}");
            }
            ReplayEnd::Race(r) => {
                let _ = writeln!(out, "{r}");
            }
            ReplayEnd::Starvation(s) => {
                let _ = writeln!(out, "{s}");
            }
            ReplayEnd::Diverged { step, choice } => {
                let _ = writeln!(
                    out,
                    "schedule diverged at step {step}: thread {choice} is not \
                     runnable there (not a schedule of this program)"
                );
            }
        }
        out
    }
}

/// The depth-first schedule explorer.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Abandon any single execution after this many steps (livelock guard).
    pub max_steps: usize,
    /// Stop exploring after this many executions (completeness then lost).
    pub max_runs: usize,
    /// Maximum involuntary context switches per schedule; `None` = unbounded
    /// (true exhaustive search — explodes beyond toy programs).
    pub preemption_bound: Option<usize>,
    /// Which dynamic partial-order reduction to run with.
    pub dpor: DporMode,
    /// Fail runs in which a lock waiter is bypassed more than this many
    /// times (requires an instrumented lock emitting lock events).
    pub bypass_bound: Option<usize>,
}

impl Explorer {
    /// Full DFS with no preemption bound; only viable for small programs.
    /// Retry-loop algorithms (plain test-and-set) have unbounded schedule
    /// trees — use [`Explorer::bounded`] for those. Runs with source-set
    /// reduction, the strongest mode that never wastes a forced replay.
    pub fn exhaustive() -> Self {
        Explorer {
            max_steps: 150,
            max_runs: 50_000,
            preemption_bound: None,
            dpor: DporMode::Source,
            bypass_bound: None,
        }
    }

    /// DFS restricted to schedules with at most `k` preemptions — the
    /// practical mode for whole-lock checking. Runs with sleep sets only:
    /// a preemption bound already makes the search heuristic, and source
    /// sets would plant backtrack points the bound then refuses to take,
    /// narrowing the bounded search in harder-to-predict ways.
    pub fn bounded(k: usize) -> Self {
        Explorer {
            max_steps: 150,
            max_runs: 20_000,
            preemption_bound: Some(k),
            dpor: DporMode::Sleep,
            bypass_bound: None,
        }
    }

    /// Adjusts the per-execution step limit.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Adjusts the execution budget.
    pub fn with_max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// Selects the partial-order-reduction mode.
    pub fn with_dpor(mut self, mode: DporMode) -> Self {
        self.dpor = mode;
        self
    }

    /// Disables partial-order reduction entirely — sleep sets, source
    /// sets and wakeup trees — for measuring their effect.
    pub fn without_reduction(mut self) -> Self {
        self.dpor = DporMode::None;
        self
    }

    /// Fails any run in which a waiter on an instrumented lock is bypassed
    /// more than `k` times (bounded-bypass / starvation checking).
    pub fn with_bypass_bound(mut self, k: usize) -> Self {
        self.bypass_bound = Some(k);
        self
    }

    /// Sleep sets (and their source-set / wakeup-tree refinements)
    /// identify schedules that differ only in the order of independent
    /// operations — sound for races, deadlocks and final states, all
    /// invariant under such reorderings. Bypass counts are not: lock
    /// events attach to operations on unrelated words, so two "equivalent"
    /// schedules can differ in who overtook whom. Starvation checking
    /// therefore runs unreduced.
    fn normalized(&self) -> Explorer {
        let mut me = *self;
        if me.bypass_bound.is_some() {
            me.dpor = DporMode::None;
        }
        me
    }

    /// Explores the program's schedules; `final_check` validates the final
    /// memory of every completed execution.
    pub fn check<F>(&self, program: &Program, final_check: F) -> Verdict
    where
        F: Fn(&[Word]) -> Result<(), String>,
    {
        self.normalized().explore(
            program,
            &final_check,
            Vec::new(),
            Stats {
                complete: true,
                ..Stats::default()
            },
        )
    }

    /// The exploration loop, rooted at a fixed decision prefix `stack`
    /// (empty for [`Explorer::check`]; a fan-out task prefix for
    /// [`Explorer::check_parallel`]). Frames at or below the root prefix
    /// are never branched on — their siblings belong to other tasks.
    fn explore<F>(
        &self,
        program: &Program,
        final_check: &F,
        mut stack: Vec<Frame>,
        mut stats: Stats,
    ) -> Verdict
    where
        F: Fn(&[Word]) -> Result<(), String>,
    {
        let base_len = stack.len();
        // Forced continuation past the stack: the tail of a wakeup
        // sequence being replayed (tree mode only).
        let mut forced: Vec<usize> = Vec::new();
        loop {
            if stats.runs >= self.max_runs {
                stats.complete = false;
                return Verdict::Passed(stats);
            }
            let mut prefix: Vec<(usize, u64)> =
                stack.iter().map(|f| (f.chosen, f.done_mask())).collect();
            prefix.extend(forced.iter().map(|&t| (t, 0)));
            let outcome = self.execute(program, &prefix, false);
            stats.runs += 1;
            stats.max_depth = stats.max_depth.max(outcome.trace.len());

            if let RunEnd::Diverged { step, choice } = outcome.end {
                // Only a forced wakeup tail can diverge: stack prefixes
                // replay decisions the explorer itself took, but a stored
                // reversal was recorded in a sibling branch and its late
                // steps can lose eligibility in this one. Drop the
                // unexecutable tail and let the run continue freely.
                assert!(
                    step >= stack.len(),
                    "exploration prefix chose ineligible thread {choice} at step {step}"
                );
                forced.truncate(step - stack.len());
                continue;
            }

            // Adopt the decisions taken beyond the replayed prefix, and
            // refresh the prefix frames' observed operations: a backtrack
            // rewrote `chosen` on its target frame, so the op recorded
            // when the *previous* choice ran there is stale until this
            // re-execution observes the new thread's pending op.
            let analyzed_len = stack.len();
            for (idx, f) in outcome.trace.into_iter().enumerate() {
                if idx < analyzed_len {
                    debug_assert_eq!(stack[idx].chosen, f.chosen, "prefix replays verbatim");
                    stack[idx].op = f.op;
                } else {
                    stack.push(f);
                }
            }
            forced.clear();
            let schedule: Vec<usize> = stack.iter().map(|f| f.chosen).collect();

            match outcome.end {
                RunEnd::Complete(memory) => {
                    if let Err(message) = final_check(&memory) {
                        return Verdict::Violation {
                            schedule,
                            message,
                            stats,
                        };
                    }
                }
                RunEnd::Pruned => stats.pruned += 1,
                RunEnd::SleepBlocked => stats.sleep_pruned += 1,
                RunEnd::Deadlock(blocked) => {
                    return Verdict::Deadlock {
                        schedule,
                        blocked,
                        stats,
                    }
                }
                RunEnd::LostWakeup(parked) => {
                    return Verdict::LostWakeup {
                        schedule,
                        parked,
                        stats,
                    }
                }
                RunEnd::Panic(message) => {
                    return Verdict::Violation {
                        schedule,
                        message,
                        stats,
                    }
                }
                RunEnd::Race(report) => {
                    return Verdict::Race {
                        schedule,
                        report,
                        stats,
                    }
                }
                RunEnd::Diverged { .. } => unreachable!("handled above"),
                RunEnd::Starvation(report) => {
                    return Verdict::Starvation {
                        schedule,
                        report,
                        stats,
                    }
                }
            }

            // Source-set analysis: replay the run through the dependence
            // clocks; every reversible race (i, j) with j among the
            // newly-adopted steps plants a backtrack point at frame i.
            // Races wholly inside the replayed prefix were analysed when
            // those steps were first adopted (the replay is deterministic,
            // so the clocks agree run over run).
            if self.dpor.analyses_races() {
                // The last replayed frame is the backtrack target whose
                // `chosen` this run rewrote: it has not been analysed
                // under its new operation yet, so insertion starts one
                // frame before the adopted suffix. (Re-running an
                // insertion is harmless — the covered-check makes it a
                // no-op.) Everything earlier replays verbatim and was
                // analysed when first adopted.
                let insert_from = analyzed_len.saturating_sub(1).max(base_len);
                let mut an = DporAnalysis::new(program.nthreads);
                for j in 0..stack.len() {
                    let races = an.push_step(stack[j].chosen, stack[j].op);
                    if j < insert_from {
                        continue;
                    }
                    for i in races {
                        if i >= base_len {
                            self.insert_backtrack(&mut stack, &an, i, j, &mut stats);
                        }
                        // Races into the root prefix are covered by the
                        // fan-out's full sibling expansion there.
                    }
                }
            }

            // Backtrack: advance the deepest frame with an untried,
            // bound-respecting backtrack choice (every eligible sibling in
            // sleep/none modes); drop exhausted frames, but never branch
            // at or below the task root.
            loop {
                if stack.len() <= base_len {
                    return Verdict::Passed(stats);
                }
                let bound = self.preemption_bound;
                let top = stack.last_mut().expect("stack nonempty");
                // Wakeup sequences whose head was meanwhile explored are
                // covered by that completed sibling subtree.
                top.wakeups.retain(|w| top.tried & (1 << w[0]) == 0);
                if let Some(x) = top
                    .wakeups
                    .iter()
                    .position(|w| top.budget_ok(bound, w[0]))
                {
                    let w = top.wakeups.remove(x);
                    top.tried |= 1 << w[0];
                    top.chosen = w[0];
                    forced = w[1..].to_vec();
                    break;
                }
                let next = top.eligible.iter().copied().find(|&c| {
                    top.tried & (1 << c) == 0
                        && top.backtrack & (1 << c) != 0
                        && top.budget_ok(bound, c)
                });
                match next {
                    Some(c) => {
                        top.tried |= 1 << c;
                        top.chosen = c;
                        forced.clear();
                        break;
                    }
                    None => {
                        stats.dpor_pruned += top
                            .eligible
                            .iter()
                            .filter(|&&c| {
                                top.tried & (1 << c) == 0 && top.backtrack & (1 << c) == 0
                            })
                            .count();
                        stack.pop();
                    }
                }
            }
        }
    }

    /// Plants a backtrack point for the reversible race `(i, j)`:
    /// computes `v = notdep(i, E)·proc(j)` (the shortest continuation from
    /// just before step `i` that runs the race the other way around), its
    /// initial threads, and — unless an initial is already in frame `i`'s
    /// backtrack set — adds one, plus the full sequence in tree mode.
    fn insert_backtrack(
        &self,
        stack: &mut [Frame],
        an: &DporAnalysis,
        i: usize,
        j: usize,
        stats: &mut Stats,
    ) {
        // The events between i and j that do NOT happen-after step i: they
        // stay executable when step i is postponed.
        let v: Vec<usize> = ((i + 1)..j).filter(|&k| !an.hb(i, k)).collect();
        // Initial threads of v·proc(j): a thread whose first event in the
        // sequence has no happens-before predecessor inside it can start
        // the reversed trace. For events of v this reduces to "no earlier
        // v-event is directly dependent with it" (its program-order
        // predecessors are outside v). Step j itself can additionally be
        // ordered through events *outside* v (they all happen-after i and
        // before j), which its full clock knows about.
        let mut seen: u64 = 0;
        let mut initials: u64 = 0;
        for (x, &k) in v.iter().enumerate() {
            let t = an.tid(k);
            if seen & (1 << t) != 0 {
                continue;
            }
            seen |= 1 << t;
            if v[..x].iter().all(|&f| !an.steps_dependent(f, k)) {
                initials |= 1 << t;
            }
        }
        let tj = an.tid(j);
        if seen & (1 << tj) == 0 && v.iter().all(|&f| !an.hb(f, j)) {
            initials |= 1 << tj;
        }
        debug_assert!(initials != 0, "v's first event is always initial");

        let frame = &mut stack[i];
        if frame.backtrack & initials != 0 {
            return; // some initial is already scheduled for exploration
        }
        let eligible = frame.eligible_mask();
        match self.dpor {
            DporMode::Tree => {
                // The stored sequence must start with v's own first event;
                // its thread is an initial by construction.
                let head = v.first().map(|&k| an.tid(k)).unwrap_or(tj);
                if eligible & (1 << head) != 0 {
                    let seq: Vec<usize> =
                        v.iter().map(|&k| an.tid(k)).chain(std::iter::once(tj)).collect();
                    frame.backtrack |= 1 << head;
                    stats.wakeup_tree_nodes += seq.len();
                    frame.wakeups.push(seq);
                } else if frame.enabled & (1 << head) == 0 {
                    // Not even enabled at i: fall back to exploring every
                    // eligible sibling (classic conservative backtrack).
                    frame.backtrack |= eligible;
                }
                // Enabled but asleep: the trace is covered by the sibling
                // branch whose exploration put the thread to sleep.
            }
            _ => {
                // Source mode: prefer the racing thread, else the lowest
                // eligible initial, else any enabled (asleep ⇒ covered),
                // else the conservative every-sibling fallback.
                let pick = if initials & eligible & (1 << tj) != 0 {
                    Some(tj)
                } else {
                    (0..an.nthreads()).find(|&t| initials & eligible & (1 << t) != 0)
                };
                match pick {
                    Some(q) => frame.backtrack |= 1 << q,
                    None => {
                        if initials & frame.enabled == 0 {
                            frame.backtrack |= eligible;
                        }
                    }
                }
            }
        }
    }

    /// Like [`Explorer::check`], but explores with `workers` host threads.
    ///
    /// The result is **independent of the worker count**: a deterministic
    /// serial fan-out first enumerates every decision prefix of depth
    /// [`DPOR_SPLIT_DEPTH`] under sleep-set semantics (full sibling
    /// expansion, so no backtrack point ever needs to cross a task
    /// boundary), workers then explore those subtree tasks in any order,
    /// and the merge walks tasks in fan-out order — summing [`Stats`] and
    /// reporting the violation from the earliest task that found one.
    /// Workers racing past a known earlier violation only *skip* work;
    /// they can never change which verdict wins. `max_runs` applies per
    /// task.
    pub fn check_parallel<F>(&self, program: &Program, final_check: F, workers: usize) -> Verdict
    where
        F: Fn(&[Word]) -> Result<(), String> + Sync,
    {
        let me = self.normalized();
        let workers = workers.max(1);
        let (tasks, gen_stats) = me.fan_out(program, DPOR_SPLIT_DEPTH.min(me.max_steps));
        let slots: Vec<Mutex<Option<Verdict>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Lowest task index known to hold a violation; tasks after it are
        // skippable (their verdicts would lose the task-order merge).
        let first_bad = AtomicUsize::new(usize::MAX);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(tasks.len().max(1)) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= tasks.len() {
                        break;
                    }
                    if idx > first_bad.load(Ordering::Acquire) {
                        continue;
                    }
                    let v = me.explore(
                        program,
                        &final_check,
                        tasks[idx].clone(),
                        Stats {
                            complete: true,
                            ..Stats::default()
                        },
                    );
                    if !matches!(v, Verdict::Passed(_)) {
                        first_bad.fetch_min(idx, Ordering::AcqRel);
                    }
                    *slots[idx].lock().unwrap() = Some(v);
                });
            }
        });
        let mut stats = gen_stats;
        for slot in slots {
            let v = slot
                .into_inner()
                .unwrap()
                .expect("tasks at or before the first violation always complete");
            let violation = !matches!(v, Verdict::Passed(_));
            stats.absorb(v.stats());
            if violation {
                return v.with_stats(stats);
            }
        }
        Verdict::Passed(stats)
    }

    /// Enumerates every decision prefix of length ≤ `depth` as a task for
    /// [`Explorer::check_parallel`], via a sleep-set DFS truncated at
    /// `depth`. Sleep mode expands *every* eligible sibling at each of
    /// these shallow frames, so any backtrack point a task's race analysis
    /// would plant below `depth` already exists as another task — cross-
    /// task insertions can be skipped outright. Runs that end before the
    /// split depth (complete or stuck) become tasks too: phase two replays
    /// and classifies them under the full reduction mode.
    fn fan_out(&self, program: &Program, depth: usize) -> (Vec<Vec<Frame>>, Stats) {
        let mut generator = *self;
        if generator.dpor != DporMode::None {
            generator.dpor = DporMode::Sleep;
        }
        generator.max_steps = depth;
        let mut tasks: Vec<Vec<Frame>> = Vec::new();
        let mut stats = Stats {
            complete: true,
            ..Stats::default()
        };
        let mut stack: Vec<Frame> = Vec::new();
        loop {
            let prefix: Vec<(usize, u64)> =
                stack.iter().map(|f| (f.chosen, f.done_mask())).collect();
            let outcome = generator.execute(program, &prefix, false);
            stats.runs += 1;
            // Same prefix-op refresh as in `explore`: the task frames'
            // recorded ops feed phase two's race analysis.
            let replayed = stack.len();
            for (idx, f) in outcome.trace.into_iter().enumerate() {
                if idx < replayed {
                    stack[idx].op = f.op;
                } else {
                    stack.push(f);
                }
            }
            match outcome.end {
                RunEnd::SleepBlocked => stats.sleep_pruned += 1,
                RunEnd::Diverged { step, choice } => unreachable!(
                    "fan-out prefix chose ineligible thread {choice} at step {step}"
                ),
                // Pruned here just means the run reached the split depth —
                // a task boundary, not a step-limit event, so it is not
                // counted in `stats.pruned`.
                _ => tasks.push(stack.clone()),
            }
            loop {
                let Some(top) = stack.last_mut() else {
                    return (tasks, stats);
                };
                let next = top.eligible.iter().copied().find(|&c| {
                    top.tried & (1 << c) == 0 && top.budget_ok(self.preemption_bound, c)
                });
                match next {
                    Some(c) => {
                        top.tried |= 1 << c;
                        top.chosen = c;
                        break;
                    }
                    None => {
                        stack.pop();
                    }
                }
            }
        }
    }

    /// Deterministically re-executes a recorded schedule (from
    /// [`Verdict::schedule`]), returning the per-step operation log and the
    /// ending. Past the end of `schedule` the default policy continues
    /// (stay on the previous thread, else lowest-id enabled), so a
    /// truncated schedule still replays meaningfully.
    pub fn replay(&self, program: &Program, schedule: &[usize]) -> Replay {
        let prefix: Vec<(usize, u64)> = schedule.iter().map(|&c| (c, 0)).collect();
        // Reduction must not cut a forced replay short.
        let mut one_shot = *self;
        one_shot.dpor = DporMode::None;
        let outcome = one_shot.execute(program, &prefix, true);
        let end = match outcome.end {
            RunEnd::Complete(memory) => ReplayEnd::Complete(memory),
            RunEnd::Pruned => ReplayEnd::StepLimit,
            RunEnd::SleepBlocked => unreachable!("replay runs without reduction"),
            RunEnd::Deadlock(blocked) => ReplayEnd::Deadlock(blocked),
            RunEnd::LostWakeup(parked) => ReplayEnd::LostWakeup(parked),
            RunEnd::Panic(msg) => ReplayEnd::Panic(msg),
            RunEnd::Race(r) => ReplayEnd::Race(r),
            RunEnd::Starvation(s) => ReplayEnd::Starvation(s),
            RunEnd::Diverged { step, choice } => ReplayEnd::Diverged { step, choice },
        };
        Replay {
            schedule: outcome.trace.iter().map(|f| f.chosen).collect(),
            ops: outcome.ops,
            end,
        }
    }

    /// One execution following `prefix` (thread choice plus the sibling
    /// set already fully explored at that decision), then the default
    /// policy (continue the previous thread when eligible, else the
    /// lowest-id eligible thread).
    fn execute(&self, program: &Program, prefix: &[(usize, u64)], record_ops: bool) -> RunOutcome {
        self.execute_with(program, Policy::Dfs { prefix }, record_ops)
    }

    /// One execution under an arbitrary scheduling policy. This is the
    /// single scheduler loop every mode shares: DFS exploration and replay
    /// run it with [`Policy::Dfs`], the random fuzzer ([`crate::fuzz`])
    /// with [`Policy::External`] — so park/unpark semantics, the race
    /// detector, lockdep, and bypass accounting behave identically under
    /// exhaustive search and random sampling.
    pub(crate) fn execute_with(
        &self,
        program: &Program,
        mut policy: Policy<'_>,
        record_ops: bool,
    ) -> RunOutcome {
        let cfg = RunCfg {
            bypass_bound: self.bypass_bound,
            lockdep: program.lockdep.clone(),
            record_ops,
        };
        let rs = RunState::new(program.initial_memory(), program.nthreads, cfg);
        let mut trace: Vec<Frame> = Vec::new();
        // Threads enabled-but-asleep at the current state: scheduling them
        // here is covered by an already-explored sibling branch. Replayed
        // deterministically from the prefix's done-masks.
        let mut sleep: u64 = 0;
        let reduction = self.dpor != DporMode::None && matches!(policy, Policy::Dfs { .. });

        let end = std::thread::scope(|scope| {
            for pid in 0..program.nthreads {
                let rs = std::sync::Arc::clone(&rs);
                let program = &*program;
                scope.spawn(move || program.run_thread(pid, rs));
            }

            let mut g = rs.mu.lock().unwrap();
            loop {
                // Wait for quiescence: nobody mid-step, grant consumed.
                while g.grant.is_some()
                    || g.states.iter().any(|s| matches!(s, TState::Running))
                {
                    g = rs.cv.wait(g).unwrap();
                }
                if let Some(report) = g.race_report.take() {
                    g.aborted = true;
                    rs.cv.notify_all();
                    break RunEnd::Race(report);
                }
                if let Some(msg) = g.panic_msg.take() {
                    g.aborted = true;
                    rs.cv.notify_all();
                    break RunEnd::Panic(msg);
                }
                if let Some(report) = g.starvation.take() {
                    g.aborted = true;
                    rs.cv.notify_all();
                    break RunEnd::Starvation(report);
                }
                // Unblock spinners whose predicate now holds. Futex-parked
                // threads are NOT touched here: only an explicit wake
                // re-readies them — that asymmetry is what lets the
                // explorer see lost wakeups as hangs.
                for pid in 0..program.nthreads {
                    if let TState::Blocked(addr, pred) = g.states[pid] {
                        if pred.satisfied(g.memory[addr]) {
                            g.states[pid] = TState::Ready;
                        }
                    }
                }
                let enabled: Vec<usize> = (0..program.nthreads)
                    .filter(|&p| g.states[p] == TState::Ready)
                    .collect();
                if enabled.is_empty() {
                    let blocked: Vec<(usize, Addr)> = (0..program.nthreads)
                        .filter_map(|p| match g.states[p] {
                            TState::Blocked(a, _) => Some((p, a)),
                            _ => None,
                        })
                        .collect();
                    let parked: Vec<(usize, Addr)> = (0..program.nthreads)
                        .filter_map(|p| match g.states[p] {
                            TState::Parked(a) => Some((p, a)),
                            _ => None,
                        })
                        .collect();
                    g.aborted = true;
                    rs.cv.notify_all();
                    // Pure futex hang → lost wakeup; any spinner in the
                    // mix → deadlock, listing every stuck thread (the
                    // spinners are what a waker would have to get past).
                    break if blocked.is_empty() && parked.is_empty() {
                        RunEnd::Complete(g.memory.clone())
                    } else if blocked.is_empty() {
                        RunEnd::LostWakeup(parked)
                    } else {
                        let mut all = blocked;
                        all.extend(parked);
                        RunEnd::Deadlock(all)
                    };
                }
                if trace.len() >= self.max_steps {
                    g.aborted = true;
                    rs.cv.notify_all();
                    break RunEnd::Pruned;
                }

                let enabled_mask = enabled.iter().fold(0u64, |m, &t| m | (1u64 << t));
                let eligible: Vec<usize> = if reduction {
                    enabled
                        .iter()
                        .copied()
                        .filter(|&p| sleep & (1 << p) == 0)
                        .collect()
                } else {
                    enabled
                };
                if eligible.is_empty() {
                    // All enabled threads are asleep: every continuation
                    // reorders independent steps of schedules explored in
                    // sibling branches.
                    g.aborted = true;
                    rs.cv.notify_all();
                    break RunEnd::SleepBlocked;
                }

                let step = trace.len();
                let prev = trace.last().map(|f: &Frame| f.chosen);
                let preempts_before = trace.last().map(|f| f.preempts_after()).unwrap_or(0);
                let (chosen, done) = match &mut policy {
                    Policy::Dfs { prefix } => {
                        let chosen = if step < prefix.len() {
                            let choice = prefix[step].0;
                            if !eligible.contains(&choice) {
                                // Granting an ineligible thread would wedge
                                // the run: nobody consumes the grant, the
                                // scheduler waits forever. Only caller-
                                // supplied replay schedules can get here.
                                g.aborted = true;
                                rs.cv.notify_all();
                                break RunEnd::Diverged { step, choice };
                            }
                            choice
                        } else {
                            // Default: stay on the same thread (zero
                            // preemptions).
                            match prev {
                                Some(p) if eligible.contains(&p) => p,
                                _ => eligible[0],
                            }
                        };
                        let done = if step < prefix.len() { prefix[step].1 } else { 0 };
                        (chosen, done)
                    }
                    Policy::External(choose) => {
                        let choice = choose(step, &eligible, prev);
                        if !eligible.contains(&choice) {
                            // A chooser bug must not wedge the run; surface
                            // it the same way a bad replay schedule would.
                            g.aborted = true;
                            rs.cv.notify_all();
                            break RunEnd::Diverged { step, choice };
                        }
                        (choice, 0)
                    }
                };

                if reduction {
                    // Sleep-set transition: siblings fully explored at
                    // this decision go to sleep; anything whose pending op
                    // is dependent on the chosen op wakes up.
                    let mut next = (sleep | done) & !(1u64 << chosen);
                    match g.pending[chosen] {
                        Some(chosen_op) => {
                            let mut bits = next;
                            while bits != 0 {
                                let u = bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                let wake = match g.pending[u] {
                                    Some(m) => m.dependent(chosen_op),
                                    // Unknown pending op: wake it (no
                                    // pruning — always safe).
                                    None => true,
                                };
                                if wake {
                                    next &= !(1u64 << u);
                                }
                            }
                        }
                        None => next = 0,
                    }
                    sleep = next;
                }

                // Source/tree modes seed the backtrack set with just the
                // chosen thread; race analysis grows it on demand. Sleep
                // and no-reduction modes explore every eligible sibling.
                let eligible_bits = eligible.iter().fold(0u64, |m, &t| m | (1u64 << t));
                trace.push(Frame {
                    eligible,
                    enabled: enabled_mask,
                    chosen,
                    op: g.pending[chosen],
                    tried: 1 << chosen,
                    backtrack: if self.dpor.analyses_races() {
                        1 << chosen
                    } else {
                        eligible_bits
                    },
                    wakeups: Vec::new(),
                    prev,
                    preempts_before,
                });
                g.grant = Some(chosen);
                rs.cv.notify_all();
            }
        });

        let ops = std::mem::take(&mut rs.mu.lock().unwrap().oplog);
        RunOutcome { trace, end, ops }
    }
}

/// Depth of the serial fan-out that seeds [`Explorer::check_parallel`]:
/// every decision prefix of this length becomes one independently
/// explorable task. Three levels splits typical 2–4-thread programs into
/// tens of tasks — enough to feed 8 workers — while the generation pass
/// itself stays a negligible fraction of the search.
pub const DPOR_SPLIT_DEPTH: usize = 3;

/// Default worker count for parallel exploration when
/// `SYNCMECH_DPOR_WORKERS` is unset: serial. Exploration tasks are
/// CPU-bound and short; unlike the perf sweeps, defaulting to the host's
/// parallelism would buy little on the small exhaustive suites and make
/// `cargo test` load spiky, so opting in is explicit.
pub const DEFAULT_DPOR_WORKERS: usize = 1;

/// Host threads used by [`Explorer::check_parallel`] callers that honour
/// the environment: `SYNCMECH_DPOR_WORKERS` if set, otherwise
/// [`DEFAULT_DPOR_WORKERS`].
///
/// # Panics
///
/// If `SYNCMECH_DPOR_WORKERS` is set to anything other than a positive
/// integer. A user who sets the variable meant to control the worker
/// count; silently falling back would make a typo look like a
/// performance mystery.
pub fn dpor_workers() -> usize {
    let var = std::env::var("SYNCMECH_DPOR_WORKERS").ok();
    match dpor_workers_from(var.as_deref()) {
        Ok(n) => n,
        Err(msg) => panic!("{msg}"),
    }
}

/// The policy behind [`dpor_workers`], with the environment lookup
/// factored out for testability: `None` means the variable is unset.
pub fn dpor_workers_from(var: Option<&str>) -> Result<usize, String> {
    let Some(raw) = var else {
        return Ok(DEFAULT_DPOR_WORKERS);
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(
            "SYNCMECH_DPOR_WORKERS=0: parallel exploration needs at least one worker; \
             set a positive count, or unset the variable for the serial default"
                .to_string(),
        ),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "SYNCMECH_DPOR_WORKERS={raw:?} is not a positive integer; set a worker count \
             like 4, or unset the variable for the serial default"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::SyncCtx;

    #[test]
    fn finds_lost_update_with_plain_load_store() {
        let program = Program::new(2, 1, |ctx| {
            let v = ctx.load(0);
            ctx.store(0, v + 1);
        });
        let verdict = Explorer::exhaustive().check(&program, |mem| {
            if mem[0] == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter = {}", mem[0]))
            }
        });
        assert!(verdict.is_violation(), "must find the classic race");
    }

    #[test]
    fn fetch_add_has_no_lost_update() {
        let program = Program::new(3, 1, |ctx| {
            ctx.fetch_add(0, 1);
        });
        let verdict = Explorer::exhaustive().check(&program, |mem| {
            if mem[0] == 3 {
                Ok(())
            } else {
                Err(format!("counter = {}", mem[0]))
            }
        });
        verdict.expect_pass("atomic counter");
        assert!(verdict.stats().complete);
    }

    #[test]
    fn detects_deadlock_with_schedule() {
        // Thread 0 waits for a flag only thread 1 can set after waiting for
        // a flag only thread 0 can set: circular wait.
        let program = Program::new(2, 2, |ctx| {
            let me = ctx.pid();
            ctx.spin_until(me, 1); // wait for my flag
            ctx.store(1 - me, 1); // then set the other's
        });
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        match verdict {
            Verdict::Deadlock { blocked, .. } => {
                assert_eq!(blocked.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn spin_until_handshake_passes() {
        let program = Program::new(2, 2, |ctx| {
            if ctx.pid() == 0 {
                ctx.store(0, 1);
                ctx.spin_until(1, 1);
            } else {
                ctx.spin_until(0, 1);
                ctx.store(1, 1);
            }
        });
        Explorer::exhaustive()
            .check(&program, |_| Ok(()))
            .expect_pass("handshake");
    }

    #[test]
    fn in_program_assert_becomes_violation() {
        let program = Program::new(2, 1, |ctx| {
            let old = ctx.swap(0, 1);
            assert_eq!(old, 0, "both threads saw the word free");
            // No release: the second thread's swap returns 1 and asserts.
        });
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        match verdict {
            Verdict::Violation { message, .. } => {
                assert!(message.contains("free"), "got: {message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn preemption_bound_zero_is_serial_schedules_only() {
        // With zero preemptions the two increments cannot interleave, so
        // the race is invisible — documenting what the bound trades away.
        let program = Program::new(2, 1, |ctx| {
            let v = ctx.load(0);
            ctx.store(0, v + 1);
        });
        let verdict = Explorer::bounded(0).check(&program, |mem| {
            if mem[0] == 2 {
                Ok(())
            } else {
                Err("lost update".into())
            }
        });
        assert!(!verdict.is_violation());
        // One preemption suffices to expose it.
        let verdict = Explorer::bounded(1).check(&program, |mem| {
            if mem[0] == 2 {
                Ok(())
            } else {
                Err("lost update".into())
            }
        });
        assert!(verdict.is_violation());
    }

    #[test]
    fn run_budget_is_respected() {
        let program = Program::new(3, 1, |ctx| {
            for _ in 0..4 {
                ctx.fetch_add(0, 1);
            }
        });
        let mut explorer = Explorer::exhaustive().without_reduction();
        explorer.max_runs = 10;
        let verdict = explorer.check(&program, |_| Ok(()));
        let stats = verdict.stats();
        assert_eq!(stats.runs, 10);
        assert!(!stats.complete);
    }

    #[test]
    fn single_thread_single_run() {
        let program = Program::new(1, 1, |ctx| {
            ctx.store(0, 7);
        });
        let verdict = Explorer::exhaustive().check(&program, |mem| {
            if mem[0] == 7 {
                Ok(())
            } else {
                Err("wrong".into())
            }
        });
        assert_eq!(verdict.stats().runs, 1);
        assert!(verdict.stats().complete);
    }

    #[test]
    fn data_race_is_reported_even_when_final_state_is_right() {
        // Both threads data-store the same value: every final state passes
        // the invariant, but the accesses are unordered — only the race
        // detector can see this.
        let program = Program::new(2, 1, |ctx| {
            ctx.data_store(0, 42);
        });
        let verdict = Explorer::exhaustive().check(&program, |mem| {
            if mem[0] == 42 {
                Ok(())
            } else {
                Err("wrong value".into())
            }
        });
        match verdict {
            Verdict::Race { report, .. } => {
                assert_eq!(report.addr, 0);
                assert!(report.prior.write && report.current.write);
            }
            other => panic!("expected race, got {other:?}"),
        }
    }

    #[test]
    fn handshake_orders_data_accesses() {
        // data write → sync store → sync spin → data read: fully ordered.
        let program = Program::new(2, 2, |ctx| {
            if ctx.pid() == 0 {
                ctx.data_store(1, 9);
                ctx.store(0, 1);
            } else {
                ctx.spin_until(0, 1);
                let v = ctx.data_load(1);
                assert_eq!(v, 9);
            }
        });
        Explorer::exhaustive()
            .check(&program, |_| Ok(()))
            .expect_pass("release/acquire handshake");
    }

    #[test]
    fn sync_accesses_alone_never_race() {
        let program = Program::new(2, 1, |ctx| {
            let v = ctx.load(0);
            ctx.store(0, v + 1);
        });
        // Lost update is a Violation (final check), never a Race: sync
        // accesses order themselves.
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        verdict.expect_pass("sync-only program has no data races");
    }

    #[test]
    fn sleep_sets_cut_runs_without_losing_the_bug() {
        let racy = || {
            Program::new(2, 2, |ctx| {
                // Touch a private word first so schedules diverge, then race.
                let me = ctx.pid();
                ctx.store(1, me as u64);
                let v = ctx.data_load(0);
                ctx.data_store(0, v + 1);
            })
        };
        let with = Explorer::exhaustive().check(&racy(), |_| Ok(()));
        let without = Explorer::exhaustive()
            .without_reduction()
            .check(&racy(), |_| Ok(()));
        assert!(with.is_violation(), "reduced search still finds the race");
        assert!(without.is_violation());
        assert!(
            with.stats().runs <= without.stats().runs,
            "reduction must not add runs: {} vs {}",
            with.stats().runs,
            without.stats().runs
        );
    }

    #[test]
    fn sleep_sets_preserve_completion_counts() {
        // Independent threads: reduction collapses the search to far fewer
        // runs while still passing.
        let indep = || {
            Program::new(3, 3, |ctx| {
                let me = ctx.pid();
                ctx.store(me, 1);
                ctx.store(me, 2);
            })
        };
        let with = Explorer::exhaustive().check(&indep(), |mem| {
            if mem.iter().all(|&v| v == 2) {
                Ok(())
            } else {
                Err("missing writes".into())
            }
        });
        with.expect_pass("independent writers");
        let without = Explorer::exhaustive().without_reduction().check(&indep(), |mem| {
            if mem.iter().all(|&v| v == 2) {
                Ok(())
            } else {
                Err("missing writes".into())
            }
        });
        without.expect_pass("independent writers");
        assert!(with.stats().complete && without.stats().complete);
        assert!(
            with.stats().runs * 2 <= without.stats().runs,
            "expected ≥2× reduction on independent writers: {} vs {}",
            with.stats().runs,
            without.stats().runs
        );
    }

    #[test]
    fn replay_reproduces_a_violation_schedule() {
        let program = Program::new(2, 1, |ctx| {
            let v = ctx.data_load(0);
            ctx.data_store(0, v + 1);
        });
        let explorer = Explorer::exhaustive();
        let verdict = explorer.check(&program, |_| Ok(()));
        let schedule = verdict.schedule().expect("racy program fails").to_vec();
        let replay = explorer.replay(&program, &schedule);
        match replay.end {
            ReplayEnd::Race(ref r) => assert_eq!(r.addr, 0),
            ref other => panic!("replay must reproduce the race, got {other:?}"),
        }
        assert!(!replay.ops.is_empty(), "replay carries the op log");
        assert!(replay.render().contains("data race"));
    }

    #[test]
    fn replay_of_a_passing_schedule_completes() {
        let program = Program::new(2, 1, |ctx| {
            ctx.fetch_add(0, 1);
        });
        let replay = Explorer::exhaustive().replay(&program, &[0, 1]);
        match replay.end {
            ReplayEnd::Complete(ref mem) => assert_eq!(mem[0], 2),
            ref other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(replay.ops.len(), 2);
    }

    #[test]
    fn futex_change_then_wake_handshake_passes() {
        // The canonical correct discipline: the waker changes the word and
        // then wakes; the waiter's compare-and-block closes the window on
        // the other side. No schedule hangs.
        let program = Program::new(2, 1, |ctx| {
            if ctx.pid() == 0 {
                let mut cur = ctx.load(0);
                while cur == 0 {
                    cur = ctx.futex_wait(0, 0);
                }
                assert_eq!(cur, 1);
            } else {
                ctx.store(0, 1);
                ctx.futex_wake(0, 1);
            }
        });
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        verdict.expect_pass("futex handshake");
        assert!(verdict.stats().complete);
    }

    #[test]
    fn missing_wake_is_reported_as_lost_wakeup() {
        // The waker changes the word but never wakes: the schedule where
        // the waiter parks first leaves it parked forever. This must be
        // reported as a lost wakeup, not a deadlock — there is no cycle.
        let program = Program::new(2, 1, |ctx| {
            if ctx.pid() == 0 {
                let mut cur = ctx.load(0);
                while cur == 0 {
                    cur = ctx.futex_wait(0, 0);
                }
            } else {
                ctx.store(0, 1); // no wake
            }
        });
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        match verdict {
            Verdict::LostWakeup {
                ref parked,
                ref schedule,
                ..
            } => {
                assert_eq!(parked, &vec![(0usize, 0usize)]);
                // The verdict's schedule must replay to the same hang.
                let replay = Explorer::exhaustive().replay(&program, schedule);
                match replay.end {
                    ReplayEnd::LostWakeup(ref p) => assert_eq!(p, &vec![(0usize, 0usize)]),
                    ref other => panic!("replay must reproduce the hang, got {other:?}"),
                }
                assert!(replay.render().contains("lost wakeup"));
            }
            other => panic!("expected lost wakeup, got {other:?}"),
        }
    }

    #[test]
    fn mixed_spin_and_park_hang_is_a_deadlock() {
        // One thread spins on a word nobody will change, the other parks on
        // a word nobody will wake: a spinner in the mix makes it a
        // deadlock, and both stuck threads are listed.
        let program = Program::new(2, 2, |ctx| {
            if ctx.pid() == 0 {
                ctx.spin_until(0, 1);
            } else {
                ctx.futex_wait(1, 0);
            }
        });
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        match verdict {
            Verdict::Deadlock { blocked, .. } => {
                assert_eq!(blocked, vec![(0, 0), (1, 1)]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn futex_wait_on_changed_word_returns_immediately() {
        let program = Program::new(1, 1, |ctx| {
            ctx.store(0, 5);
            assert_eq!(ctx.futex_wait(0, 0), 5, "compare must defeat the park");
        });
        Explorer::exhaustive()
            .check(&program, |_| Ok(()))
            .expect_pass("failed compare never parks");
    }

    #[test]
    fn replayed_wake_n_of_m_wakes_exactly_the_oldest_n() {
        // Three threads park in id order, the fourth wakes two without
        // changing the word. A hand-crafted schedule pins the park order,
        // so exactly threads 0 and 1 must resume and the youngest parker
        // (thread 2) must remain — the replay ends as its lost wakeup.
        let program = Program::new(4, 2, |ctx| {
            if ctx.pid() < 3 {
                ctx.futex_wait(0, 0);
                ctx.fetch_add(1, 1);
            } else {
                assert_eq!(ctx.futex_wake(0, 2), 2, "must wake exactly 2 of 3");
            }
        });
        // park 0, park 1, park 2, wake, resume 0, add 0, resume 1, add 1.
        let schedule = [0, 1, 2, 3, 0, 0, 1, 1];
        let replay = Explorer::exhaustive().replay(&program, &schedule);
        match replay.end {
            ReplayEnd::LostWakeup(ref parked) => {
                assert_eq!(parked, &vec![(2usize, 0usize)]);
            }
            ref other => panic!("expected thread 2 left parked, got {other:?}"),
        }
        // Both woken threads completed their increments.
        let adds = replay
            .ops
            .iter()
            .filter(|op| op.kind == crate::program::OpKind::Rmw)
            .count();
        assert_eq!(adds, 2);
        assert!(replay.render().contains("futex-wake"));
    }

    #[test]
    fn parked_thread_at_preemption_bound_zero_is_lost_wakeup() {
        // Bound 0 forbids preempting a *runnable* thread, but switching
        // away from a thread that just parked is not a preemption (it is
        // no longer eligible). The pure-park hang must therefore still be
        // reachable — and classified as a lost wakeup, not a deadlock.
        let missing_wake = || {
            Program::new(2, 1, |ctx| {
                if ctx.pid() == 0 {
                    let mut cur = ctx.load(0);
                    while cur == 0 {
                        cur = ctx.futex_wait(0, 0);
                    }
                } else {
                    ctx.store(0, 1); // no wake
                }
            })
        };
        let verdict = Explorer::bounded(0).check(&missing_wake(), |_| Ok(()));
        match verdict {
            Verdict::LostWakeup { ref parked, .. } => {
                assert_eq!(parked, &vec![(0usize, 0usize)]);
            }
            other => panic!("bound 0 must see the park hang as lost wakeup, got {other:?}"),
        }
        // Bypass-bound interaction: with_bypass_bound forces reduction off;
        // the classification must not change.
        let verdict = Explorer::bounded(0)
            .with_bypass_bound(1)
            .check(&missing_wake(), |_| Ok(()));
        assert!(
            matches!(verdict, Verdict::LostWakeup { .. }),
            "bypass-bound run misclassified the park hang: {verdict:?}"
        );
    }

    /// Three threads contending on one word plus private traffic: enough
    /// dependence structure that the reduction modes separate cleanly.
    fn contended() -> Program {
        Program::new(3, 4, |ctx| {
            let me = ctx.pid();
            ctx.store(1 + me, 1);
            let v = ctx.load(0);
            ctx.store(0, v + 1);
            ctx.store(1 + me, 2);
        })
    }

    #[test]
    fn source_sets_explore_fewer_runs_than_sleep_sets() {
        let sleep = Explorer::exhaustive()
            .with_dpor(DporMode::Sleep)
            .check(&contended(), |_| Ok(()));
        let source = Explorer::exhaustive()
            .with_dpor(DporMode::Source)
            .check(&contended(), |_| Ok(()));
        sleep.expect_pass("contended, sleep");
        source.expect_pass("contended, source");
        assert!(sleep.stats().complete && source.stats().complete);
        assert!(
            source.stats().runs < sleep.stats().runs,
            "source sets must beat sleep sets: {} vs {}",
            source.stats().runs,
            sleep.stats().runs
        );
        assert!(source.stats().dpor_pruned > 0, "source mode reports its cuts");
        assert_eq!(sleep.stats().dpor_pruned, 0, "sleep mode never dpor-prunes");
    }

    #[test]
    fn wakeup_trees_count_their_nodes() {
        let tree = Explorer::exhaustive()
            .with_dpor(DporMode::Tree)
            .check(&contended(), |_| Ok(()));
        tree.expect_pass("contended, tree");
        assert!(tree.stats().complete);
        assert!(
            tree.stats().wakeup_tree_nodes > 0,
            "a contended program grows wakeup sequences"
        );
        let sleep = Explorer::exhaustive()
            .with_dpor(DporMode::Sleep)
            .check(&contended(), |_| Ok(()));
        assert_eq!(sleep.stats().wakeup_tree_nodes, 0);
    }

    #[test]
    fn without_reduction_disables_source_and_tree_machinery_too() {
        for mode in [DporMode::Source, DporMode::Tree] {
            let v = Explorer::exhaustive()
                .with_dpor(mode)
                .without_reduction()
                .check(&contended(), |_| Ok(()));
            v.expect_pass("contended, unreduced");
            let s = v.stats();
            assert_eq!(s.sleep_pruned, 0, "no sleep sets without reduction");
            assert_eq!(s.dpor_pruned, 0, "no source-set cuts without reduction");
            assert_eq!(s.wakeup_tree_nodes, 0, "no wakeup tree without reduction");
        }
    }

    #[test]
    fn every_mode_finds_the_lost_update() {
        let racy = || {
            Program::new(2, 1, |ctx| {
                let v = ctx.load(0);
                ctx.store(0, v + 1);
            })
        };
        let check = |mem: &[Word]| {
            if mem[0] == 2 {
                Ok(())
            } else {
                Err(format!("lost update: {}", mem[0]))
            }
        };
        for mode in [DporMode::None, DporMode::Sleep, DporMode::Source, DporMode::Tree] {
            let v = Explorer::exhaustive().with_dpor(mode).check(&racy(), check);
            assert!(v.is_violation(), "{mode} must find the lost update");
        }
    }

    #[test]
    fn parallel_verdict_is_worker_count_independent() {
        // A passing program: verdict + stats must match exactly.
        let render = |workers| {
            format!(
                "{:?}",
                Explorer::exhaustive().check_parallel(&contended(), |_| Ok(()), workers)
            )
        };
        let serial = render(1);
        assert_eq!(serial, render(2), "1 vs 2 workers");
        assert_eq!(serial, render(8), "1 vs 8 workers");
    }

    #[test]
    fn parallel_violation_and_schedule_are_worker_count_independent() {
        let racy = || {
            Program::new(3, 1, |ctx| {
                let v = ctx.data_load(0);
                ctx.data_store(0, v + 1);
            })
        };
        let render = |workers| {
            format!(
                "{:?}",
                Explorer::exhaustive().check_parallel(&racy(), |_| Ok(()), workers)
            )
        };
        let serial = render(1);
        assert!(serial.contains("Race"), "the increments race: {serial}");
        assert_eq!(serial, render(2), "1 vs 2 workers");
        assert_eq!(serial, render(8), "1 vs 8 workers");
    }

    #[test]
    fn parallel_respects_bypass_normalization() {
        // Bypass accounting forces reduction off in parallel mode too.
        let v = Explorer::exhaustive()
            .with_bypass_bound(1)
            .check_parallel(&contended(), |_| Ok(()), 4);
        v.expect_pass("contended under a bypass bound");
        assert_eq!(v.stats().dpor_pruned, 0);
        assert_eq!(v.stats().sleep_pruned, 0);
    }

    #[test]
    fn dpor_mode_parses_and_displays() {
        for (name, mode) in [
            ("none", DporMode::None),
            ("sleep", DporMode::Sleep),
            ("source", DporMode::Source),
            ("tree", DporMode::Tree),
        ] {
            assert_eq!(DporMode::parse(name), Ok(mode));
            assert_eq!(format!("{mode}"), name);
        }
        assert!(DporMode::parse("optimal").is_err());
    }

    #[test]
    fn dpor_workers_env_is_validated_strictly() {
        assert_eq!(dpor_workers_from(None), Ok(DEFAULT_DPOR_WORKERS));
        assert_eq!(dpor_workers_from(Some("4")), Ok(4));
        assert_eq!(dpor_workers_from(Some(" 2 ")), Ok(2));
        let zero = dpor_workers_from(Some("0")).unwrap_err();
        assert!(zero.contains("SYNCMECH_DPOR_WORKERS=0"), "{zero}");
        let junk = dpor_workers_from(Some("fast")).unwrap_err();
        assert!(junk.contains("not a positive integer"), "{junk}");
        assert!(dpor_workers_from(Some("-1")).is_err());
        assert!(dpor_workers_from(Some("")).is_err());
    }

    #[test]
    fn replay_of_an_impossible_schedule_reports_divergence() {
        let program = Program::new(2, 1, |ctx| {
            ctx.fetch_add(0, 1);
        });
        // Thread 5 does not exist; thread 0 is finished after its one op.
        // Either way step 1 cannot honor the request.
        for schedule in [&[0usize, 5][..], &[0, 0, 1][..]] {
            let replay = Explorer::exhaustive().replay(&program, schedule);
            match replay.end {
                ReplayEnd::Diverged { step, .. } => assert_eq!(step, 1),
                ref other => panic!("expected divergence, got {other:?}"),
            }
        }
    }
}
