//! Schedule-replay depth-first exploration.

use crate::program::{Program, RunState, TState};
use memsim::{Addr, Word};

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Executions performed.
    pub runs: usize,
    /// Executions cut off at the step limit (possible livelock branches —
    /// expected for unfair schedules of retry-loop locks).
    pub pruned: usize,
    /// True when the bounded schedule space was fully explored rather than
    /// stopped at `max_runs`.
    pub complete: bool,
    /// Deepest schedule reached, in steps.
    pub max_depth: usize,
}

/// Result of checking a program.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// No schedule within the bounds produced a violation.
    Passed(Stats),
    /// A schedule was found under which every unfinished thread is blocked.
    Deadlock {
        /// The thread choices, step by step, that reproduce the deadlock.
        schedule: Vec<usize>,
        /// Which threads were blocked, on which address.
        blocked: Vec<(usize, Addr)>,
        /// Statistics up to discovery.
        stats: Stats,
    },
    /// An in-program assertion or the final-state invariant failed.
    Violation {
        /// The thread choices, step by step, that reproduce the failure.
        schedule: Vec<usize>,
        /// The assertion / invariant message.
        message: String,
        /// Statistics up to discovery.
        stats: Stats,
    },
}

impl Verdict {
    /// True for [`Verdict::Deadlock`] and [`Verdict::Violation`].
    pub fn is_violation(&self) -> bool {
        !matches!(self, Verdict::Passed(_))
    }

    /// The statistics regardless of outcome.
    pub fn stats(&self) -> Stats {
        match self {
            Verdict::Passed(s) => *s,
            Verdict::Deadlock { stats, .. } | Verdict::Violation { stats, .. } => *stats,
        }
    }

    /// Panics with a readable report if the verdict is a violation.
    pub fn expect_pass(&self, what: &str) {
        match self {
            Verdict::Passed(_) => {}
            Verdict::Deadlock {
                schedule, blocked, ..
            } => panic!("{what}: deadlock under schedule {schedule:?}; blocked: {blocked:?}"),
            Verdict::Violation {
                schedule, message, ..
            } => panic!("{what}: violation under schedule {schedule:?}: {message}"),
        }
    }
}

/// One scheduling decision in a trace, with the alternatives that existed.
#[derive(Debug, Clone)]
struct Frame {
    enabled: Vec<usize>,
    chosen: usize,
    /// Bitmask over thread ids already tried at this point.
    tried: u64,
    /// Thread that took the previous step (None at step 0).
    prev: Option<usize>,
    /// Preemptions accumulated strictly before this step.
    preempts_before: usize,
}

impl Frame {
    fn is_preemption(&self, choice: usize) -> bool {
        match self.prev {
            Some(prev) => prev != choice && self.enabled.contains(&prev),
            None => false,
        }
    }

    fn preempts_after(&self) -> usize {
        self.preempts_before + usize::from(self.is_preemption(self.chosen))
    }
}

/// How one execution ended.
#[derive(Debug)]
enum RunEnd {
    Complete(Vec<Word>),
    Pruned,
    Deadlock(Vec<(usize, Addr)>),
    Panic(String),
}

/// Outcome of one execution: the trace of decisions plus the ending.
struct RunOutcome {
    trace: Vec<Frame>,
    end: RunEnd,
}

/// The depth-first schedule explorer.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Abandon any single execution after this many steps (livelock guard).
    pub max_steps: usize,
    /// Stop exploring after this many executions (completeness then lost).
    pub max_runs: usize,
    /// Maximum involuntary context switches per schedule; `None` = unbounded
    /// (true exhaustive search — explodes beyond toy programs).
    pub preemption_bound: Option<usize>,
}

impl Explorer {
    /// Full DFS with no preemption bound; only viable for small programs.
    /// Retry-loop algorithms (plain test-and-set) have unbounded schedule
    /// trees — use [`Explorer::bounded`] for those.
    pub fn exhaustive() -> Self {
        Explorer {
            max_steps: 150,
            max_runs: 50_000,
            preemption_bound: None,
        }
    }

    /// DFS restricted to schedules with at most `k` preemptions — the
    /// practical mode for whole-lock checking.
    pub fn bounded(k: usize) -> Self {
        Explorer {
            max_steps: 150,
            max_runs: 20_000,
            preemption_bound: Some(k),
        }
    }

    /// Adjusts the per-execution step limit.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Adjusts the execution budget.
    pub fn with_max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// Explores the program's schedules; `final_check` validates the final
    /// memory of every completed execution.
    pub fn check<F>(&self, program: &Program, final_check: F) -> Verdict
    where
        F: Fn(&[Word]) -> Result<(), String>,
    {
        let mut stack: Vec<Frame> = Vec::new();
        let mut stats = Stats {
            complete: true,
            ..Stats::default()
        };

        loop {
            if stats.runs >= self.max_runs {
                stats.complete = false;
                return Verdict::Passed(stats);
            }
            let prefix: Vec<usize> = stack.iter().map(|f| f.chosen).collect();
            let outcome = self.execute(program, &prefix);
            stats.runs += 1;
            stats.max_depth = stats.max_depth.max(outcome.trace.len());

            // Adopt the decisions taken beyond the replayed prefix.
            for f in outcome.trace.into_iter().skip(stack.len()) {
                stack.push(f);
            }
            let schedule: Vec<usize> = stack.iter().map(|f| f.chosen).collect();

            match outcome.end {
                RunEnd::Complete(memory) => {
                    if let Err(message) = final_check(&memory) {
                        return Verdict::Violation {
                            schedule,
                            message,
                            stats,
                        };
                    }
                }
                RunEnd::Pruned => stats.pruned += 1,
                RunEnd::Deadlock(blocked) => {
                    return Verdict::Deadlock {
                        schedule,
                        blocked,
                        stats,
                    }
                }
                RunEnd::Panic(message) => {
                    return Verdict::Violation {
                        schedule,
                        message,
                        stats,
                    }
                }
            }

            // Backtrack: advance the deepest frame with an untried,
            // bound-respecting alternative; drop exhausted frames.
            loop {
                let Some(top) = stack.last_mut() else {
                    return Verdict::Passed(stats);
                };
                let budget_ok = |f: &Frame, c: usize| match self.preemption_bound {
                    None => true,
                    Some(k) => f.preempts_before + usize::from(f.is_preemption(c)) <= k,
                };
                let next = top
                    .enabled
                    .iter()
                    .copied()
                    .find(|&c| top.tried & (1 << c) == 0 && budget_ok(top, c));
                match next {
                    Some(c) => {
                        top.tried |= 1 << c;
                        top.chosen = c;
                        break;
                    }
                    None => {
                        stack.pop();
                    }
                }
            }
        }
    }

    /// One execution following `prefix`, then the default policy (continue
    /// the previous thread when enabled, else the lowest-id enabled thread).
    fn execute(&self, program: &Program, prefix: &[usize]) -> RunOutcome {
        let rs = RunState::new(program.initial_memory(), program.nthreads);
        let mut trace: Vec<Frame> = Vec::new();

        let end = std::thread::scope(|scope| {
            for pid in 0..program.nthreads {
                let rs = std::sync::Arc::clone(&rs);
                let program = &*program;
                scope.spawn(move || program.run_thread(pid, rs));
            }

            let mut g = rs.mu.lock().unwrap();
            loop {
                // Wait for quiescence: nobody mid-step, grant consumed.
                while g.grant.is_some()
                    || g.states.iter().any(|s| matches!(s, TState::Running))
                {
                    g = rs.cv.wait(g).unwrap();
                }
                if let Some(msg) = g.panic_msg.take() {
                    g.aborted = true;
                    rs.cv.notify_all();
                    break RunEnd::Panic(msg);
                }
                // Unblock spinners whose predicate now holds.
                for pid in 0..program.nthreads {
                    if let TState::Blocked(addr, pred) = g.states[pid] {
                        if pred.satisfied(g.memory[addr]) {
                            g.states[pid] = TState::Ready;
                        }
                    }
                }
                let enabled: Vec<usize> = (0..program.nthreads)
                    .filter(|&p| g.states[p] == TState::Ready)
                    .collect();
                if enabled.is_empty() {
                    let blocked: Vec<(usize, Addr)> = (0..program.nthreads)
                        .filter_map(|p| match g.states[p] {
                            TState::Blocked(a, _) => Some((p, a)),
                            _ => None,
                        })
                        .collect();
                    g.aborted = true;
                    rs.cv.notify_all();
                    break if blocked.is_empty() {
                        RunEnd::Complete(g.memory.clone())
                    } else {
                        RunEnd::Deadlock(blocked)
                    };
                }
                if trace.len() >= self.max_steps {
                    g.aborted = true;
                    rs.cv.notify_all();
                    break RunEnd::Pruned;
                }

                let step = trace.len();
                let prev = trace.last().map(|f: &Frame| f.chosen);
                let preempts_before = trace.last().map(|f| f.preempts_after()).unwrap_or(0);
                let chosen = if step < prefix.len() {
                    debug_assert!(
                        enabled.contains(&prefix[step]),
                        "replay diverged at step {step}: {} not in {enabled:?}",
                        prefix[step]
                    );
                    prefix[step]
                } else {
                    // Default: stay on the same thread (zero preemptions).
                    match prev {
                        Some(p) if enabled.contains(&p) => p,
                        _ => enabled[0],
                    }
                };
                trace.push(Frame {
                    enabled,
                    chosen,
                    tried: 1 << chosen,
                    prev,
                    preempts_before,
                });
                g.grant = Some(chosen);
                rs.cv.notify_all();
            }
        });

        RunOutcome { trace, end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::SyncCtx;

    #[test]
    fn finds_lost_update_with_plain_load_store() {
        let program = Program::new(2, 1, |ctx| {
            let v = ctx.load(0);
            ctx.store(0, v + 1);
        });
        let verdict = Explorer::exhaustive().check(&program, |mem| {
            if mem[0] == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter = {}", mem[0]))
            }
        });
        assert!(verdict.is_violation(), "must find the classic race");
    }

    #[test]
    fn fetch_add_has_no_lost_update() {
        let program = Program::new(3, 1, |ctx| {
            ctx.fetch_add(0, 1);
        });
        let verdict = Explorer::exhaustive().check(&program, |mem| {
            if mem[0] == 3 {
                Ok(())
            } else {
                Err(format!("counter = {}", mem[0]))
            }
        });
        verdict.expect_pass("atomic counter");
        assert!(verdict.stats().complete);
    }

    #[test]
    fn detects_deadlock_with_schedule() {
        // Thread 0 waits for a flag only thread 1 can set after waiting for
        // a flag only thread 0 can set: circular wait.
        let program = Program::new(2, 2, |ctx| {
            let me = ctx.pid();
            ctx.spin_until(me, 1); // wait for my flag
            ctx.store(1 - me, 1); // then set the other's
        });
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        match verdict {
            Verdict::Deadlock { blocked, .. } => {
                assert_eq!(blocked.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn spin_until_handshake_passes() {
        let program = Program::new(2, 2, |ctx| {
            if ctx.pid() == 0 {
                ctx.store(0, 1);
                ctx.spin_until(1, 1);
            } else {
                ctx.spin_until(0, 1);
                ctx.store(1, 1);
            }
        });
        Explorer::exhaustive()
            .check(&program, |_| Ok(()))
            .expect_pass("handshake");
    }

    #[test]
    fn in_program_assert_becomes_violation() {
        let program = Program::new(2, 1, |ctx| {
            let old = ctx.swap(0, 1);
            assert_eq!(old, 0, "both threads saw the word free");
            // No release: the second thread's swap returns 1 and asserts.
        });
        let verdict = Explorer::exhaustive().check(&program, |_| Ok(()));
        match verdict {
            Verdict::Violation { message, .. } => {
                assert!(message.contains("free"), "got: {message}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn preemption_bound_zero_is_serial_schedules_only() {
        // With zero preemptions the two increments cannot interleave, so
        // the race is invisible — documenting what the bound trades away.
        let program = Program::new(2, 1, |ctx| {
            let v = ctx.load(0);
            ctx.store(0, v + 1);
        });
        let verdict = Explorer::bounded(0).check(&program, |mem| {
            if mem[0] == 2 {
                Ok(())
            } else {
                Err("lost update".into())
            }
        });
        assert!(!verdict.is_violation());
        // One preemption suffices to expose it.
        let verdict = Explorer::bounded(1).check(&program, |mem| {
            if mem[0] == 2 {
                Ok(())
            } else {
                Err("lost update".into())
            }
        });
        assert!(verdict.is_violation());
    }

    #[test]
    fn run_budget_is_respected() {
        let program = Program::new(3, 1, |ctx| {
            for _ in 0..4 {
                ctx.fetch_add(0, 1);
            }
        });
        let mut explorer = Explorer::exhaustive();
        explorer.max_runs = 10;
        let verdict = explorer.check(&program, |_| Ok(()));
        let stats = verdict.stats();
        assert_eq!(stats.runs, 10);
        assert!(!stats.complete);
    }

    #[test]
    fn single_thread_single_run() {
        let program = Program::new(1, 1, |ctx| {
            ctx.store(0, 7);
        });
        let verdict = Explorer::exhaustive().check(&program, |mem| {
            if mem[0] == 7 {
                Ok(())
            } else {
                Err("wrong".into())
            }
        });
        assert_eq!(verdict.stats().runs, 1);
        assert!(verdict.stats().complete);
    }
}
