//! Prebuilt checks binding the kernels to the explorer.
//!
//! These are the reproduction's correctness theorems, stated once and run
//! over every lock and barrier in the registry (see `tests/` at the
//! workspace root for the full sweep):
//!
//! * **mutual exclusion** — no schedule lets two threads overlap in the
//!   critical section. The workload's counter accesses are *data* accesses
//!   ([`kernels::SyncCtx::data_load`] / `data_store`), so the vector-clock
//!   race detector reports any overlap as [`Verdict::Race`] the moment it
//!   is possible — even on schedules whose final counter is correct — and
//!   the final counter total is kept as a second, independent witness;
//! * **barrier safety** — no schedule releases a thread from episode *k*
//!   before every peer has arrived at episode *k*; the arrival stamps are
//!   data accesses, so an unsafe barrier is also a race;
//! * **bounded bypass** — with an instrumented lock and
//!   [`Explorer::with_bypass_bound`], no schedule lets the lock bypass a
//!   waiter more than the bound allows (FIFO locks pass, retry locks
//!   starve);
//! * **lock ordering** — instrumented locks feed a cross-run
//!   [`LockOrderGraph`]; a cycle is a potential deadlock even when no
//!   explored schedule exhibits it.

use crate::explorer::{Explorer, Verdict};
use crate::fuzz::{FuzzReport, Fuzzer};
use crate::program::Program;
use kernels::barriers::BarrierKernel;
use kernels::lockdep::InstrumentedLock;
use kernels::locks::LockKernel;
use kernels::{LockOrderGraph, Region, SyncCtx, Word};
use std::sync::Arc;

/// Builds the mutual-exclusion program for a lock: each thread performs
/// `iters` critical sections, each a deliberately non-atomic counter
/// increment (separate data load and data store).
///
/// Why this suffices: if mutual exclusion can be violated at all, some
/// schedule interleaves two critical sections, and the two increments are
/// then happens-before concurrent — the race detector flags the first such
/// schedule. The final counter total independently catches lost updates.
/// Keeping the critical section at two operations keeps exhaustive
/// exploration tractable.
pub fn lock_program(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
) -> Program {
    // The checker does not model cache lines; two words per slot is the
    // densest layout that still fits the node-based kernels (next + grant).
    let region = Region::new(0, 2, lock.lines_needed(nthreads));
    let counter = region.end();
    let init = lock.init(nthreads, &region);
    let body_lock = Arc::clone(&lock);
    Program::new(nthreads, counter + 1, move |ctx| {
        let mut ps = body_lock.proc_init(ctx.pid(), &region);
        for _ in 0..iters {
            let token = body_lock.acquire(ctx, &region, &mut ps);
            let c = ctx.data_load(counter);
            ctx.data_store(counter, c + 1);
            body_lock.release(ctx, &region, &mut ps, token);
        }
    })
    .with_init(init)
}

/// Checks a lock's mutual exclusion and progress under the explorer.
pub fn check_lock(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
    explorer: Explorer,
) -> Verdict {
    let expected = (nthreads * iters) as u64;
    let program = lock_program(lock, nthreads, iters);
    let counter = program.initial_memory().len() - 1;
    explorer.check(&program, move |mem| {
        if mem[counter] == expected {
            Ok(())
        } else {
            Err(format!(
                "critical sections lost: counter {} != {expected}",
                mem[counter]
            ))
        }
    })
}

/// Like [`check_lock`], but exploring with `workers` host threads via
/// [`Explorer::check_parallel`]. The verdict, schedule and stats are
/// independent of `workers`.
pub fn check_lock_parallel(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
    explorer: Explorer,
    workers: usize,
) -> Verdict {
    let expected = (nthreads * iters) as u64;
    let program = lock_program(lock, nthreads, iters);
    let counter = program.initial_memory().len() - 1;
    explorer.check_parallel(
        &program,
        move |mem: &[Word]| {
            if mem[counter] == expected {
                Ok(())
            } else {
                Err(format!(
                    "critical sections lost: counter {} != {expected}",
                    mem[counter]
                ))
            }
        },
        workers,
    )
}

/// Like [`check_lock`], but with the lock instrumented and the explorer
/// failing any schedule that bypasses a waiter more than `bound` times.
/// FIFO locks (ticket, Anderson, Graunke–Thakkar, CLH, MCS, QSM) satisfy
/// bounded bypass; retry locks (test-and-set variants) do not.
pub fn check_lock_bypass(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
    bound: usize,
    explorer: Explorer,
) -> Verdict {
    let instrumented: Arc<dyn LockKernel + Send + Sync> =
        Arc::new(InstrumentedLock::new(lock, 0));
    let expected = (nthreads * iters) as u64;
    let program = lock_program(instrumented, nthreads, iters);
    let counter = program.initial_memory().len() - 1;
    explorer
        .with_bypass_bound(bound)
        .check(&program, move |mem| {
            if mem[counter] == expected {
                Ok(())
            } else {
                Err(format!(
                    "critical sections lost: counter {} != {expected}",
                    mem[counter]
                ))
            }
        })
}

/// Like [`check_lock`], but the lock's acquisitions also feed `graph`
/// under a freshly registered id. Share one graph across many checks (and
/// many locks) and call [`LockOrderGraph::assert_acyclic`] at the end to
/// detect lock-order inversions that no single explored schedule — indeed
/// no single test — exhibits.
pub fn check_lock_with_lockdep(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
    explorer: Explorer,
    graph: &Arc<LockOrderGraph>,
) -> Verdict {
    let id = graph.register(lock.name());
    let instrumented: Arc<dyn LockKernel + Send + Sync> =
        Arc::new(InstrumentedLock::new(lock, id));
    let expected = (nthreads * iters) as u64;
    let program =
        lock_program(instrumented, nthreads, iters).with_lockdep(Arc::clone(graph));
    let counter = program.initial_memory().len() - 1;
    explorer.check(&program, move |mem| {
        if mem[counter] == expected {
            Ok(())
        } else {
            Err(format!(
                "critical sections lost: counter {} != {expected}",
                mem[counter]
            ))
        }
    })
}

/// Fuzzes a lock's mutual exclusion under random schedules: the same
/// program and final-state invariant as [`check_lock`], sampled by the
/// fuzzer instead of searched. When the fuzzer carries a bypass bound the
/// lock is instrumented, mirroring [`check_lock_bypass`].
pub fn fuzz_lock(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
    fuzzer: &Fuzzer,
) -> FuzzReport {
    let lock = if fuzzer.bypass_bound.is_some() {
        Arc::new(InstrumentedLock::new(lock, 0)) as Arc<dyn LockKernel + Send + Sync>
    } else {
        lock
    };
    let expected = (nthreads * iters) as u64;
    let program = lock_program(lock, nthreads, iters);
    let counter = program.initial_memory().len() - 1;
    fuzzer.run(&program, move |mem| {
        if mem[counter] == expected {
            Ok(())
        } else {
            Err(format!(
                "critical sections lost: counter {} != {expected}",
                mem[counter]
            ))
        }
    })
}

/// Fuzzes a barrier's safety under random schedules: the same program as
/// [`check_barrier`], sampled by the fuzzer instead of searched.
pub fn fuzz_barrier(
    barrier: Arc<dyn BarrierKernel + Send + Sync>,
    nthreads: usize,
    episodes: u64,
    fuzzer: &Fuzzer,
) -> FuzzReport {
    let program = barrier_program(barrier, nthreads, episodes);
    fuzzer.run(&program, |_| Ok(()))
}

/// Builds the barrier-safety program: each thread stamps its arrival count,
/// crosses, and asserts every peer has stamped; a second crossing separates
/// episodes (as in [`kernels::barriers::episode_trial`]). Stamps are data
/// accesses: a barrier that releases early makes the unstamped peer's next
/// write race with the released thread's read.
pub fn barrier_program(
    barrier: Arc<dyn BarrierKernel + Send + Sync>,
    nthreads: usize,
    episodes: u64,
) -> Program {
    let region = Region::new(0, 2, barrier.lines_needed(nthreads));
    let stamps = region.end();
    let init = barrier.init(nthreads, &region);
    let body_barrier = Arc::clone(&barrier);
    Program::new(nthreads, stamps + nthreads, move |ctx| {
        let mut st = body_barrier.make_state(ctx.pid(), nthreads);
        for ep in 0..episodes {
            ctx.data_store(stamps + ctx.pid(), ep + 1);
            body_barrier.arrive(ctx, &region, &mut st);
            for j in 0..nthreads {
                let stamp = ctx.data_load(stamps + j);
                assert!(
                    stamp > ep,
                    "barrier unsafe: released from episode {ep} before thread {j} arrived"
                );
            }
            body_barrier.arrive(ctx, &region, &mut st);
        }
    })
    .with_init(init)
}

/// Checks a barrier's safety (and deadlock-freedom) under the explorer.
pub fn check_barrier(
    barrier: Arc<dyn BarrierKernel + Send + Sync>,
    nthreads: usize,
    episodes: u64,
    explorer: Explorer,
) -> Verdict {
    let program = barrier_program(barrier, nthreads, episodes);
    explorer.check(&program, |_| Ok(()))
}

/// Like [`check_barrier`], but exploring with `workers` host threads via
/// [`Explorer::check_parallel`]. The verdict, schedule and stats are
/// independent of `workers`.
pub fn check_barrier_parallel(
    barrier: Arc<dyn BarrierKernel + Send + Sync>,
    nthreads: usize,
    episodes: u64,
    explorer: Explorer,
    workers: usize,
) -> Verdict {
    let program = barrier_program(barrier, nthreads, episodes);
    explorer.check_parallel(&program, |_: &[Word]| Ok(()), workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::barriers::central::CentralBarrier;
    use kernels::barriers::qsm_tree::QsmTreeBarrier;
    use kernels::locks::{mcs::McsLock, qsm::QsmLock, tas::TasLock, ticket::TicketLock};
    use kernels::{Addr, Word};

    #[test]
    fn tas_lock_bounded_two_threads() {
        // Plain test-and-set has an unbounded retry loop, so its schedule
        // tree is infinite; a preemption bound plus a short step limit
        // still explores every 2-preemption interleaving of the lock path.
        let explorer = Explorer::bounded(2).with_max_steps(40).with_max_runs(4000);
        check_lock(Arc::new(TasLock), 2, 1, explorer).expect_pass("tas 2x1");
    }

    #[test]
    fn qsm_lock_exhaustive_two_threads() {
        let v = check_lock(Arc::new(QsmLock), 2, 1, Explorer::exhaustive());
        v.expect_pass("qsm 2x1");
        assert!(v.stats().complete, "qsm 2x1 space must be fully explored");
        // Contended paths were actually explored.
        assert!(v.stats().runs > 10);
    }

    #[test]
    fn mcs_lock_exhaustive_two_threads() {
        let v = check_lock(Arc::new(McsLock), 2, 1, Explorer::exhaustive());
        v.expect_pass("mcs 2x1");
        assert!(v.stats().complete);
    }

    #[test]
    fn ticket_lock_exhaustive_two_threads() {
        let v = check_lock(Arc::new(TicketLock), 2, 1, Explorer::exhaustive());
        v.expect_pass("ticket 2x1");
        assert!(v.stats().complete);
    }

    #[test]
    fn qsm_lock_bounded_three_threads() {
        let explorer = Explorer::bounded(2).with_max_runs(6000);
        check_lock(Arc::new(QsmLock), 3, 1, explorer).expect_pass("qsm 3x1");
    }

    #[test]
    fn central_barrier_exhaustive_two_threads() {
        let v = check_barrier(Arc::new(CentralBarrier), 2, 1, Explorer::exhaustive());
        v.expect_pass("central 2x1");
        assert!(v.stats().complete);
    }

    #[test]
    fn qsm_barrier_bounded_three_threads() {
        check_barrier(
            Arc::new(QsmTreeBarrier::default()),
            3,
            2,
            Explorer::bounded(2),
        )
        .expect_pass("qsm-tree 3x2");
    }

    /// A deliberately broken lock proves the harness can actually fail:
    /// "acquire" is a plain store, so exclusion is violated under some
    /// schedule — and because the counter increments are data accesses,
    /// the race detector is the layer that catches it.
    #[test]
    fn harness_detects_broken_lock() {
        #[derive(Debug)]
        struct BrokenLock;
        impl kernels::locks::LockKernel for BrokenLock {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn lines_needed(&self, _p: usize) -> usize {
                1
            }
            fn acquire(
                &self,
                ctx: &mut dyn SyncCtx,
                region: &Region,
                _ps: &mut u64,
            ) -> u64 {
                // No atomicity, no waiting: anyone can "acquire".
                ctx.store(region.slot(0), 1);
                0
            }
            fn release(
                &self,
                ctx: &mut dyn SyncCtx,
                region: &Region,
                _ps: &mut u64,
                _token: u64,
            ) {
                ctx.store(region.slot(0), 0);
            }
        }
        let v = check_lock(Arc::new(BrokenLock), 2, 1, Explorer::exhaustive());
        assert!(v.is_violation(), "broken lock must be caught");
        assert!(
            matches!(v, Verdict::Race { .. }),
            "the race detector should catch it first, got {v:?}"
        );
    }

    /// A barrier that releases immediately must be caught as unsafe.
    #[test]
    fn harness_detects_broken_barrier() {
        #[derive(Debug)]
        struct NoBarrier;
        impl BarrierKernel for NoBarrier {
            fn name(&self) -> &'static str {
                "none"
            }
            fn lines_needed(&self, _p: usize) -> usize {
                1
            }
            fn arrive(
                &self,
                ctx: &mut dyn SyncCtx,
                region: &Region,
                st: &mut kernels::barriers::BarrierState,
            ) {
                // Touch shared memory so schedules diverge, but never wait.
                let _ = ctx.load(region.slot(0));
                st.round += 1;
            }
        }
        let v = check_barrier(Arc::new(NoBarrier), 2, 1, Explorer::exhaustive());
        assert!(v.is_violation(), "non-barrier must be caught");
    }

    #[test]
    fn lock_program_layout_is_dense() {
        let p = lock_program(Arc::new(TasLock), 2, 1);
        // 1 two-word lock slot + counter.
        assert_eq!(p.initial_memory().len(), 3);
    }

    #[test]
    fn init_words_are_applied() {
        let lock: Arc<dyn kernels::locks::LockKernel + Send + Sync> =
            Arc::new(kernels::locks::anderson::AndersonLock);
        let p = lock_program(lock, 2, 1);
        let mem = p.initial_memory();
        // Anderson's first flag starts at 1 (slot 1 with line_words = 2).
        let flag_addr: Addr = 2;
        assert_eq!(mem[flag_addr], 1 as Word);
    }

    #[test]
    fn tas_starves_a_waiter() {
        let explorer = Explorer::bounded(2).with_max_steps(60).with_max_runs(8000);
        let v = check_lock_bypass(Arc::new(TasLock), 2, 2, 1, explorer);
        assert!(
            matches!(v, Verdict::Starvation { .. }),
            "tas must admit unbounded bypass, got {v:?}"
        );
    }

    #[test]
    fn ticket_lock_has_bounded_bypass() {
        let explorer = Explorer::bounded(2).with_max_runs(8000);
        check_lock_bypass(Arc::new(TicketLock), 2, 2, 1, explorer)
            .expect_pass("ticket bounded bypass");
    }

    #[test]
    fn fuzzed_qsm_lock_passes_its_budget() {
        let fuzzer = crate::fuzz::Fuzzer::new(11, 60, crate::fuzz::Strategy::default());
        fuzz_lock(Arc::new(QsmLock), 2, 1, &fuzzer).expect_pass("fuzzed qsm 2x1");
    }

    #[test]
    fn fuzzed_central_barrier_passes_its_budget() {
        let fuzzer = crate::fuzz::Fuzzer::new(13, 40, crate::fuzz::Strategy::default());
        fuzz_barrier(Arc::new(CentralBarrier), 2, 1, &fuzzer).expect_pass("fuzzed central 2x1");
    }

    #[test]
    fn fuzz_harness_detects_a_broken_lock() {
        // Same broken lock as the exhaustive harness test: "acquire" is a
        // plain store, so the race detector must fire under sampling too,
        // and the shrunk schedule must replay to the same race.
        #[derive(Debug)]
        struct BrokenLock;
        impl kernels::locks::LockKernel for BrokenLock {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn lines_needed(&self, _p: usize) -> usize {
                1
            }
            fn acquire(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64) -> u64 {
                ctx.store(region.slot(0), 1);
                0
            }
            fn release(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64, _t: u64) {
                ctx.store(region.slot(0), 0);
            }
        }
        let fuzzer = crate::fuzz::Fuzzer::new(17, 200, crate::fuzz::Strategy::default());
        let report = fuzz_lock(Arc::new(BrokenLock), 2, 1, &fuzzer);
        assert!(
            matches!(report.verdict, Verdict::Race { .. }),
            "fuzzing must catch the broken lock as a race, got {:?}",
            report.verdict
        );
        let shrunk = report.shrunk.expect("shrinking is on by default");
        let program = lock_program(Arc::new(BrokenLock), 2, 1);
        let replay = fuzzer.explorer().replay(&program, &shrunk.schedule);
        assert!(
            matches!(replay.end, crate::explorer::ReplayEnd::Race(_)),
            "shrunk schedule must still race, got {:?}",
            replay.end
        );
    }

    #[test]
    fn lockdep_graph_collects_single_lock_edges() {
        let graph = Arc::new(LockOrderGraph::new());
        let v = check_lock_with_lockdep(
            Arc::new(TicketLock),
            2,
            1,
            Explorer::exhaustive(),
            &graph,
        );
        v.expect_pass("ticket with lockdep");
        // One lock can never produce an ordering edge, let alone a cycle.
        assert!(graph.edges().is_empty());
        graph.assert_acyclic("single instrumented lock");
    }
}
