//! Prebuilt checks binding the kernels to the explorer.
//!
//! These are the reproduction's correctness theorems, stated once and run
//! over every lock and barrier in the registry (see `tests/` at the
//! workspace root for the full sweep):
//!
//! * **mutual exclusion** — no schedule lets two threads overlap in the
//!   critical section, witnessed by an owner-word assertion *and* a final
//!   counter total;
//! * **barrier safety** — no schedule releases a thread from episode *k*
//!   before every peer has arrived at episode *k*.

use crate::explorer::{Explorer, Verdict};
use crate::program::Program;
use kernels::barriers::BarrierKernel;
use kernels::locks::LockKernel;
use kernels::{Region, SyncCtx};
use std::sync::Arc;

/// Builds the mutual-exclusion program for a lock: each thread performs
/// `iters` critical sections, each a deliberately non-atomic counter
/// increment (separate load and store).
///
/// Why this suffices: if mutual exclusion can be violated at all, some
/// schedule interleaves two critical sections, and among the explored
/// schedules is then one that orders the two loads before either store —
/// a lost update the final counter check catches. Keeping the critical
/// section at two operations keeps exhaustive exploration tractable.
pub fn lock_program(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
) -> Program {
    // The checker does not model cache lines; two words per slot is the
    // densest layout that still fits the node-based kernels (next + grant).
    let region = Region::new(0, 2, lock.lines_needed(nthreads));
    let counter = region.end();
    let init = lock.init(nthreads, &region);
    let body_lock = Arc::clone(&lock);
    Program::new(nthreads, counter + 1, move |ctx| {
        let mut ps = body_lock.proc_init(ctx.pid(), &region);
        for _ in 0..iters {
            let token = body_lock.acquire(ctx, &region, &mut ps);
            let c = ctx.load(counter);
            ctx.store(counter, c + 1);
            body_lock.release(ctx, &region, &mut ps, token);
        }
    })
    .with_init(init)
}

/// Checks a lock's mutual exclusion and progress under the explorer.
pub fn check_lock(
    lock: Arc<dyn LockKernel + Send + Sync>,
    nthreads: usize,
    iters: usize,
    explorer: Explorer,
) -> Verdict {
    let expected = (nthreads * iters) as u64;
    let program = lock_program(lock, nthreads, iters);
    let counter = program.initial_memory().len() - 1;
    explorer.check(&program, move |mem| {
        if mem[counter] == expected {
            Ok(())
        } else {
            Err(format!(
                "critical sections lost: counter {} != {expected}",
                mem[counter]
            ))
        }
    })
}

/// Builds the barrier-safety program: each thread stamps its arrival count,
/// crosses, and asserts every peer has stamped; a second crossing separates
/// episodes (as in [`kernels::barriers::episode_trial`]).
pub fn barrier_program(
    barrier: Arc<dyn BarrierKernel + Send + Sync>,
    nthreads: usize,
    episodes: u64,
) -> Program {
    let region = Region::new(0, 2, barrier.lines_needed(nthreads));
    let stamps = region.end();
    let init = barrier.init(nthreads, &region);
    let body_barrier = Arc::clone(&barrier);
    Program::new(nthreads, stamps + nthreads, move |ctx| {
        let mut st = body_barrier.make_state(ctx.pid(), nthreads);
        for ep in 0..episodes {
            ctx.store(stamps + ctx.pid(), ep + 1);
            body_barrier.arrive(ctx, &region, &mut st);
            for j in 0..nthreads {
                let stamp = ctx.load(stamps + j);
                assert!(
                    stamp > ep,
                    "barrier unsafe: released from episode {ep} before thread {j} arrived"
                );
            }
            body_barrier.arrive(ctx, &region, &mut st);
        }
    })
    .with_init(init)
}

/// Checks a barrier's safety (and deadlock-freedom) under the explorer.
pub fn check_barrier(
    barrier: Arc<dyn BarrierKernel + Send + Sync>,
    nthreads: usize,
    episodes: u64,
    explorer: Explorer,
) -> Verdict {
    let program = barrier_program(barrier, nthreads, episodes);
    explorer.check(&program, |_| Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::locks::{mcs::McsLock, qsm::QsmLock, tas::TasLock, ticket::TicketLock};
    use kernels::barriers::central::CentralBarrier;
    use kernels::barriers::qsm_tree::QsmTreeBarrier;
    use kernels::{Addr, Word};

    #[test]
    fn tas_lock_bounded_two_threads() {
        // Plain test-and-set has an unbounded retry loop, so its schedule
        // tree is infinite; a preemption bound plus a short step limit
        // still explores every 2-preemption interleaving of the lock path.
        let explorer = Explorer::bounded(2).with_max_steps(40).with_max_runs(4000);
        check_lock(Arc::new(TasLock), 2, 1, explorer).expect_pass("tas 2x1");
    }

    #[test]
    fn qsm_lock_exhaustive_two_threads() {
        let v = check_lock(Arc::new(QsmLock), 2, 1, Explorer::exhaustive());
        v.expect_pass("qsm 2x1");
        assert!(v.stats().complete, "qsm 2x1 space must be fully explored");
        // Contended paths were actually explored.
        assert!(v.stats().runs > 10);
    }

    #[test]
    fn mcs_lock_exhaustive_two_threads() {
        let v = check_lock(Arc::new(McsLock), 2, 1, Explorer::exhaustive());
        v.expect_pass("mcs 2x1");
        assert!(v.stats().complete);
    }

    #[test]
    fn ticket_lock_exhaustive_two_threads() {
        let v = check_lock(Arc::new(TicketLock), 2, 1, Explorer::exhaustive());
        v.expect_pass("ticket 2x1");
        assert!(v.stats().complete);
    }

    #[test]
    fn qsm_lock_bounded_three_threads() {
        let explorer = Explorer::bounded(2).with_max_runs(6000);
        check_lock(Arc::new(QsmLock), 3, 1, explorer).expect_pass("qsm 3x1");
    }

    #[test]
    fn central_barrier_exhaustive_two_threads() {
        let v = check_barrier(Arc::new(CentralBarrier), 2, 1, Explorer::exhaustive());
        v.expect_pass("central 2x1");
        assert!(v.stats().complete);
    }

    #[test]
    fn qsm_barrier_bounded_three_threads() {
        check_barrier(
            Arc::new(QsmTreeBarrier::default()),
            3,
            2,
            Explorer::bounded(2),
        )
        .expect_pass("qsm-tree 3x2");
    }

    /// A deliberately broken lock proves the harness can actually fail:
    /// "acquire" is a plain store, so exclusion is violated under some
    /// schedule.
    #[test]
    fn harness_detects_broken_lock() {
        #[derive(Debug)]
        struct BrokenLock;
        impl kernels::locks::LockKernel for BrokenLock {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn lines_needed(&self, _p: usize) -> usize {
                1
            }
            fn acquire(
                &self,
                ctx: &mut dyn SyncCtx,
                region: &Region,
                _ps: &mut u64,
            ) -> u64 {
                // No atomicity, no waiting: anyone can "acquire".
                ctx.store(region.slot(0), 1);
                0
            }
            fn release(
                &self,
                ctx: &mut dyn SyncCtx,
                region: &Region,
                _ps: &mut u64,
                _token: u64,
            ) {
                ctx.store(region.slot(0), 0);
            }
        }
        let v = check_lock(Arc::new(BrokenLock), 2, 1, Explorer::exhaustive());
        assert!(v.is_violation(), "broken lock must be caught");
    }

    /// A barrier that releases immediately must be caught as unsafe.
    #[test]
    fn harness_detects_broken_barrier() {
        #[derive(Debug)]
        struct NoBarrier;
        impl BarrierKernel for NoBarrier {
            fn name(&self) -> &'static str {
                "none"
            }
            fn lines_needed(&self, _p: usize) -> usize {
                1
            }
            fn arrive(
                &self,
                ctx: &mut dyn SyncCtx,
                region: &Region,
                st: &mut kernels::barriers::BarrierState,
            ) {
                // Touch shared memory so schedules diverge, but never wait.
                let _ = ctx.load(region.slot(0));
                st.round += 1;
            }
        }
        let v = check_barrier(Arc::new(NoBarrier), 2, 1, Explorer::exhaustive());
        assert!(v.is_violation(), "non-barrier must be caught");
    }

    #[test]
    fn lock_program_layout_is_dense() {
        let p = lock_program(Arc::new(TasLock), 2, 1);
        // 1 two-word lock slot + counter.
        assert_eq!(p.initial_memory().len(), 3);
    }

    #[test]
    fn init_words_are_applied() {
        let lock: Arc<dyn kernels::locks::LockKernel + Send + Sync> =
            Arc::new(kernels::locks::anderson::AndersonLock);
        let p = lock_program(lock, 2, 1);
        let mem = p.initial_memory();
        // Anderson's first flag starts at 1 (slot 1 with line_words = 2).
        let flag_addr: Addr = 2;
        assert_eq!(mem[flag_addr], 1 as Word);
    }
}
