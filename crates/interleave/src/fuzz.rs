//! Randomized schedule fuzzing: sampling the schedule space the DFS
//! explorer cannot exhaust.
//!
//! Exhaustive exploration ([`Explorer::check`]) is the right tool up to a
//! few threads and a few dozen steps; beyond that the schedule tree
//! explodes and the only honest options are bounding (which trades away
//! deep bugs) or sampling. This module samples: a [`Fuzzer`] executes a
//! [`Program`] under pseudo-random schedules drawn from a seeded,
//! fully deterministic generator, through the *same* scheduler loop the
//! explorer uses — park/unpark semantics, the race detector, lockdep and
//! bypass accounting all behave identically, so every [`Verdict`] class
//! (lost wakeups included) surfaces under sampling exactly as it would
//! under search.
//!
//! Two strategies:
//!
//! * [`Strategy::Uniform`] — a uniform random walk: at every schedule
//!   point, pick uniformly among the eligible threads. Simple, and
//!   surprisingly effective on shallow bugs, but the probability of
//!   hitting a bug needing `d` specific scheduling decisions decays
//!   exponentially in `d`.
//! * [`Strategy::Pct`] — probabilistic concurrency testing (Burckhardt
//!   et al., ASPLOS 2010): threads get distinct random priorities, the
//!   highest-priority eligible thread always runs, and at `d` randomly
//!   chosen steps the running thread is demoted below everyone else.
//!   A run finds any bug of *depth* ≤ d+1 with probability ≥
//!   1/(n·k^d) — polynomial, not exponential, in the schedule length
//!   `k` — which is why PCT is the default.
//!
//! Every failure comes back as a [`Verdict`] carrying the full schedule,
//! and (by default) a greedily **shrunk** schedule: context switches are
//! dropped and merged while [`Explorer::replay`] keeps reproducing the
//! same verdict class, so a 300-step fuzz failure debugs like a 6-step
//! exhaustive one. The whole pipeline is a pure function of
//! `(seed, strategy, program)` — re-running with the same seed yields a
//! byte-identical schedule and verdict.

use crate::explorer::{Explorer, Policy, ReplayEnd, RunEnd, Stats, Verdict};
use crate::program::Program;
use memsim::Word;
use simcore::Rng;

/// Default seed when `SYNCMECH_FUZZ_SEED` is unset: the paper's year.
pub const DEFAULT_FUZZ_SEED: u64 = 1991;
/// Default iteration budget when `SYNCMECH_FUZZ_ITERS` is unset.
pub const DEFAULT_FUZZ_ITERS: usize = 1000;

/// How the fuzzer picks the next thread at each schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Uniform random walk over the eligible threads.
    Uniform,
    /// Priority-based probabilistic concurrency testing with
    /// `change_points` priority-change points per run.
    Pct {
        /// Number of demotion points sampled per run; finds bugs of
        /// depth ≤ `change_points + 1` with polynomial probability.
        change_points: usize,
    },
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Pct { change_points: 3 }
    }
}

impl Strategy {
    /// Parses a CLI/env spelling: `uniform`, `pct` (default depth), or
    /// `pct:<d>` with `d ≥ 1` change points.
    pub fn parse(raw: &str) -> Result<Strategy, String> {
        let s = raw.trim();
        if s.eq_ignore_ascii_case("uniform") {
            return Ok(Strategy::Uniform);
        }
        if s.eq_ignore_ascii_case("pct") {
            return Ok(Strategy::default());
        }
        if let Some(d) = s.strip_prefix("pct:").or_else(|| s.strip_prefix("PCT:")) {
            return match d.trim().parse::<usize>() {
                Ok(0) => Err(format!(
                    "strategy {raw:?}: pct needs at least one change point; \
                     pct:0 never switches threads off-schedule"
                )),
                Ok(n) => Ok(Strategy::Pct { change_points: n }),
                Err(_) => Err(format!(
                    "strategy {raw:?}: the pct depth is not a positive integer"
                )),
            };
        }
        Err(format!(
            "unknown strategy {raw:?}; expected uniform, pct, or pct:<d>"
        ))
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Uniform => write!(f, "uniform"),
            Strategy::Pct { change_points } => write!(f, "pct:{change_points}"),
        }
    }
}

/// Per-run scheduling state for one fuzz iteration.
enum Chooser {
    Uniform(Rng),
    Pct {
        /// Current priority per thread id; higher runs first, all distinct.
        priorities: Vec<u64>,
        /// Steps at which the about-to-run thread is demoted, ascending
        /// (duplicates allowed — each consumes one demotion).
        change_points: Vec<usize>,
        /// Index of the next unconsumed change point.
        next_change: usize,
        /// Next demotion priority; counts down, always below every
        /// initial priority, so demotions are totally ordered too.
        next_low: u64,
    },
}

impl Chooser {
    /// `horizon` is the schedule length PCT change points are sampled
    /// over — the longest run observed so far, not the step *limit*:
    /// sampling demotions across a 400-step limit when runs are 6 steps
    /// long would place them past the end of every run.
    fn new(strategy: Strategy, mut rng: Rng, nthreads: usize, horizon: usize) -> Chooser {
        match strategy {
            Strategy::Uniform => Chooser::Uniform(rng),
            Strategy::Pct { change_points: d } => {
                // Initial priorities d+1 ..= d+n in random order: distinct,
                // and strictly above every demotion value (d, d-1, …, 1).
                let mut priorities: Vec<u64> =
                    (1..=nthreads as u64).map(|p| p + d as u64).collect();
                rng.shuffle(&mut priorities);
                let mut change_points: Vec<usize> = (0..d)
                    .map(|_| 1 + rng.next_below(horizon.max(2) as u64 - 1) as usize)
                    .collect();
                change_points.sort_unstable();
                Chooser::Pct {
                    priorities,
                    change_points,
                    next_change: 0,
                    next_low: d as u64,
                }
            }
        }
    }

    fn choose(&mut self, step: usize, eligible: &[usize]) -> usize {
        match self {
            Chooser::Uniform(rng) => eligible[rng.next_below(eligible.len() as u64) as usize],
            Chooser::Pct {
                priorities,
                change_points,
                next_change,
                next_low,
            } => {
                let top = |prio: &[u64]| -> usize {
                    eligible
                        .iter()
                        .copied()
                        .max_by_key(|&p| prio[p])
                        .expect("eligible is never empty at a schedule point")
                };
                let mut chosen = top(priorities);
                // At a change point the thread about to run is demoted
                // below everyone (including earlier demotions) and the
                // pick is redone — the PCT demotion step.
                while *next_change < change_points.len() && change_points[*next_change] == step {
                    priorities[chosen] = *next_low;
                    *next_low = next_low.saturating_sub(1);
                    *next_change += 1;
                    chosen = top(priorities);
                }
                chosen
            }
        }
    }
}

/// A greedily minimized failing schedule; see [`shrink_schedule`].
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The reduced schedule; replays to the same verdict class as the
    /// original via [`Explorer::replay`].
    pub schedule: Vec<usize>,
    /// Replays spent reaching it.
    pub replays: usize,
}

/// Outcome of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// [`Verdict::Passed`] when the whole budget ran clean; otherwise the
    /// first failure, schedule attached.
    pub verdict: Verdict,
    /// Zero-based iteration at which the failure was found.
    pub failing_iter: Option<usize>,
    /// The shrunk schedule, when shrinking was enabled and the campaign
    /// failed.
    pub shrunk: Option<Shrunk>,
}

impl FuzzReport {
    /// Panics with a readable report if the campaign found a failure.
    pub fn expect_pass(&self, what: &str) {
        self.verdict.expect_pass(what);
    }

    /// Renders a failed campaign as a checked-in corpus file (see
    /// [`crate::corpus`]): the shrunk schedule when shrinking ran, else
    /// the raw failing one, with a provenance comment. `None` when the
    /// campaign passed. `program` must be a [`crate::corpus::corpus_program`]
    /// registry name for the loader test to replay the entry.
    pub fn corpus_entry(&self, program: &str) -> Option<String> {
        let raw = self.verdict.schedule()?;
        let (schedule, provenance) = match &self.shrunk {
            Some(s) => (
                s.schedule.clone(),
                format!(
                    "shrunk {} -> {} steps in {} replays",
                    raw.len(),
                    s.schedule.len(),
                    s.replays
                ),
            ),
            None => (raw.to_vec(), "unshrunk".to_string()),
        };
        let entry = crate::corpus::CorpusEntry {
            program: program.to_string(),
            schedule,
            verdict: crate::corpus::VerdictClass::of(&self.verdict),
        };
        let iter = self.failing_iter.unwrap_or(0);
        Some(entry.render(&format!("found at fuzz iteration {iter}; {provenance}")))
    }
}

/// A seeded, deterministic random-schedule fuzzer.
///
/// Construction fixes `(seed, iters, strategy)`; running is then a pure
/// function of the program. Iteration `i` draws its stream from
/// `Rng::new(seed).fork(i)`, so campaigns are reproducible run-to-run
/// and a failing iteration's schedule is replayable forever.
#[derive(Debug, Clone)]
pub struct Fuzzer {
    /// Master seed for the campaign.
    pub seed: u64,
    /// Iteration budget (schedules sampled).
    pub iters: usize,
    /// Thread-choice strategy.
    pub strategy: Strategy,
    /// Per-run step limit; runs hitting it count as pruned, not failed.
    pub max_steps: usize,
    /// Bounded-bypass starvation checking, as in
    /// [`Explorer::with_bypass_bound`].
    pub bypass_bound: Option<usize>,
    /// Shrink failing schedules before reporting (on by default).
    pub shrink: bool,
}

impl Fuzzer {
    /// A fuzzer with the given campaign parameters, a 400-step run limit,
    /// shrinking on, and no bypass bound.
    pub fn new(seed: u64, iters: usize, strategy: Strategy) -> Fuzzer {
        Fuzzer {
            seed,
            iters,
            strategy,
            max_steps: 400,
            bypass_bound: None,
            shrink: true,
        }
    }

    /// Adjusts the per-run step limit.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Fails runs in which an instrumented-lock waiter is bypassed more
    /// than `k` times.
    pub fn with_bypass_bound(mut self, k: usize) -> Self {
        self.bypass_bound = Some(k);
        self
    }

    /// Disables schedule shrinking (report the raw failing schedule).
    pub fn without_shrink(mut self) -> Self {
        self.shrink = false;
        self
    }

    /// The explorer configuration backing each run — and the one a
    /// reported schedule must be replayed under.
    pub fn explorer(&self) -> Explorer {
        let mut e = Explorer::exhaustive()
            .with_max_steps(self.max_steps)
            .without_reduction();
        e.bypass_bound = self.bypass_bound;
        e
    }

    /// Runs the campaign; `final_check` validates the final memory of
    /// every completed run, exactly as in [`Explorer::check`].
    pub fn run<F>(&self, program: &Program, final_check: F) -> FuzzReport
    where
        F: Fn(&[Word]) -> Result<(), String>,
    {
        let explorer = self.explorer();
        let mut master = Rng::new(self.seed);
        // Sampling never proves exhaustion.
        let mut stats = Stats::default();
        // PCT change-point horizon: longest schedule seen so far (a small
        // guess before the first run). Deterministic — it depends only on
        // earlier runs of the same seeded campaign.
        let mut observed_max = 0usize;

        for iter in 0..self.iters {
            let horizon = if observed_max == 0 { 16 } else { observed_max.max(4) };
            let rng = master.fork(iter as u64);
            let mut chooser = Chooser::new(self.strategy, rng, program.nthreads(), horizon);
            let outcome = explorer.execute_with(
                program,
                Policy::External(&mut |step, eligible, _prev| chooser.choose(step, eligible)),
                false,
            );
            stats.runs += 1;
            stats.max_depth = stats.max_depth.max(outcome.trace.len());
            observed_max = observed_max.max(outcome.trace.len());
            let schedule = outcome.schedule();

            let verdict = match outcome.end {
                RunEnd::Complete(memory) => match final_check(&memory) {
                    Ok(()) => None,
                    Err(message) => Some(Verdict::Violation {
                        schedule,
                        message,
                        stats,
                    }),
                },
                RunEnd::Pruned => {
                    stats.pruned += 1;
                    None
                }
                RunEnd::SleepBlocked => unreachable!("fuzz runs without reduction"),
                RunEnd::Diverged { step, choice } => {
                    unreachable!("chooser picked ineligible thread {choice} at step {step}")
                }
                RunEnd::Deadlock(blocked) => Some(Verdict::Deadlock {
                    schedule,
                    blocked,
                    stats,
                }),
                RunEnd::LostWakeup(parked) => Some(Verdict::LostWakeup {
                    schedule,
                    parked,
                    stats,
                }),
                RunEnd::Panic(message) => Some(Verdict::Violation {
                    schedule,
                    message,
                    stats,
                }),
                RunEnd::Race(report) => Some(Verdict::Race {
                    schedule,
                    report,
                    stats,
                }),
                RunEnd::Starvation(report) => Some(Verdict::Starvation {
                    schedule,
                    report,
                    stats,
                }),
            };

            if let Some(verdict) = verdict {
                let shrunk = if self.shrink {
                    shrink_schedule(program, &explorer, &verdict, &final_check)
                } else {
                    None
                };
                return FuzzReport {
                    verdict,
                    failing_iter: Some(iter),
                    shrunk,
                };
            }
        }
        FuzzReport {
            verdict: Verdict::Passed(stats),
            failing_iter: None,
            shrunk: None,
        }
    }
}

/// True when a replay ending reproduces the verdict's failure class.
///
/// `Violation` needs two forms because [`Explorer::replay`] does not run
/// the final-state invariant: an in-program panic replays as
/// [`ReplayEnd::Panic`], an invariant failure as a completed run whose
/// memory still fails `final_check`.
fn replay_matches<F>(verdict: &Verdict, end: &ReplayEnd, final_check: &F) -> bool
where
    F: Fn(&[Word]) -> Result<(), String>,
{
    match (verdict, end) {
        (Verdict::Deadlock { .. }, ReplayEnd::Deadlock(_)) => true,
        (Verdict::LostWakeup { .. }, ReplayEnd::LostWakeup(_)) => true,
        (Verdict::Race { .. }, ReplayEnd::Race(_)) => true,
        (Verdict::Starvation { .. }, ReplayEnd::Starvation(_)) => true,
        (Verdict::Violation { .. }, ReplayEnd::Panic(_)) => true,
        (Verdict::Violation { .. }, ReplayEnd::Complete(mem)) => final_check(mem).is_err(),
        _ => false,
    }
}

/// Greedily shrinks a failing verdict's schedule to a locally-minimal one
/// that still replays to the same verdict class under `explorer`.
///
/// Three move kinds, applied to a fixpoint, cheapest reduction first:
///
/// 1. **truncate** — cut the schedule at a context-switch boundary and
///    let the default policy finish the run (shortest surviving prefix
///    wins);
/// 2. **drop a run** — delete one maximal block of consecutive
///    same-thread steps, merging its neighbors when they are the same
///    thread (removes two context switches at once);
/// 3. **drop a step** — delete a single step.
///
/// Every accepted move strictly shortens the schedule, so the loop
/// terminates; the result is locally minimal with respect to the move
/// set. Returns `None` for a passing verdict (nothing to shrink).
pub fn shrink_schedule<F>(
    program: &Program,
    explorer: &Explorer,
    verdict: &Verdict,
    final_check: &F,
) -> Option<Shrunk>
where
    F: Fn(&[Word]) -> Result<(), String>,
{
    let schedule = verdict.schedule()?;
    let mut cur: Vec<usize> = schedule.to_vec();
    let mut replays = 0usize;
    let attempt = |cand: &[usize], replays: &mut usize| -> bool {
        *replays += 1;
        replay_matches(verdict, &explorer.replay(program, cand).end, final_check)
    };

    loop {
        let mut improved = false;

        // Move 1: truncation at context-switch boundaries, shortest first.
        let mut cuts: Vec<usize> = std::iter::once(0)
            .chain((1..cur.len()).filter(|&i| cur[i] != cur[i - 1]))
            .collect();
        cuts.retain(|&c| c < cur.len());
        for cut in cuts {
            if attempt(&cur[..cut], &mut replays) {
                cur.truncate(cut);
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Move 2: drop one maximal same-thread run.
        let runs = rle(&cur);
        if runs.len() > 1 {
            for skip in 0..runs.len() {
                let cand: Vec<usize> = runs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .flat_map(|(_, &(t, n))| std::iter::repeat_n(t, n))
                    .collect();
                if attempt(&cand, &mut replays) {
                    cur = cand;
                    improved = true;
                    break;
                }
            }
        }
        if improved {
            continue;
        }

        // Move 3: drop one step.
        for i in 0..cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if attempt(&cand, &mut replays) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Some(Shrunk {
        schedule: cur,
        replays,
    })
}

/// Run-length encoding of a schedule: `(thread, count)` per maximal block.
fn rle(schedule: &[usize]) -> Vec<(usize, usize)> {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for &t in schedule {
        match runs.last_mut() {
            Some((rt, n)) if *rt == t => *n += 1,
            _ => runs.push((t, 1)),
        }
    }
    runs
}

/// Campaign seed: `SYNCMECH_FUZZ_SEED` if set, else
/// [`DEFAULT_FUZZ_SEED`].
///
/// # Panics
///
/// If the variable is set to zero or to anything non-numeric — a user who
/// sets it meant to pin the campaign; a silent fallback would make a typo
/// look like an unreproducible run.
pub fn fuzz_seed() -> u64 {
    let var = std::env::var("SYNCMECH_FUZZ_SEED").ok();
    match fuzz_seed_from(var.as_deref()) {
        Ok(n) => n,
        Err(msg) => panic!("{msg}"),
    }
}

/// The policy behind [`fuzz_seed`], environment lookup factored out for
/// testability: `None` means the variable is unset.
pub fn fuzz_seed_from(var: Option<&str>) -> Result<u64, String> {
    let Some(raw) = var else {
        return Ok(DEFAULT_FUZZ_SEED);
    };
    match raw.trim().parse::<u64>() {
        Ok(0) => Err(
            "SYNCMECH_FUZZ_SEED=0: seed 0 is reserved so an unset-looking value can never \
             masquerade as a pinned campaign; set a positive seed, or unset the variable \
             for the default"
                .to_string(),
        ),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "SYNCMECH_FUZZ_SEED={raw:?} is not a positive integer; set a seed like 1991, \
             or unset the variable for the default"
        )),
    }
}

/// Campaign iteration budget: `SYNCMECH_FUZZ_ITERS` if set, else
/// [`DEFAULT_FUZZ_ITERS`].
///
/// # Panics
///
/// If the variable is set to zero or to anything non-numeric, for the same
/// reason as [`fuzz_seed`].
pub fn fuzz_iters() -> usize {
    let var = std::env::var("SYNCMECH_FUZZ_ITERS").ok();
    match fuzz_iters_from(var.as_deref()) {
        Ok(n) => n,
        Err(msg) => panic!("{msg}"),
    }
}

/// The policy behind [`fuzz_iters`], environment lookup factored out for
/// testability: `None` means the variable is unset.
pub fn fuzz_iters_from(var: Option<&str>) -> Result<usize, String> {
    let Some(raw) = var else {
        return Ok(DEFAULT_FUZZ_ITERS);
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(
            "SYNCMECH_FUZZ_ITERS=0: a zero-iteration campaign can never find anything; \
             set a positive budget, or unset the variable for the default"
                .to_string(),
        ),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "SYNCMECH_FUZZ_ITERS={raw:?} is not a positive integer; set a budget like \
             1000, or unset the variable for the default"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::SyncCtx;

    fn lost_update_program() -> Program {
        Program::new(2, 1, |ctx| {
            let v = ctx.load(0);
            ctx.store(0, v + 1);
        })
    }

    fn lost_update_check(mem: &[Word]) -> Result<(), String> {
        if mem[0] == 2 {
            Ok(())
        } else {
            Err(format!("lost update: counter = {}", mem[0]))
        }
    }

    #[test]
    fn uniform_finds_the_lost_update() {
        let program = lost_update_program();
        let report = Fuzzer::new(1, 200, Strategy::Uniform).run(&program, lost_update_check);
        assert!(report.verdict.is_violation(), "uniform walk must find it");
        assert!(report.failing_iter.is_some());
    }

    #[test]
    fn pct_finds_the_lost_update() {
        let program = lost_update_program();
        let report = Fuzzer::new(1, 200, Strategy::default()).run(&program, lost_update_check);
        assert!(report.verdict.is_violation(), "pct must find it");
    }

    #[test]
    fn atomic_counter_passes_the_whole_budget() {
        let program = Program::new(3, 1, |ctx| {
            ctx.fetch_add(0, 1);
        });
        let report = Fuzzer::new(7, 150, Strategy::default()).run(&program, |mem| {
            if mem[0] == 3 {
                Ok(())
            } else {
                Err(format!("counter = {}", mem[0]))
            }
        });
        report.expect_pass("atomic counter");
        assert_eq!(report.verdict.stats().runs, 150);
        assert!(
            !report.verdict.stats().complete,
            "sampling must never claim exhaustion"
        );
    }

    #[test]
    fn same_seed_same_schedule_and_verdict() {
        let program = lost_update_program();
        for strategy in [Strategy::Uniform, Strategy::default()] {
            let a = Fuzzer::new(42, 300, strategy).run(&program, lost_update_check);
            let b = Fuzzer::new(42, 300, strategy).run(&program, lost_update_check);
            assert_eq!(
                a.verdict.schedule(),
                b.verdict.schedule(),
                "{strategy}: schedules must be byte-identical"
            );
            assert_eq!(a.failing_iter, b.failing_iter);
            assert_eq!(
                format!("{:?}", a.verdict),
                format!("{:?}", b.verdict),
                "{strategy}: verdicts must be byte-identical"
            );
        }
    }

    #[test]
    fn fuzz_verdict_schedule_replays_to_the_same_class() {
        let program = lost_update_program();
        let fuzzer = Fuzzer::new(3, 300, Strategy::Uniform);
        let report = fuzzer.run(&program, lost_update_check);
        let schedule = report.verdict.schedule().expect("must fail").to_vec();
        let replay = fuzzer.explorer().replay(&program, &schedule);
        assert!(
            replay_matches(&report.verdict, &replay.end, &lost_update_check),
            "raw fuzz schedule must replay to the same verdict class, got {:?}",
            replay.end
        );
    }

    #[test]
    fn shrinking_reaches_a_minimal_lost_update() {
        // The minimal lost-update interleaving needs 3 scheduled steps:
        // t0 load, t1 load+store (or the mirror), then the default policy
        // finishes t0's stale store. Shrinking must get at least as short.
        let program = lost_update_program();
        let fuzzer = Fuzzer::new(5, 300, Strategy::Uniform);
        let report = fuzzer.run(&program, lost_update_check);
        let shrunk = report.shrunk.expect("shrinking is on by default");
        assert!(
            shrunk.schedule.len() <= 3,
            "shrunk schedule still long: {:?}",
            shrunk.schedule
        );
        let replay = fuzzer.explorer().replay(&program, &shrunk.schedule);
        assert!(
            replay_matches(&report.verdict, &replay.end, &lost_update_check),
            "shrunk schedule must reproduce the verdict, got {:?}",
            replay.end
        );
        assert!(shrunk.replays > 0);
    }

    #[test]
    fn fuzz_finds_lost_wakeup_as_lost_wakeup() {
        // Missing-wake program: the fuzzer must classify the hang exactly
        // as the explorer would — a LostWakeup, never a Deadlock.
        let program = Program::new(2, 1, |ctx| {
            if ctx.pid() == 0 {
                let mut cur = ctx.load(0);
                while cur == 0 {
                    cur = ctx.futex_wait(0, 0);
                }
            } else {
                ctx.store(0, 1); // no wake
            }
        });
        let report = Fuzzer::new(2, 100, Strategy::default()).run(&program, |_| Ok(()));
        match report.verdict {
            Verdict::LostWakeup { ref parked, .. } => {
                assert_eq!(parked, &vec![(0usize, 0usize)]);
            }
            ref other => panic!("expected lost wakeup, got {other:?}"),
        }
    }

    #[test]
    fn pct_demotions_are_bounded_by_change_points() {
        // A PCT chooser over 3 threads must stay deterministic and legal
        // across any eligible-set shape the scheduler can hand it.
        let mut c = Chooser::new(
            Strategy::Pct { change_points: 2 },
            Rng::new(9),
            3,
            50,
        );
        for step in 0..50 {
            let eligible: Vec<usize> = match step % 3 {
                0 => vec![0, 1, 2],
                1 => vec![1, 2],
                _ => vec![0, 2],
            };
            let pick = c.choose(step, &eligible);
            assert!(eligible.contains(&pick));
        }
    }

    #[test]
    fn strategy_parsing_round_trips_and_rejects_garbage() {
        assert_eq!(Strategy::parse("uniform").unwrap(), Strategy::Uniform);
        assert_eq!(
            Strategy::parse("pct").unwrap(),
            Strategy::Pct { change_points: 3 }
        );
        assert_eq!(
            Strategy::parse("pct:5").unwrap(),
            Strategy::Pct { change_points: 5 }
        );
        assert_eq!(Strategy::parse(" PCT:2 ").unwrap(), Strategy::Pct { change_points: 2 });
        assert!(Strategy::parse("pct:0").unwrap_err().contains("change point"));
        assert!(Strategy::parse("pct:x").unwrap_err().contains("not a positive integer"));
        assert!(Strategy::parse("dfs").unwrap_err().contains("unknown strategy"));
        for s in [Strategy::Uniform, Strategy::Pct { change_points: 4 }] {
            assert_eq!(Strategy::parse(&s.to_string()).unwrap(), s);
        }
    }

    #[test]
    fn fuzz_seed_env_is_validated_strictly() {
        assert_eq!(fuzz_seed_from(None).unwrap(), DEFAULT_FUZZ_SEED);
        assert_eq!(fuzz_seed_from(Some("7")).unwrap(), 7);
        assert_eq!(fuzz_seed_from(Some(" 1991 ")).unwrap(), 1991);
        let zero = fuzz_seed_from(Some("0")).unwrap_err();
        assert!(zero.contains("seed 0 is reserved"), "got: {zero}");
        for bad in ["", "seed", "-2", "3.5"] {
            let err = fuzz_seed_from(Some(bad)).unwrap_err();
            assert!(err.contains("not a positive integer"), "{bad:?} got: {err}");
        }
    }

    #[test]
    fn fuzz_iters_env_is_validated_strictly() {
        assert_eq!(fuzz_iters_from(None).unwrap(), DEFAULT_FUZZ_ITERS);
        assert_eq!(fuzz_iters_from(Some("250")).unwrap(), 250);
        let zero = fuzz_iters_from(Some("0")).unwrap_err();
        assert!(zero.contains("zero-iteration"), "got: {zero}");
        for bad in ["", "many", "-1", "1e3"] {
            let err = fuzz_iters_from(Some(bad)).unwrap_err();
            assert!(err.contains("not a positive integer"), "{bad:?} got: {err}");
        }
    }

    #[test]
    fn rle_round_trips() {
        let s = [0usize, 0, 1, 1, 1, 0, 2];
        assert_eq!(rle(&s), vec![(0, 2), (1, 3), (0, 1), (2, 1)]);
        assert_eq!(rle(&[]), vec![]);
    }
}
