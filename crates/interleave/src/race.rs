//! Vector-clock happens-before race detection (FastTrack-style epochs).
//!
//! The checker models a sequentially consistent 1991 multiprocessor, where
//! every `SyncCtx` operation is effectively an SC atomic. What can still go
//! wrong is the **protocol**: a kernel is supposed to *order* the data
//! accesses of its clients (critical sections, barrier-separated phases),
//! and a kernel bug leaves two client accesses unordered — a data race in
//! the happens-before sense, even on schedules whose final state happens to
//! look right.
//!
//! The detector therefore splits accesses in two classes, mirroring the
//! [`kernels::SyncCtx`] API:
//!
//! * **synchronization accesses** — everything a kernel does (`load`,
//!   `store`, `swap`, `cas`, `fetch_add`, spin reads). These *create*
//!   happens-before: a read joins the address's release clock into the
//!   thread, a write joins the thread's clock into the address (and ticks
//!   the thread). This is exactly the reads-from order of SC execution.
//! * **data accesses** — `data_load` / `data_store`. These are *checked*:
//!   a data access racing with a prior conflicting data access that is not
//!   happens-before it is reported with both sites. Data accesses do not
//!   create ordering — that is the whole point: schedule order is not
//!   synchronization.
//!
//! Following FastTrack (Flanagan & Freund, PLDI 2009), the last write per
//! address is a single **epoch** `(thread, clock)` — same-epoch comparison
//! is O(1) — and the read set is an adaptive epoch-per-thread list that
//! only grows while reads are concurrent. Thread counts here are ≤ 64 and
//! programs are tiny, so the representation favours clarity over the last
//! nanosecond.

use crate::program::OpMeta;
use memsim::Addr;
use std::collections::HashMap;

/// Logical time of one thread component.
pub type Clock = u64;

/// A FastTrack epoch: one component of a vector clock, identifying a
/// specific operation-point `clk` of thread `tid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Thread id.
    pub tid: usize,
    /// That thread's clock at the access.
    pub clk: Clock,
}

/// A vector clock over all threads of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<Clock>,
}

impl VectorClock {
    /// The zero clock for `n` threads.
    pub fn new(n: usize) -> Self {
        VectorClock { c: vec![0; n] }
    }

    /// This clock's component for `tid`.
    pub fn get(&self, tid: usize) -> Clock {
        self.c[tid]
    }

    /// Component-wise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.c.iter_mut().zip(&other.c) {
            *a = (*a).max(*b);
        }
    }

    /// Advances this thread's own component.
    pub fn tick(&mut self, tid: usize) {
        self.c[tid] += 1;
    }

    /// Does this clock know about (happen after) `e`?
    pub fn covers(&self, e: Epoch) -> bool {
        e.clk <= self.c[e.tid]
    }
}

/// Where a data access happened, in schedule-independent coordinates: the
/// `op_index`-th shared-memory operation issued by thread `pid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Thread id.
    pub pid: usize,
    /// Index of the access among the thread's shared-memory operations.
    pub op_index: usize,
    /// True for a data store, false for a data load.
    pub write: bool,
}

impl std::fmt::Display for AccessSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} op #{} ({})",
            self.pid,
            self.op_index,
            if self.write { "write" } else { "read" }
        )
    }
}

/// A detected data race: two conflicting, happens-before-unordered data
/// accesses to `addr`. `prior` was executed earlier in the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The shared word both sites touched.
    pub addr: Addr,
    /// The earlier access.
    pub prior: AccessSite,
    /// The later access, concurrent with `prior`.
    pub current: AccessSite,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race on word {}: {} is concurrent with {}",
            self.addr, self.prior, self.current
        )
    }
}

/// Per-address detector state.
#[derive(Debug, Clone, Default)]
struct VarState {
    /// Last data write, as an epoch plus its report site.
    write: Option<(Epoch, AccessSite)>,
    /// Data reads since the last ordered write: at most one (epoch, site)
    /// per thread. One entry is FastTrack's read-epoch fast path; the list
    /// grows only while reads are genuinely concurrent.
    reads: Vec<(Epoch, AccessSite)>,
}

/// The happens-before engine for one execution.
#[derive(Debug, Clone)]
pub(crate) struct RaceDetector {
    /// Per-thread vector clocks.
    threads: Vec<VectorClock>,
    /// Per-address release clock: everything a sync read of the address
    /// happens after.
    release: Vec<VectorClock>,
    /// Per-address data-access state.
    vars: Vec<VarState>,
}

impl RaceDetector {
    pub(crate) fn new(nthreads: usize, words: usize) -> Self {
        let mut threads: Vec<VectorClock> =
            (0..nthreads).map(|_| VectorClock::new(nthreads)).collect();
        // Distinct initial components so epochs from different threads are
        // never spuriously equal.
        for (t, vc) in threads.iter_mut().enumerate() {
            vc.tick(t);
        }
        RaceDetector {
            threads,
            release: (0..words).map(|_| VectorClock::new(nthreads)).collect(),
            vars: vec![VarState::default(); words],
        }
    }

    /// A synchronization read of `addr` by `tid` (kernel load, spin probe,
    /// the read half of an RMW): acquire the address's release clock.
    pub(crate) fn sync_read(&mut self, tid: usize, addr: Addr) {
        self.threads[tid].join(&self.release[addr]);
    }

    /// A synchronization write of `addr` by `tid` (kernel store, the write
    /// half of an RMW): release the thread's clock into the address and
    /// advance the thread.
    pub(crate) fn sync_write(&mut self, tid: usize, addr: Addr) {
        let vc = self.threads[tid].clone();
        self.release[addr].join(&vc);
        self.threads[tid].tick(tid);
    }

    fn epoch(&self, tid: usize) -> Epoch {
        Epoch {
            tid,
            clk: self.threads[tid].get(tid),
        }
    }

    /// A data read of `addr` by `tid`. Returns the race with the last data
    /// write if that write is not ordered before this read.
    pub(crate) fn data_read(
        &mut self,
        tid: usize,
        addr: Addr,
        site: AccessSite,
    ) -> Option<RaceReport> {
        let var = &mut self.vars[addr];
        let race = match var.write {
            Some((w, wsite)) if w.tid != tid && !self.threads[tid].covers(w) => {
                Some(RaceReport {
                    addr,
                    prior: wsite,
                    current: site,
                })
            }
            _ => None,
        };
        let e = Epoch {
            tid,
            clk: self.threads[tid].get(tid),
        };
        match var.reads.iter_mut().find(|(r, _)| r.tid == tid) {
            Some(entry) => *entry = (e, site),
            None => var.reads.push((e, site)),
        }
        race
    }

    /// A data write of `addr` by `tid`. Returns the race with the last
    /// data write or any unordered data read.
    pub(crate) fn data_write(
        &mut self,
        tid: usize,
        addr: Addr,
        site: AccessSite,
    ) -> Option<RaceReport> {
        let me = self.epoch(tid);
        let var = &mut self.vars[addr];
        let mut race = match var.write {
            Some((w, wsite)) if w.tid != tid && !self.threads[tid].covers(w) => {
                Some(RaceReport {
                    addr,
                    prior: wsite,
                    current: site,
                })
            }
            _ => None,
        };
        if race.is_none() {
            race = var
                .reads
                .iter()
                .find(|&&(r, _)| r.tid != tid && !self.threads[tid].covers(r))
                .map(|&(_, rsite)| RaceReport {
                    addr,
                    prior: rsite,
                    current: site,
                });
        }
        var.write = Some((me, site));
        var.reads.clear();
        race
    }
}

/// Happens-before clocks over the **Mazurkiewicz dependence** relation,
/// one clock per executed scheduling step — the engine behind the
/// explorer's source-set / wakeup-tree DPOR (see [`crate::explorer`]).
///
/// This is deliberately a *different* happens-before than
/// [`RaceDetector`]'s: the race detector's sync clocks only order a read
/// after the writes it may observe (the reads-from order), which is what
/// data-race checking wants. DPOR instead needs the full dependence
/// order — write↔write, read↔write, and futex pairs on the same word all
/// create edges, because swapping any such pair changes the run. Each
/// pushed step joins the clocks of its direct dependence predecessors and
/// ticks its thread; two dependent steps whose clocks do *not* order them
/// are a **reversible race**, the signal that tells the explorer where a
/// backtrack point is needed.
#[derive(Debug, Clone)]
pub(crate) struct DporAnalysis {
    nthreads: usize,
    /// Clock of each thread's latest step.
    thread_clocks: Vec<VectorClock>,
    /// Steps taken per thread (the epoch source).
    taken: Vec<Clock>,
    /// Per executed step: its clock (after joins + tick), epoch, thread,
    /// and operation.
    step_clock: Vec<VectorClock>,
    step_epoch: Vec<Epoch>,
    step_tid: Vec<usize>,
    step_op: Vec<Option<OpMeta>>,
    /// Step indices touching each word, ascending — the only candidates
    /// for dependence with a later op on that word.
    by_addr: HashMap<Addr, Vec<usize>>,
    /// Steps with unknown ops: conservatively dependent with everything.
    opaque: Vec<usize>,
}

impl DporAnalysis {
    pub(crate) fn new(nthreads: usize) -> Self {
        DporAnalysis {
            nthreads,
            thread_clocks: (0..nthreads).map(|_| VectorClock::new(nthreads)).collect(),
            taken: vec![0; nthreads],
            step_clock: Vec::new(),
            step_epoch: Vec::new(),
            step_tid: Vec::new(),
            step_op: Vec::new(),
            by_addr: HashMap::new(),
            opaque: Vec::new(),
        }
    }

    /// The thread that took step `i`.
    pub(crate) fn tid(&self, i: usize) -> usize {
        self.step_tid[i]
    }

    /// Step `i` happens-before step `k` (dependence order, `i < k`).
    pub(crate) fn hb(&self, i: usize, k: usize) -> bool {
        self.step_clock[k].covers(self.step_epoch[i])
    }

    /// Direct dependence between two recorded steps (unknown ops are
    /// conservatively dependent with everything).
    pub(crate) fn steps_dependent(&self, i: usize, k: usize) -> bool {
        if self.step_tid[i] == self.step_tid[k] {
            return true; // program order
        }
        match (self.step_op[i], self.step_op[k]) {
            (Some(a), Some(b)) => a.dependent(b),
            _ => true,
        }
    }

    /// Records the next step of the execution and returns the indices of
    /// earlier steps in a **reversible race** with it: directly dependent,
    /// by another thread, and not already ordered before it through other
    /// events. Returned ascending.
    pub(crate) fn push_step(&mut self, tid: usize, op: Option<OpMeta>) -> Vec<usize> {
        let mut clock = self.thread_clocks[tid].clone();
        // Candidate predecessors: same-word steps (dependence needs a
        // shared word), plus opaque steps; everything for an opaque op.
        let mut cands: Vec<usize> = match op {
            Some(m) => {
                let mut v = self.by_addr.get(&m.addr).cloned().unwrap_or_default();
                v.extend_from_slice(&self.opaque);
                v
            }
            None => (0..self.step_tid.len()).collect(),
        };
        cands.sort_unstable();
        cands.dedup();
        let mut races = Vec::new();
        // Scan newest-first: joining each unordered predecessor's clock
        // lets it shadow the older steps it already orders, so only the
        // *immediate* unordered predecessors report as races.
        for &i in cands.iter().rev() {
            if self.step_tid[i] == tid {
                continue; // program order, already in `clock`
            }
            let dependent = match (self.step_op[i], op) {
                (Some(a), Some(b)) => a.dependent(b),
                _ => true,
            };
            if !dependent || clock.covers(self.step_epoch[i]) {
                continue;
            }
            races.push(i);
            clock.join(&self.step_clock[i]);
        }
        self.taken[tid] += 1;
        clock.tick(tid);
        debug_assert_eq!(clock.get(tid), self.taken[tid]);
        let j = self.step_tid.len();
        let epoch = Epoch {
            tid,
            clk: self.taken[tid],
        };
        match op {
            Some(m) => self.by_addr.entry(m.addr).or_default().push(j),
            None => self.opaque.push(j),
        }
        self.thread_clocks[tid] = clock.clone();
        self.step_clock.push(clock);
        self.step_epoch.push(epoch);
        self.step_tid.push(tid);
        self.step_op.push(op);
        races.reverse();
        races
    }

    pub(crate) fn nthreads(&self) -> usize {
        self.nthreads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(pid: usize, op: usize, write: bool) -> AccessSite {
        AccessSite {
            pid,
            op_index: op,
            write,
        }
    }

    #[test]
    fn vector_clock_join_and_covers() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = VectorClock::new(2);
        b.tick(1);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 2);
        assert!(a.covers(Epoch { tid: 1, clk: 2 }));
        assert!(!a.covers(Epoch { tid: 1, clk: 3 }));
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = RaceDetector::new(2, 1);
        assert!(d.data_write(0, 0, site(0, 0, true)).is_none());
        let race = d.data_write(1, 0, site(1, 0, true)).expect("race");
        assert_eq!(race.prior.pid, 0);
        assert_eq!(race.current.pid, 1);
    }

    #[test]
    fn write_read_race_without_sync() {
        let mut d = RaceDetector::new(2, 1);
        assert!(d.data_write(0, 0, site(0, 0, true)).is_none());
        assert!(d.data_read(1, 0, site(1, 0, false)).is_some());
    }

    #[test]
    fn read_write_race_without_sync() {
        let mut d = RaceDetector::new(2, 1);
        assert!(d.data_read(0, 0, site(0, 0, false)).is_none());
        let race = d.data_write(1, 0, site(1, 0, true)).expect("race");
        assert!(!race.prior.write);
    }

    #[test]
    fn reads_do_not_race_with_reads() {
        let mut d = RaceDetector::new(3, 1);
        assert!(d.data_read(0, 0, site(0, 0, false)).is_none());
        assert!(d.data_read(1, 0, site(1, 0, false)).is_none());
        assert!(d.data_read(2, 0, site(2, 0, false)).is_none());
    }

    #[test]
    fn release_acquire_chain_orders_accesses() {
        // Thread 0 writes data, then releases through sync word 1;
        // thread 1 acquires through word 1, then touches the data: no race.
        let mut d = RaceDetector::new(2, 2);
        assert!(d.data_write(0, 0, site(0, 0, true)).is_none());
        d.sync_write(0, 1);
        d.sync_read(1, 1);
        assert!(d.data_read(1, 0, site(1, 1, false)).is_none());
        assert!(d.data_write(1, 0, site(1, 2, true)).is_none());
    }

    #[test]
    fn sync_on_unrelated_word_does_not_order() {
        let mut d = RaceDetector::new(2, 3);
        assert!(d.data_write(0, 0, site(0, 0, true)).is_none());
        d.sync_write(0, 1); // released through word 1...
        d.sync_read(1, 2); // ...but thread 1 acquired word 2
        assert!(d.data_write(1, 0, site(1, 1, true)).is_some());
    }

    #[test]
    fn transitive_happens_before_through_third_thread() {
        // 0 → (word 1) → 2 → (word 2) → 1 orders 0's write before 1's.
        let mut d = RaceDetector::new(3, 3);
        assert!(d.data_write(0, 0, site(0, 0, true)).is_none());
        d.sync_write(0, 1);
        d.sync_read(2, 1);
        d.sync_write(2, 2);
        d.sync_read(1, 2);
        assert!(d.data_read(1, 0, site(1, 0, false)).is_none());
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let mut d = RaceDetector::new(2, 1);
        assert!(d.data_write(0, 0, site(0, 0, true)).is_none());
        assert!(d.data_read(0, 0, site(0, 1, false)).is_none());
        assert!(d.data_write(0, 0, site(0, 2, true)).is_none());
    }

    #[test]
    fn concurrent_read_then_ordered_write_still_races_with_other_reader() {
        // Readers 0 and 1 both read; writer 2 synchronizes only with 0.
        let mut d = RaceDetector::new(3, 2);
        assert!(d.data_read(0, 0, site(0, 0, false)).is_none());
        assert!(d.data_read(1, 0, site(1, 0, false)).is_none());
        d.sync_write(0, 1);
        d.sync_read(2, 1);
        let race = d.data_write(2, 0, site(2, 1, true)).expect("race with reader 1");
        assert_eq!(race.prior.pid, 1);
    }

    mod dpor {
        use super::super::DporAnalysis;
        use crate::program::{OpKind, OpMeta};

        fn st(addr: usize) -> Option<OpMeta> {
            Some(OpMeta {
                addr,
                kind: OpKind::SyncStore,
            })
        }

        fn ld(addr: usize) -> Option<OpMeta> {
            Some(OpMeta {
                addr,
                kind: OpKind::SyncLoad,
            })
        }

        #[test]
        fn dependent_unordered_steps_race() {
            let mut an = DporAnalysis::new(2);
            assert!(an.push_step(0, st(0)).is_empty());
            // Thread 1's store to the same word is unordered with step 0.
            assert_eq!(an.push_step(1, st(0)), vec![0]);
            assert!(an.hb(0, 1), "the race edge itself orders the steps");
        }

        #[test]
        fn independent_steps_do_not_race() {
            let mut an = DporAnalysis::new(2);
            assert!(an.push_step(0, st(0)).is_empty());
            assert!(an.push_step(1, st(1)).is_empty(), "different words");
            assert_eq!(an.push_step(1, ld(0)), vec![0], "read vs write races");
            let mut an = DporAnalysis::new(2);
            an.push_step(0, ld(0));
            assert!(an.push_step(1, ld(0)).is_empty(), "two reads commute");
        }

        #[test]
        fn ordered_dependent_steps_do_not_re_race() {
            // t0 stores a, t1's rmw on a races with it; t1's *second* op on
            // a is then ordered after t0's store through t1's first — only
            // the immediate unordered predecessor reports.
            let mut an = DporAnalysis::new(2);
            an.push_step(0, st(0));
            assert_eq!(an.push_step(1, st(0)), vec![0]);
            assert!(an.push_step(1, st(0)).is_empty());
        }

        #[test]
        fn transitive_order_through_third_thread_suppresses_race() {
            // t0 w(a); t1 w(a) (races, then ordered); t2 w(a) races only
            // with t1 — t0 is shadowed behind t1's join.
            let mut an = DporAnalysis::new(3);
            an.push_step(0, st(0));
            assert_eq!(an.push_step(1, st(0)), vec![0]);
            assert_eq!(an.push_step(2, st(0)), vec![1]);
        }

        #[test]
        fn program_order_never_races() {
            let mut an = DporAnalysis::new(2);
            an.push_step(0, st(0));
            assert!(an.push_step(0, st(0)).is_empty());
            assert!(an.hb(0, 1));
        }

        #[test]
        fn opaque_steps_are_conservatively_dependent() {
            let mut an = DporAnalysis::new(2);
            an.push_step(0, st(0));
            assert_eq!(an.push_step(1, None), vec![0]);
        }
    }
}
