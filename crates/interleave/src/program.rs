//! Programs under test and the schedule-controlled execution context.

use kernels::SyncCtx;
use memsim::{Addr, Word};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel payload used to unwind worker threads when a run is torn down
/// (verdict already decided elsewhere). Never reported as a failure.
struct ChkAbort;

/// Wait predicate mirroring the kernels' spin semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pred {
    /// Runnable when the word differs from the value.
    WhileEq(Word),
    /// Runnable when the word equals the value.
    UntilEq(Word),
}

impl Pred {
    pub(crate) fn satisfied(self, cur: Word) -> bool {
        match self {
            Pred::WhileEq(v) => cur != v,
            Pred::UntilEq(v) => cur == v,
        }
    }
}

/// Scheduler-visible state of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    /// Executing local code (or not yet at its first operation).
    Running,
    /// Parked at a schedule point, waiting to be granted a step.
    Ready,
    /// Parked in a spin whose predicate is false.
    Blocked(Addr, Pred),
    /// Body returned (or unwound).
    Finished,
}

/// Shared state of one execution.
pub(crate) struct Shared {
    pub memory: Vec<Word>,
    pub states: Vec<TState>,
    /// Thread currently allowed to take its step.
    pub grant: Option<usize>,
    /// First assertion/panic message raised by the program.
    pub panic_msg: Option<String>,
    /// Tear-down flag: parked threads unwind when they observe it.
    pub aborted: bool,
}

pub(crate) struct RunState {
    pub mu: Mutex<Shared>,
    pub cv: Condvar,
}

impl RunState {
    pub(crate) fn new(memory: Vec<Word>, nthreads: usize) -> Arc<Self> {
        Arc::new(RunState {
            mu: Mutex::new(Shared {
                memory,
                states: vec![TState::Running; nthreads],
                grant: None,
                panic_msg: None,
                aborted: false,
            }),
            cv: Condvar::new(),
        })
    }
}

/// The execution context handed to each thread of a [`Program`]. Implements
/// [`kernels::SyncCtx`], so lock/barrier kernels run on it unmodified.
pub struct ChkCtx {
    pid: usize,
    nthreads: usize,
    rs: Arc<RunState>,
}

impl ChkCtx {
    fn step<R>(&mut self, f: impl FnOnce(&mut Vec<Word>) -> R) -> R {
        let mut g = self.rs.mu.lock().unwrap();
        g.states[self.pid] = TState::Ready;
        self.rs.cv.notify_all();
        loop {
            if g.aborted {
                drop(g);
                std::panic::panic_any(ChkAbort);
            }
            if g.grant == Some(self.pid) {
                break;
            }
            g = self.rs.cv.wait(g).unwrap();
        }
        g.grant = None;
        g.states[self.pid] = TState::Running;
        let r = f(&mut g.memory);
        self.rs.cv.notify_all();
        r
    }

    fn spin(&mut self, addr: Addr, pred: Pred) -> Word {
        let mut g = self.rs.mu.lock().unwrap();
        g.states[self.pid] = TState::Ready;
        self.rs.cv.notify_all();
        loop {
            if g.aborted {
                drop(g);
                std::panic::panic_any(ChkAbort);
            }
            if g.grant == Some(self.pid) {
                g.grant = None;
                let cur = g.memory[addr];
                if pred.satisfied(cur) {
                    g.states[self.pid] = TState::Running;
                    self.rs.cv.notify_all();
                    return cur;
                }
                // Wake-up raced a conflicting write (or this is the first
                // probe): park until the scheduler re-readies us.
                g.states[self.pid] = TState::Blocked(addr, pred);
                self.rs.cv.notify_all();
            } else {
                g = self.rs.cv.wait(g).unwrap();
            }
        }
    }
}

impl SyncCtx for ChkCtx {
    fn pid(&self) -> usize {
        self.pid
    }
    fn nprocs(&self) -> usize {
        self.nthreads
    }
    fn load(&mut self, addr: Addr) -> Word {
        self.step(|m| m[addr])
    }
    fn store(&mut self, addr: Addr, val: Word) {
        self.step(|m| m[addr] = val);
    }
    fn swap(&mut self, addr: Addr, val: Word) -> Word {
        self.step(|m| std::mem::replace(&mut m[addr], val))
    }
    fn cas(&mut self, addr: Addr, expected: Word, new: Word) -> Result<Word, Word> {
        self.step(|m| {
            let old = m[addr];
            if old == expected {
                m[addr] = new;
                Ok(old)
            } else {
                Err(old)
            }
        })
    }
    fn fetch_add(&mut self, addr: Addr, delta: Word) -> Word {
        self.step(|m| {
            let old = m[addr];
            m[addr] = old.wrapping_add(delta);
            old
        })
    }
    fn spin_while(&mut self, addr: Addr, val: Word) -> Word {
        self.spin(addr, Pred::WhileEq(val))
    }
    fn spin_until(&mut self, addr: Addr, val: Word) {
        self.spin(addr, Pred::UntilEq(val));
    }
    /// Local time does not exist under the checker; backoff delays are
    /// no-ops (they do not affect sequential-consistency correctness).
    fn delay(&mut self, _cycles: u64) {}
}

/// A multi-threaded program over a small shared memory.
#[derive(Clone)]
pub struct Program {
    pub(crate) nthreads: usize,
    pub(crate) memory_words: usize,
    pub(crate) init: Vec<(Addr, Word)>,
    pub(crate) body: Arc<dyn Fn(&mut ChkCtx) + Send + Sync>,
}

impl Program {
    /// Creates a program: `body` runs once per thread (distinguish roles
    /// with [`ChkCtx::pid`] via the `SyncCtx` trait).
    pub fn new<F>(nthreads: usize, memory_words: usize, body: F) -> Self
    where
        F: Fn(&mut ChkCtx) + Send + Sync + 'static,
    {
        assert!((1..=64).contains(&nthreads), "1..=64 threads supported");
        Program {
            nthreads,
            memory_words,
            init: Vec::new(),
            body: Arc::new(body),
        }
    }

    /// Sets nonzero initial memory words.
    pub fn with_init(mut self, init: Vec<(Addr, Word)>) -> Self {
        self.init = init;
        self
    }

    /// Number of threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    pub(crate) fn initial_memory(&self) -> Vec<Word> {
        let mut m = vec![0; self.memory_words];
        for &(a, v) in &self.init {
            m[a] = v;
        }
        m
    }

    /// Runs the thread body for `pid` over `rs`, translating panics into
    /// the shared state. Called from a dedicated OS thread per run.
    pub(crate) fn run_thread(&self, pid: usize, rs: Arc<RunState>) {
        let mut ctx = ChkCtx {
            pid,
            nthreads: self.nthreads,
            rs: Arc::clone(&rs),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| (self.body)(&mut ctx)));
        let mut g = rs.mu.lock().unwrap();
        if let Err(payload) = outcome {
            if payload.downcast_ref::<ChkAbort>().is_none() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                if g.panic_msg.is_none() {
                    g.panic_msg = Some(msg);
                }
            }
        }
        g.states[pid] = TState::Finished;
        rs.cv.notify_all();
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("nthreads", &self.nthreads)
            .field("memory_words", &self.memory_words)
            .field("init", &self.init)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_semantics() {
        assert!(Pred::WhileEq(1).satisfied(0));
        assert!(!Pred::WhileEq(1).satisfied(1));
        assert!(Pred::UntilEq(1).satisfied(1));
        assert!(!Pred::UntilEq(1).satisfied(0));
    }

    #[test]
    fn initial_memory_applies_init() {
        let p = Program::new(1, 4, |_| {}).with_init(vec![(2, 9)]);
        assert_eq!(p.initial_memory(), vec![0, 0, 9, 0]);
    }

    #[test]
    #[should_panic(expected = "threads supported")]
    fn zero_threads_rejected() {
        Program::new(0, 1, |_| {});
    }
}
