//! Programs under test and the schedule-controlled execution context.

use crate::race::{AccessSite, RaceDetector, RaceReport};
use kernels::{LockEvent, LockOrderGraph, SyncCtx};
use memsim::{Addr, Word};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel payload used to unwind worker threads when a run is torn down
/// (verdict already decided elsewhere). Never reported as a failure.
struct ChkAbort;

/// Keeps the default panic hook from printing a message + backtrace for
/// every [`ChkAbort`] unwind — run teardown is routine, not a crash. All
/// other payloads still reach the previously installed hook.
fn silence_abort_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChkAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Wait predicate mirroring the kernels' spin semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pred {
    /// Runnable when the word differs from the value.
    WhileEq(Word),
    /// Runnable when the word equals the value.
    UntilEq(Word),
}

impl Pred {
    pub(crate) fn satisfied(self, cur: Word) -> bool {
        match self {
            Pred::WhileEq(v) => cur != v,
            Pred::UntilEq(v) => cur == v,
        }
    }
}

/// What kind of shared-memory operation a thread is about to take (or has
/// taken). Published at every schedule point so the explorer can reason
/// about operation dependence (partial-order reduction) and so replays can
/// be rendered per-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A synchronization load ([`SyncCtx::load`]).
    SyncLoad,
    /// A synchronization store ([`SyncCtx::store`]).
    SyncStore,
    /// An atomic read-modify-write (`swap`, `cas`, `fetch_add`).
    Rmw,
    /// A race-checked data load ([`SyncCtx::data_load`]).
    DataLoad,
    /// A race-checked data store ([`SyncCtx::data_store`]).
    DataStore,
    /// One probe of a watchpoint spin (`spin_while` / `spin_until`).
    SpinRead,
    /// The atomic compare-and-block of [`SyncCtx::futex_wait`] (also the
    /// resume step a woken waiter takes to re-read the word).
    FutexWait,
    /// A [`SyncCtx::futex_wake`] draining parked waiters of a word.
    FutexWake,
}

impl OpKind {
    /// Can the operation modify memory?
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::SyncStore | OpKind::Rmw | OpKind::DataStore)
    }

    /// Is the operation part of the futex protocol? Futex ops interact
    /// through the wait queue, not (only) through the word's value, so
    /// dependence treats them like writes even though they modify nothing.
    pub fn is_futex(self) -> bool {
        matches!(self, OpKind::FutexWait | OpKind::FutexWake)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::SyncLoad => "load",
            OpKind::SyncStore => "store",
            OpKind::Rmw => "rmw",
            OpKind::DataLoad => "data-load",
            OpKind::DataStore => "data-store",
            OpKind::SpinRead => "spin",
            OpKind::FutexWait => "futex-wait",
            OpKind::FutexWake => "futex-wake",
        };
        f.write_str(s)
    }
}

/// The pending operation of a parked thread: what it will do if granted
/// its next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OpMeta {
    pub addr: Addr,
    pub kind: OpKind,
}

impl OpMeta {
    /// Mazurkiewicz dependence: two operations commute unless they touch
    /// the same word and at least one can write it. Spin probes and loads
    /// of the same word commute; anything involving a write to the shared
    /// word does not. Futex operations on a word never commute with any
    /// other operation on it: waits enqueue in FIFO order (a partial wake
    /// observes that order) and wakes transfer queue entries, so reordering
    /// them against each other — or against the reads they compare with —
    /// changes the run. Treating them as conservatively dependent keeps the
    /// sleep-set reduction sound.
    pub(crate) fn dependent(self, other: OpMeta) -> bool {
        self.addr == other.addr
            && (self.kind.is_write()
                || other.kind.is_write()
                || self.kind.is_futex()
                || other.kind.is_futex())
    }
}

/// One executed operation, recorded when the run collects an op log (used
/// by schedule replay to narrate the interleaving).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Global step index (0-based) at which the op executed.
    pub step: usize,
    /// Executing thread.
    pub pid: usize,
    /// Operation class.
    pub kind: OpKind,
    /// Word touched.
    pub addr: Addr,
    /// Value of the word *after* the operation (for reads: the value read).
    pub value: Word,
}

impl std::fmt::Display for OpRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {:>4}  t{} {:<10} [{:>3}] = {}",
            self.step, self.pid, self.kind.to_string(), self.addr, self.value
        )
    }
}

/// A waiter bypassed while starvation accounting is on: the thread issued
/// [`LockEvent::AcquireStart`] and other threads completed acquisitions of
/// the same lock more than the configured bound allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarvationReport {
    /// The bypassed thread.
    pub victim: usize,
    /// The contended lock's id.
    pub lock: usize,
    /// How many times other threads acquired while the victim waited.
    pub bypasses: usize,
}

impl std::fmt::Display for StarvationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} was bypassed {} times while waiting for lock {}",
            self.victim, self.bypasses, self.lock
        )
    }
}

/// Per-waiter accounting while a thread is between `AcquireStart` and
/// `Acquired`.
///
/// Bypass counting must not start at `AcquireStart`: the waiter has not
/// yet executed the acquire path's **doorway** (the swap / fetch-and-add
/// that claims its queue position), and acquisitions racing a
/// not-yet-enqueued waiter are legitimate for any lock. The detector
/// instead activates when the waiter demonstrably *waits*: its first spin
/// probe (queue locks spin only after enqueueing) or the first repetition
/// of an identical operation on the same word (the retry loop of
/// test-and-set-style locks). From that point on, every acquisition by
/// another thread is a bypass.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    lock: usize,
    bypasses: usize,
    /// True once the waiter is past its doorway (see above).
    active: bool,
    /// The waiter's previous operation since `AcquireStart`, for retry
    /// detection.
    last_op: Option<OpMeta>,
}

/// Analysis configuration of one run, fixed before the threads start.
#[derive(Clone, Default)]
pub(crate) struct RunCfg {
    /// Fail a run when a waiter is bypassed more than this many times.
    pub bypass_bound: Option<usize>,
    /// Cross-run lock-order graph to feed from this run's acquisitions.
    pub lockdep: Option<Arc<LockOrderGraph>>,
    /// Record every executed op (schedule replay).
    pub record_ops: bool,
}

/// Scheduler-visible state of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    /// Executing local code (or not yet at its first operation).
    Running,
    /// Parked at a schedule point, waiting to be granted a step.
    Ready,
    /// Parked in a spin whose predicate is false.
    Blocked(Addr, Pred),
    /// Parked in a futex wait on the word. Unlike [`TState::Blocked`], the
    /// scheduler never re-readies a parked thread on its own: only a
    /// [`kernels::SyncCtx::futex_wake`] covering it does. That asymmetry is
    /// the whole point — a kernel that loses a wakeup leaves the thread
    /// parked forever, and the explorer reports it as such.
    Parked(Addr),
    /// Body returned (or unwound).
    Finished,
}

/// Shared state of one execution.
pub(crate) struct Shared {
    pub memory: Vec<Word>,
    pub states: Vec<TState>,
    /// Thread currently allowed to take its step.
    pub grant: Option<usize>,
    /// First assertion/panic message raised by the program.
    pub panic_msg: Option<String>,
    /// Tear-down flag: parked threads unwind when they observe it.
    pub aborted: bool,
    /// Each parked thread's next operation (valid while Ready/Blocked).
    pub pending: Vec<Option<OpMeta>>,
    /// FIFO futex wait queue: `(word, thread)` in park order, across all
    /// words (wakes drain the oldest entries matching their word).
    pub futexq: Vec<(Addr, usize)>,
    /// Happens-before engine for this run.
    pub race: RaceDetector,
    /// First race detected this run.
    pub race_report: Option<RaceReport>,
    /// First bypass-bound violation this run.
    pub starvation: Option<StarvationReport>,
    /// Lock ids currently held, per thread (from instrumented kernels).
    held: Vec<Vec<usize>>,
    /// Bypass accounting for threads inside an acquire, per thread.
    waiting: Vec<Option<Waiting>>,
    /// Executed-op log (empty unless `cfg.record_ops`).
    pub oplog: Vec<OpRecord>,
    /// Ops granted so far (the global step counter).
    steps_taken: usize,
    pub cfg: RunCfg,
}

impl Shared {
    /// Applies the lock events a thread buffered since its last granted
    /// step. Called under the run mutex at deterministic points only: when
    /// the thread is granted a step, or when it finishes.
    fn apply_lock_events(&mut self, pid: usize, events: &mut Vec<LockEvent>) {
        for ev in events.drain(..) {
            match ev {
                LockEvent::AcquireStart(lock) => {
                    self.waiting[pid] = Some(Waiting {
                        lock,
                        bypasses: 0,
                        active: false,
                        last_op: None,
                    });
                }
                LockEvent::Acquired(lock) => {
                    self.waiting[pid] = None;
                    for (u, slot) in self.waiting.iter_mut().enumerate() {
                        if u == pid {
                            continue;
                        }
                        if let Some(w) = slot {
                            if w.lock == lock && w.active {
                                w.bypasses += 1;
                                if let Some(bound) = self.cfg.bypass_bound {
                                    if w.bypasses > bound && self.starvation.is_none() {
                                        self.starvation = Some(StarvationReport {
                                            victim: u,
                                            lock,
                                            bypasses: w.bypasses,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    if let Some(graph) = &self.cfg.lockdep {
                        graph.record_acquire(pid, &self.held[pid], lock);
                    }
                    self.held[pid].push(lock);
                }
                LockEvent::Released(lock) => {
                    if let Some(i) = self.held[pid].iter().rposition(|&x| x == lock) {
                        self.held[pid].remove(i);
                    }
                }
            }
        }
    }

    /// Feeds `pid`'s granted operation into its wait-state machine: a spin
    /// probe or a repeated identical op activates bypass counting (the
    /// waiter is demonstrably past its doorway and waiting).
    fn note_wait_op(&mut self, pid: usize, meta: OpMeta) {
        if let Some(w) = &mut self.waiting[pid] {
            if w.active {
                return;
            }
            if meta.kind == OpKind::SpinRead || w.last_op == Some(meta) {
                w.active = true;
            } else {
                w.last_op = Some(meta);
            }
        }
    }

    /// Race-detector bookkeeping for one granted operation.
    fn track_access(&mut self, pid: usize, meta: OpMeta, op_index: usize) {
        match meta.kind {
            OpKind::SyncLoad | OpKind::SpinRead => self.race.sync_read(pid, meta.addr),
            // A wait reads the word (the compare); a wake behaves like a
            // release on it — the waker's prior writes happen-before the
            // wakee's resume, which is exactly the sync-write/sync-read
            // pairing on the futex word.
            OpKind::FutexWait => self.race.sync_read(pid, meta.addr),
            OpKind::SyncStore | OpKind::FutexWake => self.race.sync_write(pid, meta.addr),
            OpKind::Rmw => {
                self.race.sync_read(pid, meta.addr);
                self.race.sync_write(pid, meta.addr);
            }
            OpKind::DataLoad | OpKind::DataStore => {
                let site = AccessSite {
                    pid,
                    op_index,
                    write: meta.kind.is_write(),
                };
                let found = if meta.kind.is_write() {
                    self.race.data_write(pid, meta.addr, site)
                } else {
                    self.race.data_read(pid, meta.addr, site)
                };
                if let Some(r) = found {
                    if self.race_report.is_none() {
                        self.race_report = Some(r);
                    }
                }
            }
        }
    }

    /// Logs one executed op and advances the global step counter.
    fn finish_op(&mut self, pid: usize, meta: OpMeta) {
        if self.cfg.record_ops {
            self.oplog.push(OpRecord {
                step: self.steps_taken,
                pid,
                kind: meta.kind,
                addr: meta.addr,
                value: self.memory[meta.addr],
            });
        }
        self.steps_taken += 1;
    }
}

pub(crate) struct RunState {
    pub mu: Mutex<Shared>,
    pub cv: Condvar,
}

impl RunState {
    pub(crate) fn new(memory: Vec<Word>, nthreads: usize, cfg: RunCfg) -> Arc<Self> {
        let words = memory.len();
        Arc::new(RunState {
            mu: Mutex::new(Shared {
                memory,
                states: vec![TState::Running; nthreads],
                grant: None,
                panic_msg: None,
                aborted: false,
                pending: vec![None; nthreads],
                futexq: Vec::new(),
                race: RaceDetector::new(nthreads, words),
                race_report: None,
                starvation: None,
                held: vec![Vec::new(); nthreads],
                waiting: vec![None; nthreads],
                oplog: Vec::new(),
                steps_taken: 0,
                cfg,
            }),
            cv: Condvar::new(),
        })
    }
}

/// The execution context handed to each thread of a [`Program`]. Implements
/// [`kernels::SyncCtx`], so lock/barrier kernels run on it unmodified.
pub struct ChkCtx {
    pid: usize,
    nthreads: usize,
    rs: Arc<RunState>,
    /// Lock events emitted since the last granted step. Kernel wrappers
    /// emit during unscheduled local code; applying them immediately would
    /// make analysis state depend on OS-thread timing, so they are buffered
    /// and applied under the run mutex at the next granted step (or at
    /// thread finish) — both deterministic points of the schedule.
    events: Vec<LockEvent>,
    /// Shared-memory ops this thread has issued (site coordinates).
    ops_done: usize,
}

impl ChkCtx {
    fn step<R>(&mut self, meta: OpMeta, f: impl FnOnce(&mut Vec<Word>) -> R) -> R {
        let mut g = self.rs.mu.lock().unwrap();
        g.pending[self.pid] = Some(meta);
        g.states[self.pid] = TState::Ready;
        self.rs.cv.notify_all();
        loop {
            if g.aborted {
                drop(g);
                std::panic::panic_any(ChkAbort);
            }
            if g.grant == Some(self.pid) {
                break;
            }
            g = self.rs.cv.wait(g).unwrap();
        }
        g.grant = None;
        g.states[self.pid] = TState::Running;
        g.apply_lock_events(self.pid, &mut self.events);
        g.note_wait_op(self.pid, meta);
        g.track_access(self.pid, meta, self.ops_done);
        let r = f(&mut g.memory);
        g.finish_op(self.pid, meta);
        self.ops_done += 1;
        self.rs.cv.notify_all();
        r
    }

    fn spin(&mut self, addr: Addr, pred: Pred) -> Word {
        let meta = OpMeta {
            addr,
            kind: OpKind::SpinRead,
        };
        let mut g = self.rs.mu.lock().unwrap();
        g.pending[self.pid] = Some(meta);
        g.states[self.pid] = TState::Ready;
        self.rs.cv.notify_all();
        loop {
            if g.aborted {
                drop(g);
                std::panic::panic_any(ChkAbort);
            }
            if g.grant == Some(self.pid) {
                g.grant = None;
                g.apply_lock_events(self.pid, &mut self.events);
                g.note_wait_op(self.pid, meta);
                g.track_access(self.pid, meta, self.ops_done);
                let cur = g.memory[addr];
                g.finish_op(self.pid, meta);
                self.ops_done += 1;
                if pred.satisfied(cur) {
                    g.states[self.pid] = TState::Running;
                    self.rs.cv.notify_all();
                    return cur;
                }
                // Wake-up raced a conflicting write (or this is the first
                // probe): park until the scheduler re-readies us.
                g.states[self.pid] = TState::Blocked(addr, pred);
                self.rs.cv.notify_all();
            } else {
                g = self.rs.cv.wait(g).unwrap();
            }
        }
    }

    /// The futex wait. The first granted step is the atomic
    /// compare-and-block: the word is read and, if it still equals
    /// `expected`, the thread enqueues on the futex queue and becomes
    /// [`TState::Parked`] in the same step — no window for a wake to slip
    /// through. A parked thread is unschedulable until some wake re-readies
    /// it, after which one more granted step re-reads and returns the word.
    fn futex_wait_op(&mut self, addr: Addr, expected: Word) -> Word {
        let meta = OpMeta {
            addr,
            kind: OpKind::FutexWait,
        };
        let mut g = self.rs.mu.lock().unwrap();
        g.pending[self.pid] = Some(meta);
        g.states[self.pid] = TState::Ready;
        self.rs.cv.notify_all();
        let mut compared = false;
        loop {
            if g.aborted {
                drop(g);
                std::panic::panic_any(ChkAbort);
            }
            if g.grant == Some(self.pid) {
                g.grant = None;
                g.apply_lock_events(self.pid, &mut self.events);
                g.note_wait_op(self.pid, meta);
                g.track_access(self.pid, meta, self.ops_done);
                let cur = g.memory[addr];
                g.finish_op(self.pid, meta);
                self.ops_done += 1;
                if !compared && cur == expected {
                    compared = true;
                    g.futexq.push((addr, self.pid));
                    g.states[self.pid] = TState::Parked(addr);
                    self.rs.cv.notify_all();
                    continue;
                }
                g.states[self.pid] = TState::Running;
                self.rs.cv.notify_all();
                return cur;
            }
            g = self.rs.cv.wait(g).unwrap();
        }
    }

    /// The futex wake: one granted step that drains up to `n` of the
    /// oldest futex-queue entries for `addr` and re-readies their threads.
    fn futex_wake_op(&mut self, addr: Addr, n: usize) -> usize {
        let meta = OpMeta {
            addr,
            kind: OpKind::FutexWake,
        };
        let mut g = self.rs.mu.lock().unwrap();
        g.pending[self.pid] = Some(meta);
        g.states[self.pid] = TState::Ready;
        self.rs.cv.notify_all();
        loop {
            if g.aborted {
                drop(g);
                std::panic::panic_any(ChkAbort);
            }
            if g.grant == Some(self.pid) {
                break;
            }
            g = self.rs.cv.wait(g).unwrap();
        }
        g.grant = None;
        g.states[self.pid] = TState::Running;
        g.apply_lock_events(self.pid, &mut self.events);
        g.note_wait_op(self.pid, meta);
        g.track_access(self.pid, meta, self.ops_done);
        let mut woken = 0;
        let mut i = 0;
        while i < g.futexq.len() && woken < n {
            if g.futexq[i].0 == addr {
                let (_, thread) = g.futexq.remove(i);
                debug_assert!(
                    matches!(g.states[thread], TState::Parked(_)),
                    "futex queue entry for a non-parked thread"
                );
                g.states[thread] = TState::Ready;
                woken += 1;
            } else {
                i += 1;
            }
        }
        g.finish_op(self.pid, meta);
        self.ops_done += 1;
        self.rs.cv.notify_all();
        woken
    }
}

impl SyncCtx for ChkCtx {
    fn pid(&self) -> usize {
        self.pid
    }
    fn nprocs(&self) -> usize {
        self.nthreads
    }
    fn load(&mut self, addr: Addr) -> Word {
        let meta = OpMeta {
            addr,
            kind: OpKind::SyncLoad,
        };
        self.step(meta, |m| m[addr])
    }
    fn store(&mut self, addr: Addr, val: Word) {
        let meta = OpMeta {
            addr,
            kind: OpKind::SyncStore,
        };
        self.step(meta, |m| m[addr] = val);
    }
    fn swap(&mut self, addr: Addr, val: Word) -> Word {
        let meta = OpMeta {
            addr,
            kind: OpKind::Rmw,
        };
        self.step(meta, |m| std::mem::replace(&mut m[addr], val))
    }
    fn cas(&mut self, addr: Addr, expected: Word, new: Word) -> Result<Word, Word> {
        let meta = OpMeta {
            addr,
            kind: OpKind::Rmw,
        };
        self.step(meta, |m| {
            let old = m[addr];
            if old == expected {
                m[addr] = new;
                Ok(old)
            } else {
                Err(old)
            }
        })
    }
    fn fetch_add(&mut self, addr: Addr, delta: Word) -> Word {
        let meta = OpMeta {
            addr,
            kind: OpKind::Rmw,
        };
        self.step(meta, |m| {
            let old = m[addr];
            m[addr] = old.wrapping_add(delta);
            old
        })
    }
    fn spin_while(&mut self, addr: Addr, val: Word) -> Word {
        self.spin(addr, Pred::WhileEq(val))
    }
    fn spin_until(&mut self, addr: Addr, val: Word) {
        self.spin(addr, Pred::UntilEq(val));
    }
    /// Local time does not exist under the checker; backoff delays are
    /// no-ops (they do not affect sequential-consistency correctness).
    fn delay(&mut self, _cycles: u64) {}

    fn data_load(&mut self, addr: Addr) -> Word {
        let meta = OpMeta {
            addr,
            kind: OpKind::DataLoad,
        };
        self.step(meta, |m| m[addr])
    }
    fn data_store(&mut self, addr: Addr, val: Word) {
        let meta = OpMeta {
            addr,
            kind: OpKind::DataStore,
        };
        self.step(meta, |m| m[addr] = val);
    }
    fn lock_event(&mut self, event: LockEvent) {
        self.events.push(event);
    }
    fn futex_wait(&mut self, addr: Addr, expected: Word) -> Word {
        self.futex_wait_op(addr, expected)
    }
    fn futex_wake(&mut self, addr: Addr, n: usize) -> usize {
        self.futex_wake_op(addr, n)
    }
}

/// A multi-threaded program over a small shared memory.
#[derive(Clone)]
pub struct Program {
    pub(crate) nthreads: usize,
    pub(crate) memory_words: usize,
    pub(crate) init: Vec<(Addr, Word)>,
    pub(crate) body: Arc<dyn Fn(&mut ChkCtx) + Send + Sync>,
    /// Lock-order graph accumulating acquisitions across every run of this
    /// program (and, if shared, across programs).
    pub(crate) lockdep: Option<Arc<LockOrderGraph>>,
}

impl Program {
    /// Creates a program: `body` runs once per thread (distinguish roles
    /// with [`ChkCtx::pid`] via the `SyncCtx` trait).
    pub fn new<F>(nthreads: usize, memory_words: usize, body: F) -> Self
    where
        F: Fn(&mut ChkCtx) + Send + Sync + 'static,
    {
        assert!((1..=64).contains(&nthreads), "1..=64 threads supported");
        Program {
            nthreads,
            memory_words,
            init: Vec::new(),
            body: Arc::new(body),
            lockdep: None,
        }
    }

    /// Sets nonzero initial memory words.
    pub fn with_init(mut self, init: Vec<(Addr, Word)>) -> Self {
        self.init = init;
        self
    }

    /// Feeds every run's lock acquisitions (reported by instrumented
    /// kernels through [`kernels::LockEvent`]) into `graph`. The same graph
    /// may be shared across several programs to find lock-order inversions
    /// no single test exhibits.
    pub fn with_lockdep(mut self, graph: Arc<LockOrderGraph>) -> Self {
        self.lockdep = Some(graph);
        self
    }

    /// Number of threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The memory image a run starts from: `memory_words` zeroed words
    /// with the [`Program::with_init`] values applied. Harnesses use its
    /// length to locate trailing workload slots (e.g. the counter).
    pub fn initial_memory(&self) -> Vec<Word> {
        let mut m = vec![0; self.memory_words];
        for &(a, v) in &self.init {
            m[a] = v;
        }
        m
    }

    /// Runs the thread body for `pid` over `rs`, translating panics into
    /// the shared state. Called from a dedicated OS thread per run.
    pub(crate) fn run_thread(&self, pid: usize, rs: Arc<RunState>) {
        silence_abort_panics();
        let mut ctx = ChkCtx {
            pid,
            nthreads: self.nthreads,
            rs: Arc::clone(&rs),
            events: Vec::new(),
            ops_done: 0,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| (self.body)(&mut ctx)));
        let mut g = rs.mu.lock().unwrap();
        // Trailing events (e.g. the Released after a kernel's final store)
        // are applied here: the thread finishing is itself a deterministic
        // schedule point — the scheduler does not take decisions while any
        // thread is still Running.
        g.apply_lock_events(pid, &mut ctx.events);
        if let Err(payload) = outcome {
            if payload.downcast_ref::<ChkAbort>().is_none() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                if g.panic_msg.is_none() {
                    g.panic_msg = Some(msg);
                }
            }
        }
        g.states[pid] = TState::Finished;
        rs.cv.notify_all();
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("nthreads", &self.nthreads)
            .field("memory_words", &self.memory_words)
            .field("init", &self.init)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_semantics() {
        assert!(Pred::WhileEq(1).satisfied(0));
        assert!(!Pred::WhileEq(1).satisfied(1));
        assert!(Pred::UntilEq(1).satisfied(1));
        assert!(!Pred::UntilEq(1).satisfied(0));
    }

    #[test]
    fn initial_memory_applies_init() {
        let p = Program::new(1, 4, |_| {}).with_init(vec![(2, 9)]);
        assert_eq!(p.initial_memory(), vec![0, 0, 9, 0]);
    }

    #[test]
    #[should_panic(expected = "threads supported")]
    fn zero_threads_rejected() {
        Program::new(0, 1, |_| {});
    }

    #[test]
    fn op_dependence_is_write_centric() {
        let r = |addr| OpMeta {
            addr,
            kind: OpKind::SyncLoad,
        };
        let w = |addr| OpMeta {
            addr,
            kind: OpKind::SyncStore,
        };
        assert!(!r(0).dependent(r(0)), "two reads commute");
        assert!(r(0).dependent(w(0)));
        assert!(w(0).dependent(w(0)));
        assert!(!w(0).dependent(w(1)), "different words commute");
    }

    #[test]
    fn bypass_accounting_flags_over_bound() {
        let cfg = RunCfg {
            bypass_bound: Some(1),
            ..RunCfg::default()
        };
        let rs = RunState::new(vec![0; 4], 2, cfg);
        let mut g = rs.mu.lock().unwrap();
        let mut waiter = vec![LockEvent::AcquireStart(7)];
        g.apply_lock_events(0, &mut waiter);
        // The wait arms at AcquireStart and activates at the waiter's
        // first spin probe.
        g.note_wait_op(
            0,
            OpMeta {
                addr: 0,
                kind: OpKind::SpinRead,
            },
        );
        // Thread 1 acquires and releases twice while 0 waits.
        for _ in 0..2 {
            let mut evs = vec![LockEvent::Acquired(7), LockEvent::Released(7)];
            g.apply_lock_events(1, &mut evs);
        }
        let s = g.starvation.expect("second bypass exceeds bound 1");
        assert_eq!(s.victim, 0);
        assert_eq!(s.lock, 7);
        assert_eq!(s.bypasses, 2);
    }

    #[test]
    fn held_set_tracks_nested_acquisitions() {
        let rs = RunState::new(vec![0; 1], 1, RunCfg::default());
        let mut g = rs.mu.lock().unwrap();
        let mut evs = vec![
            LockEvent::Acquired(1),
            LockEvent::Acquired(2),
            LockEvent::Released(2),
            LockEvent::Released(1),
        ];
        g.apply_lock_events(0, &mut evs);
        assert!(g.held[0].is_empty());
        assert!(evs.is_empty(), "events are drained");
    }
}
