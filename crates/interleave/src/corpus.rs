//! Checked-in corpus of fuzzer-shrunk counterexamples.
//!
//! The nightly fuzz job finds bugs the exhaustive explorer would need
//! hours for; [`crate::fuzz::shrink_schedule`] then reduces each failing
//! schedule to a few steps. This module turns those artifacts into
//! regressions: a **named registry** of the seeded-bug programs the fuzzer
//! runs against ([`corpus_program`]), a tiny **text format** for one
//! shrunk counterexample ([`CorpusEntry`]), and the **verdict classes**
//! ([`VerdictClass`]) that entries are checked against — first by replay
//! (the schedule must still reproduce the class) and then by an
//! exhaustive re-check (the bug must still be reachable by search alone).
//! The files live in `tests/shrunk_corpus/` at the workspace root; the
//! loader test there runs the whole directory.
//!
//! The entry format is line-oriented, `#` comments allowed:
//!
//! ```text
//! # lost wakeup found by seed 1991, shrunk from 213 steps
//! program: wake-before-publish
//! schedule: 1,0,0,1
//! verdict: lost-wakeup
//! ```

use crate::explorer::{ReplayEnd, Verdict};
use crate::program::Program;
use kernels::locks::LockKernel;
use kernels::{Region, SyncCtx, Word};
use std::sync::Arc;

/// The class of a [`Verdict`] or [`ReplayEnd`], without the run-specific
/// payload (schedule, stats, sites): what a corpus entry pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictClass {
    /// No violation observed.
    Pass,
    /// Final-state check failed or an in-program assertion fired.
    Violation,
    /// Data race between unsynchronized accesses.
    Race,
    /// All threads stuck with at least one spinner.
    Deadlock,
    /// All stuck threads are futex-parked.
    LostWakeup,
    /// A waiter bypassed beyond the configured bound.
    Starvation,
}

impl VerdictClass {
    /// Classifies a search verdict.
    pub fn of(v: &Verdict) -> VerdictClass {
        match v {
            Verdict::Passed(_) => VerdictClass::Pass,
            Verdict::Violation { .. } => VerdictClass::Violation,
            Verdict::Race { .. } => VerdictClass::Race,
            Verdict::Deadlock { .. } => VerdictClass::Deadlock,
            Verdict::LostWakeup { .. } => VerdictClass::LostWakeup,
            Verdict::Starvation { .. } => VerdictClass::Starvation,
        }
    }

    /// Classifies a replay ending. `Complete`, `StepLimit` and `Diverged`
    /// all map to [`VerdictClass::Pass`] — no violation was reproduced —
    /// so a stale corpus schedule fails its class assertion rather than
    /// silently passing.
    pub fn of_replay(end: &ReplayEnd) -> VerdictClass {
        match end {
            ReplayEnd::Complete(_) | ReplayEnd::StepLimit | ReplayEnd::Diverged { .. } => {
                VerdictClass::Pass
            }
            ReplayEnd::Panic(_) => VerdictClass::Violation,
            ReplayEnd::Race(_) => VerdictClass::Race,
            ReplayEnd::Deadlock(_) => VerdictClass::Deadlock,
            ReplayEnd::LostWakeup(_) => VerdictClass::LostWakeup,
            ReplayEnd::Starvation(_) => VerdictClass::Starvation,
        }
    }

    /// Classifies a replay ending *with* the program's final-state check:
    /// a completed run whose memory fails the check is a
    /// [`VerdictClass::Violation`], exactly as [`crate::Explorer::check`]
    /// would report it. Replay alone cannot see final-state violations —
    /// it has no check to run — so corpus validation goes through here.
    pub fn of_checked_replay(
        end: &ReplayEnd,
        check: fn(&[Word]) -> Result<(), String>,
    ) -> VerdictClass {
        match end {
            ReplayEnd::Complete(mem) => match check(mem) {
                Ok(()) => VerdictClass::Pass,
                Err(_) => VerdictClass::Violation,
            },
            other => VerdictClass::of_replay(other),
        }
    }

    /// The stable on-disk name.
    pub fn name(self) -> &'static str {
        match self {
            VerdictClass::Pass => "pass",
            VerdictClass::Violation => "violation",
            VerdictClass::Race => "race",
            VerdictClass::Deadlock => "deadlock",
            VerdictClass::LostWakeup => "lost-wakeup",
            VerdictClass::Starvation => "starvation",
        }
    }

    /// Parses [`VerdictClass::name`] back.
    pub fn parse(s: &str) -> Result<VerdictClass, String> {
        match s {
            "pass" => Ok(VerdictClass::Pass),
            "violation" => Ok(VerdictClass::Violation),
            "race" => Ok(VerdictClass::Race),
            "deadlock" => Ok(VerdictClass::Deadlock),
            "lost-wakeup" => Ok(VerdictClass::LostWakeup),
            "starvation" => Ok(VerdictClass::Starvation),
            other => Err(format!(
                "unknown verdict class {other:?}; expected pass | violation | race | \
                 deadlock | lost-wakeup | starvation"
            )),
        }
    }
}

impl std::fmt::Display for VerdictClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One checked-in counterexample: a registry program, a (shrunk) schedule,
/// and the verdict class both replay and exhaustive re-check must hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Name resolvable by [`corpus_program`].
    pub program: String,
    /// The shrunk failing schedule.
    pub schedule: Vec<usize>,
    /// Expected violation class.
    pub verdict: VerdictClass,
}

impl CorpusEntry {
    /// Parses the text format described in the module docs.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let mut program = None;
        let mut schedule = None;
        let mut verdict = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected `key: value`, got {line:?}", lineno + 1))?;
            let value = value.trim();
            match key.trim() {
                "program" => program = Some(value.to_string()),
                // An empty schedule is legal: some bugs fire under the
                // default continuation policy with no forced prefix at
                // all, and shrinking is allowed to get there.
                "schedule" if value.is_empty() => schedule = Some(Vec::new()),
                "schedule" => {
                    let parsed: Result<Vec<usize>, _> =
                        value.split(',').map(|s| s.trim().parse()).collect();
                    schedule = Some(parsed.map_err(|_| {
                        format!("line {}: bad schedule {value:?}", lineno + 1)
                    })?);
                }
                "verdict" => verdict = Some(VerdictClass::parse(value)?),
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        Ok(CorpusEntry {
            program: program.ok_or("missing `program:` line")?,
            schedule: schedule.ok_or("missing `schedule:` line")?,
            verdict: verdict.ok_or("missing `verdict:` line")?,
        })
    }

    /// Renders the entry back to its text format, with an optional leading
    /// `#` comment (provenance: seed, original length, replays spent).
    pub fn render(&self, comment: &str) -> String {
        let sched: Vec<String> = self.schedule.iter().map(|p| p.to_string()).collect();
        let mut out = String::new();
        for line in comment.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!("program: {}\n", self.program));
        out.push_str(&format!("schedule: {}\n", sched.join(",")));
        out.push_str(&format!("verdict: {}\n", self.verdict));
        out
    }
}

/// A QSM-style blocking lock with the classic **wake-before-advance**
/// release: tickets are taken with a fetch-add, waiters park on the grant
/// word, and release fires its wake *before* publishing the new grant.
/// A waiter that read the stale grant can park right between the wake and
/// the advance — asleep forever with the lock free. The `fixed` variant
/// advances first, which the waiter's compare-and-block makes airtight.
///
/// This is the seeded-bug twin of `kernels::locks::qsm_blocking`: same
/// grant/eventcount handoff shape as the paper's QSM, reduced to the two
/// words the bug needs so 3- and 4-thread programs stay exhaustively
/// checkable.
#[derive(Debug)]
pub struct BlockingGrantLock {
    /// Advance-then-wake (correct) or wake-then-advance (seeded bug).
    pub fixed: bool,
}

impl LockKernel for BlockingGrantLock {
    fn name(&self) -> &'static str {
        if self.fixed {
            "blocking-grant"
        } else {
            "blocking-grant-wake-first"
        }
    }
    fn lines_needed(&self, _nprocs: usize) -> usize {
        1 // one line: ticket word + grant word
    }
    fn acquire(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64) -> u64 {
        let ticket = region.slot(0);
        let grant = region.slot(0) + 1;
        let me = ctx.fetch_add(ticket, 1);
        loop {
            let cur = ctx.load(grant);
            if cur == me {
                break;
            }
            ctx.futex_wait(grant, cur);
        }
        me
    }
    fn release(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64, token: u64) {
        let grant = region.slot(0) + 1;
        if self.fixed {
            ctx.store(grant, token + 1);
            ctx.futex_wake(grant, usize::MAX);
        } else {
            ctx.futex_wake(grant, usize::MAX); // bug: wake fires first...
            ctx.store(grant, token + 1); // ...waiters park in the window.
        }
    }
}

/// An eventcount advance across the `u64` wrap (count starts at
/// `u64::MAX`): awaiters compare by **signed distance**, so the wrapped
/// target `0` still reads as "reached". The broken variant advances
/// without waking — the missed-advance bug at the worst possible count.
pub fn eventcount_wrap_program(nthreads: usize, fixed: bool) -> Program {
    assert!(nthreads >= 2, "need at least one awaiter and the advancer");
    Program::new(nthreads, 1, move |ctx| {
        if ctx.pid() < ctx.nprocs() - 1 {
            // await_at_least(0), i.e. MAX + 1 with wraparound.
            loop {
                let cur = ctx.load(0);
                if cur.wrapping_sub(0) as i64 >= 0 {
                    break;
                }
                ctx.futex_wait(0, cur);
            }
        } else {
            ctx.fetch_add(0, 1); // MAX -> 0: the wrap itself is fine...
            if fixed {
                ctx.futex_wake(0, usize::MAX); // ...forgetting this is not.
            }
        }
    })
    .with_init(vec![(0, u64::MAX)])
}

/// The mutual-exclusion workload over [`BlockingGrantLock`], exactly as
/// [`crate::harness::lock_program`] builds it.
pub fn blocking_grant_program(nthreads: usize, iters: usize, fixed: bool) -> Program {
    crate::harness::lock_program(Arc::new(BlockingGrantLock { fixed }), nthreads, iters)
}

/// Resolves a corpus program name to the program plus its final-state
/// check. Names are stable — corpus files refer to them — and each is a
/// seeded-bug (or deliberately racy) build the fuzzer and the exhaustive
/// explorer must both catch.
#[allow(clippy::type_complexity)]
pub fn corpus_program(name: &str) -> Option<(Program, fn(&[Word]) -> Result<(), String>)> {
    fn pass(_mem: &[Word]) -> Result<(), String> {
        Ok(())
    }
    /// Final check for the 2-thread lock workloads: counter (last word)
    /// must equal the number of critical sections.
    fn counter_is_2(mem: &[Word]) -> Result<(), String> {
        let c = mem[mem.len() - 1];
        if c == 2 {
            Ok(())
        } else {
            Err(format!("critical sections lost: counter {c} != 2"))
        }
    }
    fn sum_is_2(mem: &[Word]) -> Result<(), String> {
        if mem[0] == 2 {
            Ok(())
        } else {
            Err(format!("lost update: {} != 2", mem[0]))
        }
    }
    match name {
        // Two threads increment with separate load/store: some schedule
        // loses an update (final-state violation).
        "lost-update" => Some((
            Program::new(2, 1, |ctx| {
                let v = ctx.load(0);
                ctx.store(0, v + 1);
            }),
            sum_is_2,
        )),
        // Observe-then-claim lock: the window between the check and the
        // set admits two owners; the CS counter accesses race.
        "check-then-set" => Some((
            crate::harness::lock_program(Arc::new(CheckThenSetLock), 2, 1),
            counter_is_2,
        )),
        // Futex wake fired before the flag is published.
        "wake-before-publish" => Some((
            Program::new(2, 1, |ctx| {
                if ctx.pid() == 0 {
                    let mut cur = ctx.load(0);
                    while cur == 0 {
                        cur = ctx.futex_wait(0, cur);
                    }
                } else {
                    ctx.futex_wake(0, usize::MAX);
                    ctx.store(0, 1);
                }
            }),
            pass,
        )),
        // Blocking QSM-style lock whose release wakes before advancing.
        "blocking-grant-wake-first-3" => Some((blocking_grant_program(3, 1, false), pass)),
        "blocking-grant-wake-first-4" => Some((blocking_grant_program(4, 1, false), pass)),
        // Eventcount wraparound advance that forgets its wake.
        "eventcount-wrap-missed-wake-3" => Some((eventcount_wrap_program(3, false), pass)),
        "eventcount-wrap-missed-wake-4" => Some((eventcount_wrap_program(4, false), pass)),
        _ => None,
    }
}

/// Every registry name, for directory-level tests and regeneration.
pub fn corpus_program_names() -> &'static [&'static str] {
    &[
        "lost-update",
        "check-then-set",
        "wake-before-publish",
        "blocking-grant-wake-first-3",
        "blocking-grant-wake-first-4",
        "eventcount-wrap-missed-wake-3",
        "eventcount-wrap-missed-wake-4",
    ]
}

/// Observe-then-claim lock (the classic missing-atomicity bug), kept here
/// so corpus files can name it.
#[derive(Debug)]
struct CheckThenSetLock;

impl LockKernel for CheckThenSetLock {
    fn name(&self) -> &'static str {
        "check-then-set"
    }
    fn lines_needed(&self, _nprocs: usize) -> usize {
        1
    }
    fn acquire(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64) -> u64 {
        let word = region.slot(0);
        ctx.spin_until(word, 0);
        ctx.store(word, 1);
        0
    }
    fn release(&self, ctx: &mut dyn SyncCtx, region: &Region, _ps: &mut u64, _token: u64) {
        ctx.store(region.slot(0), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_round_trips_through_text() {
        let entry = CorpusEntry {
            program: "wake-before-publish".into(),
            schedule: vec![1, 0, 0, 1],
            verdict: VerdictClass::LostWakeup,
        };
        let text = entry.render("seed 1991, shrunk 213 -> 4 steps");
        assert!(text.starts_with("# seed 1991"));
        assert_eq!(CorpusEntry::parse(&text), Ok(entry));
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(CorpusEntry::parse("").is_err());
        assert!(CorpusEntry::parse("program: x\nschedule: 0,1\n").is_err());
        assert!(CorpusEntry::parse("program: x\nschedule: a,b\nverdict: race\n").is_err());
        assert!(CorpusEntry::parse("program: x\nschedule: 0\nverdict: fast\n").is_err());
        assert!(CorpusEntry::parse("program: x\nschedule: 0\nverdict: race\nbogus: 1\n").is_err());
    }

    #[test]
    fn every_registry_name_resolves() {
        for name in corpus_program_names() {
            assert!(corpus_program(name).is_some(), "{name} must resolve");
        }
        assert!(corpus_program("no-such-program").is_none());
    }

    #[test]
    fn verdict_class_names_round_trip() {
        for class in [
            VerdictClass::Pass,
            VerdictClass::Violation,
            VerdictClass::Race,
            VerdictClass::Deadlock,
            VerdictClass::LostWakeup,
            VerdictClass::Starvation,
        ] {
            assert_eq!(VerdictClass::parse(class.name()), Ok(class));
        }
    }

    #[test]
    fn fixed_blocking_grant_lock_is_clean_for_two_threads() {
        let v = crate::harness::check_lock(
            Arc::new(BlockingGrantLock { fixed: true }),
            2,
            1,
            crate::explorer::Explorer::exhaustive(),
        );
        v.expect_pass("blocking-grant 2x1");
    }

    #[test]
    fn wake_first_release_loses_a_wakeup() {
        let (program, check) = corpus_program("blocking-grant-wake-first-3").unwrap();
        let v = crate::explorer::Explorer::exhaustive().check(&program, check);
        assert_eq!(VerdictClass::of(&v), VerdictClass::LostWakeup, "{v:?}");
    }
}
