//! # memsim — a simulated 1991-class shared-memory multiprocessor
//!
//! The evaluation of *"A New Synchronization Mechanism"* (ICPP 1991) was run on
//! hardware of its day: a bus-based cache-coherent multiprocessor (Sequent
//! Symmetry class) and a distributed-memory NUMA machine (BBN Butterfly class).
//! Neither exists here — the host has one core — so this crate provides the
//! substitute substrate: a deterministic discrete-event simulator that models
//! exactly the quantities those papers measured:
//!
//! * **per-processor caches** with a write-invalidate MSI protocol
//!   ([`cache`], [`directory`]),
//! * a **shared bus** with FIFO arbitration, or a **NUMA interconnect** with
//!   per-node memory modules and hop latency ([`interconnect`]),
//! * **atomic read-modify-write** operations that obey the same ownership
//!   rules real coherence protocols impose ([`engine`]),
//! * full **traffic accounting** — hits, misses, upgrades, invalidations and
//!   interconnect transactions ([`metrics`]).
//!
//! ## Programming model
//!
//! A *processor program* is an ordinary Rust closure receiving a [`Proc`]
//! handle with `load` / `store` / `swap` / `cas` / `fetch_add` /
//! `test_and_set` / `spin_while` / `delay` operations on a word-addressed
//! shared memory. Each simulated processor runs on its own OS thread
//! (processor 0 on the caller's thread, the rest leased from a persistent
//! [`pool`]), but the engine fully serializes execution — at most one
//! processor advances between memory events, ties broken by
//! `(issue time, pid)` — so every run is **bit-for-bit deterministic**
//! regardless of host scheduling.
//!
//! ```
//! use memsim::{Machine, MachineParams};
//!
//! // Two processors atomically increment a shared counter 100 times each.
//! let machine = Machine::new(MachineParams::bus_1991(2));
//! let report = machine
//!     .run(2, 1, |p| {
//!         for _ in 0..100 {
//!             p.fetch_add(0, 1);
//!         }
//!     })
//!     .unwrap();
//! assert_eq!(report.memory[0], 200);
//! assert!(report.metrics.total_cycles > 0);
//! ```
//!
//! ## Why local spinning is a first-class operation
//!
//! [`Proc::spin_while`] registers a *watchpoint*: the spinner is charged one
//! initial probe, then sleeps until an invalidation actually touches the
//! watched word, at which point it pays the re-probe (a real coherence miss).
//! This is both how 1991 hardware behaved (spinning on a cached copy is free
//! until the line is invalidated) and what keeps simulation cost proportional
//! to coherence events rather than spin iterations.
//!
//! ## Blocking and oversubscription
//!
//! [`Proc::futex_wait`] / [`Proc::futex_wake`] are word-sized blocking
//! primitives with the Linux-futex contract: the wait parks only if the word
//! still holds the expected value (checked atomically inside the engine), and
//! a wake costs the waker a modeled remote write per wakee. Setting
//! [`MachineParams::sched`] to a [`SchedParams`] multiplexes P logical
//! processors onto fewer cores with round-robin quanta — the oversubscribed
//! regime where spinning burns whole scheduling quanta but a parked processor
//! yields its core immediately. A run in which every live processor is parked
//! with no waker left terminates with [`SimError::LostWakeup`].

pub mod cache;
pub mod directory;
pub mod engine;
pub mod interconnect;
pub mod machine;
pub mod metrics;
pub mod params;
pub mod pool;
pub mod proc;
pub mod replay;

pub use machine::{Machine, RunReport};
pub use metrics::{Metrics, ProcMetrics};
pub use params::{MachineParams, SchedParams, Topology};
pub use pool::{pool_stats, PoolStats};
pub use proc::Proc;
pub use replay::{FragmentReplayer, Recording};

/// A machine word. The simulated memory is an array of these.
pub type Word = u64;

/// A word address into the simulated shared memory.
pub type Addr = usize;

/// Errors terminating a simulation early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every live processor is blocked in `spin_while` and no writer remains:
    /// the synchronization algorithm under test has deadlocked.
    Deadlock {
        /// Processors stuck in a watchpoint, with the address and the value
        /// they are waiting to see change.
        waiting: Vec<(usize, Addr, Word)>,
    },
    /// Simulated time exceeded [`params::MachineParams::max_cycles`]; the
    /// algorithm under test is livelocked or the experiment is simply too long.
    TimeLimit {
        /// The configured limit that was exceeded.
        limit: u64,
    },
    /// A processor accessed a word outside the shared memory.
    Fault {
        /// The faulting processor.
        pid: usize,
        /// The out-of-bounds word address.
        addr: Addr,
    },
    /// Every live processor is parked in `futex_wait` and nobody is left to
    /// wake them — the classic lost-wakeup bug (a waker that changed the word
    /// without issuing a wake, or woke before the sleeper parked without the
    /// atomic re-check the futex protocol exists to provide).
    LostWakeup {
        /// Parked processors with the futex word each sleeps on and the value
        /// it observed when it parked.
        parked: Vec<(usize, Addr, Word)>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { waiting } => {
                write!(f, "simulated deadlock; waiting processors: ")?;
                for (pid, addr, val) in waiting {
                    write!(f, "[p{pid} spins while mem[{addr}]=={val}] ")?;
                }
                Ok(())
            }
            SimError::TimeLimit { limit } => {
                write!(f, "simulated time exceeded the {limit}-cycle limit")
            }
            SimError::Fault { pid, addr } => {
                write!(f, "processor {pid} accessed out-of-bounds word {addr}")
            }
            SimError::LostWakeup { parked } => {
                write!(f, "lost wakeup; parked processors: ")?;
                for (pid, addr, val) in parked {
                    write!(f, "[p{pid} parked on mem[{addr}]=={val}] ")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}
