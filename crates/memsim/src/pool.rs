//! Persistent processor-thread pool.
//!
//! [`crate::Machine::run`] used to spawn and join `nprocs` fresh OS threads
//! per run; a 20-point sweep at P = 64 paid for over a thousand spawns.
//! This module keeps workers alive between runs: a run *leases* the workers
//! it needs (spawning only when the idle set runs short), dispatches one
//! job per simulated processor, and returns the workers once every job has
//! signalled completion. Workers park in a condvar wait between jobs, so an
//! idle pool costs nothing but address space.
//!
//! Jobs borrow the caller's stack (the simulated program closure and the
//! engine live in `Machine::run`'s frame), which is why `Lease::dispatch`
//! is `unsafe`: the caller must not drop anything a job borrows — nor
//! return the lease — until the job has signalled completion through its
//! own channel (the machine uses a latch counted down as each job's last
//! action).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Handoff cell a worker thread waits on between jobs.
struct WorkerShared {
    job: Mutex<Option<Job>>,
    available: Condvar,
}

fn worker_loop(shared: Arc<WorkerShared>) {
    loop {
        let job = {
            let mut slot = shared.job.lock().expect("worker job mutex poisoned");
            loop {
                match slot.take() {
                    Some(job) => break job,
                    None => {
                        slot = shared
                            .available
                            .wait(slot)
                            .expect("worker job mutex poisoned");
                    }
                }
            }
        };
        // Jobs wrap user code in their own catch_unwind; this outer catch
        // only protects the pool from bugs in the job plumbing itself.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Counters exposed for diagnostics and the pool-reuse regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads ever spawned by this pool.
    pub spawned: usize,
    /// Times an already-spawned worker was handed out again.
    pub reused: usize,
}

/// A set of reusable worker threads.
pub(crate) struct Pool {
    idle: Mutex<Vec<Arc<WorkerShared>>>,
    spawned: AtomicUsize,
    reused: AtomicUsize,
}

impl Pool {
    pub(crate) const fn new() -> Self {
        Pool {
            idle: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
        }
    }

    /// The process-wide pool every [`crate::Machine`] run leases from.
    pub(crate) fn global() -> &'static Pool {
        static GLOBAL: Pool = Pool::new();
        &GLOBAL
    }

    /// Takes `n` workers out of the pool, spawning any shortfall.
    pub(crate) fn lease(&self, n: usize) -> Lease<'_> {
        let mut workers = {
            let mut idle = self.idle.lock().expect("pool mutex poisoned");
            let keep = idle.len().saturating_sub(n);
            idle.split_off(keep)
        };
        self.reused.fetch_add(workers.len(), Ordering::Relaxed);
        while workers.len() < n {
            let shared = Arc::new(WorkerShared {
                job: Mutex::new(None),
                available: Condvar::new(),
            });
            let for_thread = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("memsim-worker".into())
                .spawn(move || worker_loop(for_thread))
                .expect("failed to spawn simulator worker thread");
            self.spawned.fetch_add(1, Ordering::Relaxed);
            workers.push(shared);
        }
        Lease { pool: self, workers }
    }

    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            spawned: self.spawned.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }
}

/// Counters for the process-wide pool (see [`PoolStats`]).
pub fn pool_stats() -> PoolStats {
    Pool::global().stats()
}

/// Workers checked out for one simulation run. Dropping the lease returns
/// them to the pool.
pub(crate) struct Lease<'a> {
    pool: &'a Pool,
    workers: Vec<Arc<WorkerShared>>,
}

impl Lease<'_> {
    /// Hands `job` to worker `idx`.
    ///
    /// # Safety
    ///
    /// The job's borrows are erased to `'static`. The caller must keep
    /// everything the job borrows alive — and must not drop this lease —
    /// until the job has observably finished (e.g. counted down a latch as
    /// its final statement). Dropping the lease early would let another run
    /// dispatch to a worker that is still executing this job.
    pub(crate) unsafe fn dispatch<'env>(&self, idx: usize, job: Box<dyn FnOnce() + Send + 'env>) {
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
        };
        let worker = &self.workers[idx];
        let mut slot = worker.job.lock().expect("worker job mutex poisoned");
        debug_assert!(slot.is_none(), "dispatch to a busy worker");
        *slot = Some(job);
        worker.available.notify_one();
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        let mut idle = self.pool.idle.lock().expect("pool mutex poisoned");
        idle.append(&mut self.workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A latch mirroring the machine's completion protocol.
    struct Latch(Mutex<usize>, Condvar);
    impl Latch {
        fn new(n: usize) -> Self {
            Latch(Mutex::new(n), Condvar::new())
        }
        fn count_down(&self) {
            let mut left = self.0.lock().unwrap();
            *left -= 1;
            if *left == 0 {
                self.1.notify_all();
            }
        }
        fn wait(&self) {
            let mut left = self.0.lock().unwrap();
            while *left > 0 {
                left = self.1.wait(left).unwrap();
            }
        }
    }

    #[test]
    fn lease_runs_jobs_and_reuses_workers() {
        let pool = Pool::new();
        let ran = AtomicBool::new(false);
        {
            let lease = pool.lease(1);
            let latch = Latch::new(1);
            unsafe {
                lease.dispatch(
                    0,
                    Box::new(|| {
                        ran.store(true, Ordering::SeqCst);
                        latch.count_down();
                    }),
                );
            }
            latch.wait();
        }
        assert!(ran.load(Ordering::SeqCst));
        assert_eq!(pool.stats(), PoolStats { spawned: 1, reused: 0 });

        // Second lease of the same size spawns nothing new.
        {
            let lease = pool.lease(1);
            let latch = Latch::new(1);
            unsafe {
                lease.dispatch(0, Box::new(|| latch.count_down()));
            }
            latch.wait();
        }
        assert_eq!(pool.stats(), PoolStats { spawned: 1, reused: 1 });
    }

    #[test]
    fn lease_grows_on_demand() {
        let pool = Pool::new();
        {
            let lease = pool.lease(3);
            let latch = Latch::new(3);
            for i in 0..3 {
                unsafe { lease.dispatch(i, Box::new(|| latch.count_down())) };
            }
            latch.wait();
        }
        let s = pool.stats();
        assert_eq!(s.spawned, 3);
        // A bigger lease reuses all three and spawns the shortfall only.
        {
            let lease = pool.lease(5);
            let latch = Latch::new(5);
            for i in 0..5 {
                unsafe { lease.dispatch(i, Box::new(|| latch.count_down())) };
            }
            latch.wait();
        }
        let s = pool.stats();
        assert_eq!(s.spawned, 5);
        assert_eq!(s.reused, 3);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = Pool::new();
        let lease = pool.lease(1);
        let latch = Latch::new(1);
        unsafe {
            lease.dispatch(
                0,
                Box::new(|| {
                    // count down first: the panic unwinds past the rest.
                    latch.count_down();
                    std::panic::panic_any(crate::proc::SimAbort);
                }),
            );
        }
        latch.wait();
        drop(lease);
        // The same worker must still accept a job.
        let lease = pool.lease(1);
        let latch = Latch::new(1);
        unsafe { lease.dispatch(0, Box::new(|| latch.count_down())) };
        latch.wait();
        drop(lease);
        assert_eq!(pool.stats(), PoolStats { spawned: 1, reused: 1 });
    }
}
