//! The processor handle passed to simulated programs.
//!
//! [`Proc`] is the entire instruction set a kernel may use: word loads and
//! stores, the atomic read-modify-writes 1991 hardware offered (swap,
//! compare-and-swap, fetch-and-add, test-and-set), watchpoint-based local
//! spinning, and a local `delay`. Every method blocks the calling OS thread
//! until the engine has scheduled the operation, so kernel code reads like
//! ordinary sequential Rust.
//!
//! Blocking is an adaptive spin-then-park on the processor's reply slot:
//! when the engine replies promptly (it often replies *inline*, before
//! `Proc::roundtrip` even begins waiting) no scheduler interaction
//! happens at all; otherwise the processor spins briefly — with a budget
//! that grows when spinning succeeds and shrinks when it parks — and then
//! parks until the driving thread unparks it. On a single-core host the
//! spin budget is pinned to zero: spinning (or even yielding) there
//! measures slower than parking immediately and letting the producing
//! thread run.

use crate::engine::{EngineShared, Op, Reply, Request, WaitPred};
use crate::{Addr, Word};
use std::sync::Arc;

/// Sentinel panic payload used to unwind processor threads when the engine
/// aborts a simulation (deadlock, time limit, or a peer's panic). The machine
/// layer swallows it; user panics propagate normally.
pub(crate) struct SimAbort;

/// Upper bound on the adaptive spin budget, in spin-loop iterations.
const MAX_SPIN: u32 = 128;

/// Spin budget cap for this host: zero on a single core, where every spin
/// iteration steals time from the thread we are waiting on (yield loops
/// were also tried there and measure slower than parking immediately).
fn host_spin_cap() -> u32 {
    use std::sync::OnceLock;
    static CAP: OnceLock<u32> = OnceLock::new();
    *CAP.get_or_init(|| {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => MAX_SPIN,
            _ => 0,
        }
    })
}

/// Handle through which a simulated processor issues operations.
pub struct Proc {
    pid: usize,
    nprocs: usize,
    now: u64,
    /// The machine's simulated-time limit, mirrored here so locally
    /// executed delays still trigger [`crate::SimError::TimeLimit`].
    max_cycles: u64,
    engine: Arc<EngineShared>,
    /// Current spin budget before parking (adaptive, `0..=MAX_SPIN`).
    spin_budget: u32,
    /// The machine's event recorder, when one is attached.
    tracer: Option<Arc<trace::Tracer>>,
    /// Whether the engine is recording this run for fragment replay; when
    /// set, semantic events reported via [`Proc::trace_event`] are appended
    /// to the engine's per-processor log so replay can re-emit them.
    recording: bool,
}

impl Proc {
    /// Creates the handle on the thread that will run the processor's body
    /// (the slot's consumer registration captures the current thread).
    pub(crate) fn new(
        pid: usize,
        nprocs: usize,
        max_cycles: u64,
        engine: Arc<EngineShared>,
        tracer: Option<Arc<trace::Tracer>>,
        recording: bool,
    ) -> Self {
        engine.slot(pid).register_consumer();
        Proc {
            pid,
            nprocs,
            now: 0,
            max_cycles,
            engine,
            spin_budget: host_spin_cap(),
            tracer,
            recording,
        }
    }

    fn wait_reply(&mut self) -> Reply {
        let slot = self.engine.slot(self.pid);
        // Inline path: the engine replied while we still held its lock
        // (our own request was the minimal one). No waiting at all.
        if let Some(reply) = slot.try_take() {
            return reply;
        }
        for _ in 0..self.spin_budget {
            std::hint::spin_loop();
            if let Some(reply) = slot.try_take() {
                // Spinning paid off; allow a little more of it next time.
                self.spin_budget = (self.spin_budget.saturating_mul(2)).clamp(1, host_spin_cap());
                return reply;
            }
        }
        // Spinning failed (or is disabled); park until the driver unparks
        // us, and spend less time spinning on the next wait.
        self.spin_budget /= 2;
        loop {
            if let Some(reply) = slot.try_take() {
                return reply;
            }
            std::thread::park();
        }
    }

    fn roundtrip(&mut self, op: Op) -> Word {
        self.engine.submit(Request {
            pid: self.pid,
            issue: self.now,
            op,
        });
        match self.wait_reply() {
            Reply { abort: true, .. } => std::panic::panic_any(SimAbort),
            Reply { value, now, .. } => {
                self.now = now;
                value
            }
        }
    }

    /// This processor's id in `0..nprocs`.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Number of processors in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// This processor's local clock, in simulated cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Records a trace event at the processor's current local clock — the
    /// hook kernels and workloads use to report semantic events (lock
    /// acquire/release via `kernels`' instrumented locks, barrier episode
    /// boundaries). No-op unless the machine has a tracer attached; never
    /// affects simulated time.
    pub fn trace_event(&self, kind: trace::EventKind) {
        if let Some(tr) = &self.tracer {
            tr.record(self.pid, self.now, kind);
        }
        if self.recording {
            self.engine.log_user_event(self.pid, self.now, kind);
        }
    }

    /// Reads a word.
    pub fn load(&mut self, addr: Addr) -> Word {
        self.roundtrip(Op::Load(addr))
    }

    /// Writes a word.
    pub fn store(&mut self, addr: Addr, val: Word) {
        self.roundtrip(Op::Store(addr, val));
    }

    /// Atomically writes `val` and returns the previous value.
    pub fn swap(&mut self, addr: Addr, val: Word) -> Word {
        self.roundtrip(Op::Swap(addr, val))
    }

    /// Atomic compare-and-swap: installs `new` iff the word equals
    /// `expected`. Returns `Ok(old)` on success, `Err(observed)` on failure.
    /// Failed CAS costs the same coherence traffic as a successful one.
    pub fn cas(&mut self, addr: Addr, expected: Word, new: Word) -> Result<Word, Word> {
        let old = self.roundtrip(Op::Cas(addr, expected, new));
        if old == expected {
            Ok(old)
        } else {
            Err(old)
        }
    }

    /// Atomic fetch-and-add (wrapping); returns the previous value.
    pub fn fetch_add(&mut self, addr: Addr, delta: Word) -> Word {
        self.roundtrip(Op::FetchAdd(addr, delta))
    }

    /// Atomic test-and-set: sets the word to 1, returns `true` if it was
    /// already nonzero (i.e. the "lock" was held).
    pub fn test_and_set(&mut self, addr: Addr) -> bool {
        self.swap(addr, 1) != 0
    }

    /// Blocks while the word equals `val`; returns the first differing value
    /// observed. The wait is a cached local spin: it costs one probe to
    /// arm and one coherence miss per wake, not one access per iteration.
    pub fn spin_while(&mut self, addr: Addr, val: Word) -> Word {
        self.roundtrip(Op::Spin(addr, WaitPred::WhileEq(val)))
    }

    /// Blocks until the word equals `val`; returns it (i.e. `val`).
    pub fn spin_until(&mut self, addr: Addr, val: Word) -> Word {
        self.roundtrip(Op::Spin(addr, WaitPred::UntilEq(val)))
    }

    /// Futex wait: parks iff the word still equals `expected` — the check
    /// and the park are one atomic step inside the engine, so a waker that
    /// changes the word *then* wakes can never be missed. Returns the word's
    /// value as observed either at the failed check or after the wake;
    /// callers must re-check their condition (wakes may be consumed by an
    /// earlier waiter, exactly as with an OS futex).
    pub fn futex_wait(&mut self, addr: Addr, expected: Word) -> Word {
        self.roundtrip(Op::FutexWait(addr, expected))
    }

    /// Wakes up to `n` processors parked on `addr` (FIFO park order) and
    /// returns how many were woken. The waker is charged a modeled remote
    /// write per wakee.
    pub fn futex_wake(&mut self, addr: Addr, n: usize) -> usize {
        self.roundtrip(Op::FutexWake(addr, n as u64)) as usize
    }

    /// Advances the local clock by `cycles` without touching memory —
    /// models computation, critical-section work, or backoff.
    ///
    /// Executed locally, with no engine roundtrip: a delay has no shared
    /// effect, so the engine only ever needs to see its result — the issue
    /// time of this processor's *next* shared operation, which carries the
    /// accumulated delay. The conservative gather still orders that next
    /// operation exactly where the old explicit delay request would have
    /// placed it, so simulated cycle counts are unchanged. The one
    /// observable duty of the old roundtrip, the time-limit check, is
    /// preserved by submitting a zero-cycle probe once the local clock
    /// crosses the limit (also what keeps a delay-only livelock detectable).
    pub fn delay(&mut self, cycles: u64) {
        self.now = self.now.saturating_add(cycles);
        if self.now > self.max_cycles {
            self.roundtrip(Op::Delay(0));
        }
    }

    pub(crate) fn send_done(&mut self) {
        self.engine.submit(Request {
            pid: self.pid,
            issue: self.now,
            op: Op::Done,
        });
    }

    pub(crate) fn send_panicked(&mut self) {
        self.engine.submit(Request {
            pid: self.pid,
            issue: self.now,
            op: Op::Panicked,
        });
    }
}
