//! The processor handle passed to simulated programs.
//!
//! [`Proc`] is the entire instruction set a kernel may use: word loads and
//! stores, the atomic read-modify-writes 1991 hardware offered (swap,
//! compare-and-swap, fetch-and-add, test-and-set), watchpoint-based local
//! spinning, and a local `delay`. Every method blocks the calling OS thread
//! until the engine has scheduled the operation, so kernel code reads like
//! ordinary sequential Rust.

use crate::engine::{Op, Reply, Request, WaitPred};
use crate::{Addr, Word};
use std::sync::mpsc::{Receiver, Sender};

/// Sentinel panic payload used to unwind processor threads when the engine
/// aborts a simulation (deadlock, time limit, or a peer's panic). The machine
/// layer swallows it; user panics propagate normally.
pub(crate) struct SimAbort;

/// Handle through which a simulated processor issues operations.
pub struct Proc {
    pid: usize,
    nprocs: usize,
    now: u64,
    req_tx: Sender<Request>,
    reply_rx: Receiver<Reply>,
}

impl Proc {
    pub(crate) fn new(
        pid: usize,
        nprocs: usize,
        req_tx: Sender<Request>,
        reply_rx: Receiver<Reply>,
    ) -> Self {
        Proc {
            pid,
            nprocs,
            now: 0,
            req_tx,
            reply_rx,
        }
    }

    fn roundtrip(&mut self, op: Op) -> Word {
        // A dead engine means the run was torn down; unwind quietly.
        if self
            .req_tx
            .send(Request {
                pid: self.pid,
                issue: self.now,
                op,
            })
            .is_err()
        {
            std::panic::panic_any(SimAbort);
        }
        match self.reply_rx.recv() {
            Ok(Reply { abort: true, .. }) | Err(_) => std::panic::panic_any(SimAbort),
            Ok(Reply { value, now, .. }) => {
                self.now = now;
                value
            }
        }
    }

    /// This processor's id in `0..nprocs`.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Number of processors in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// This processor's local clock, in simulated cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Reads a word.
    pub fn load(&mut self, addr: Addr) -> Word {
        self.roundtrip(Op::Load(addr))
    }

    /// Writes a word.
    pub fn store(&mut self, addr: Addr, val: Word) {
        self.roundtrip(Op::Store(addr, val));
    }

    /// Atomically writes `val` and returns the previous value.
    pub fn swap(&mut self, addr: Addr, val: Word) -> Word {
        self.roundtrip(Op::Swap(addr, val))
    }

    /// Atomic compare-and-swap: installs `new` iff the word equals
    /// `expected`. Returns `Ok(old)` on success, `Err(observed)` on failure.
    /// Failed CAS costs the same coherence traffic as a successful one.
    pub fn cas(&mut self, addr: Addr, expected: Word, new: Word) -> Result<Word, Word> {
        let old = self.roundtrip(Op::Cas(addr, expected, new));
        if old == expected {
            Ok(old)
        } else {
            Err(old)
        }
    }

    /// Atomic fetch-and-add (wrapping); returns the previous value.
    pub fn fetch_add(&mut self, addr: Addr, delta: Word) -> Word {
        self.roundtrip(Op::FetchAdd(addr, delta))
    }

    /// Atomic test-and-set: sets the word to 1, returns `true` if it was
    /// already nonzero (i.e. the "lock" was held).
    pub fn test_and_set(&mut self, addr: Addr) -> bool {
        self.swap(addr, 1) != 0
    }

    /// Blocks while the word equals `val`; returns the first differing value
    /// observed. The wait is a cached local spin: it costs one probe to
    /// arm and one coherence miss per wake, not one access per iteration.
    pub fn spin_while(&mut self, addr: Addr, val: Word) -> Word {
        self.roundtrip(Op::Spin(addr, WaitPred::WhileEq(val)))
    }

    /// Blocks until the word equals `val`; returns it (i.e. `val`).
    pub fn spin_until(&mut self, addr: Addr, val: Word) -> Word {
        self.roundtrip(Op::Spin(addr, WaitPred::UntilEq(val)))
    }

    /// Advances the local clock by `cycles` without touching memory —
    /// models computation, critical-section work, or backoff.
    pub fn delay(&mut self, cycles: u64) {
        self.roundtrip(Op::Delay(cycles));
    }

    pub(crate) fn send_done(&mut self) {
        let _ = self.req_tx.send(Request {
            pid: self.pid,
            issue: self.now,
            op: Op::Done,
        });
    }

    pub(crate) fn send_panicked(&mut self) {
        let _ = self.req_tx.send(Request {
            pid: self.pid,
            issue: self.now,
            op: Op::Panicked,
        });
    }
}
