//! Traffic and timing counters.
//!
//! These counters are the simulator's *output*: fig3 reports
//! [`Metrics::interconnect_transactions`] per critical section, fig1/fig2
//! derive lock-passing time from [`Metrics::total_cycles`], and the
//! per-processor breakdown feeds the fairness table.

/// Counters for one simulated processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcMetrics {
    /// Plain loads issued.
    pub loads: u64,
    /// Plain stores issued.
    pub stores: u64,
    /// Atomic read-modify-writes issued (swap/cas/fetch_add/test_and_set).
    pub rmws: u64,
    /// Accesses satisfied by the private cache.
    pub hits: u64,
    /// Accesses that required an interconnect transaction to fetch the line.
    pub misses: u64,
    /// Writes that hit a Shared line and had to invalidate other copies.
    pub upgrades: u64,
    /// Times this processor was woken from a `spin_while` watchpoint or a
    /// `futex_wait` park.
    pub wakeups: u64,
    /// Cycles spent blocked inside `spin_while` or parked in `futex_wait`.
    pub spin_wait_cycles: u64,
    /// Times this processor parked in `futex_wait` (immediate returns on a
    /// changed word do not count).
    pub futex_parks: u64,
    /// Parked waiters this processor's `futex_wake` calls dequeued — the
    /// waker-side mirror of [`ProcMetrics::futex_parks`]: on a run that
    /// completes, the machine-wide totals must balance.
    pub futex_woken: u64,
    /// Times this processor was placed on a core by the oversubscription
    /// scheduler; always 0 when [`crate::MachineParams::sched`] is `None`.
    pub ctx_switches: u64,
    /// This processor's final local clock.
    pub finish_time: u64,
}

impl ProcMetrics {
    /// Total memory operations issued (loads + stores + RMWs).
    pub fn ops(&self) -> u64 {
        self.loads + self.stores + self.rmws
    }

    /// Counter growth since `before` (an earlier snapshot of this same
    /// processor). Every field except `finish_time` is a monotonic counter
    /// and subtracts; `finish_time` is set-once, so the delta carries the
    /// current value (0 until the processor finishes) and merges by max.
    pub fn delta_since(&self, before: &ProcMetrics) -> ProcMetrics {
        ProcMetrics {
            loads: self.loads - before.loads,
            stores: self.stores - before.stores,
            rmws: self.rmws - before.rmws,
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            upgrades: self.upgrades - before.upgrades,
            wakeups: self.wakeups - before.wakeups,
            spin_wait_cycles: self.spin_wait_cycles - before.spin_wait_cycles,
            futex_parks: self.futex_parks - before.futex_parks,
            futex_woken: self.futex_woken - before.futex_woken,
            ctx_switches: self.ctx_switches - before.ctx_switches,
            finish_time: self.finish_time,
        }
    }

    /// Folds a later interval's [`ProcMetrics::delta_since`] into this
    /// accumulated view.
    pub fn absorb(&mut self, delta: &ProcMetrics) {
        self.loads += delta.loads;
        self.stores += delta.stores;
        self.rmws += delta.rmws;
        self.hits += delta.hits;
        self.misses += delta.misses;
        self.upgrades += delta.upgrades;
        self.wakeups += delta.wakeups;
        self.spin_wait_cycles += delta.spin_wait_cycles;
        self.futex_parks += delta.futex_parks;
        self.futex_woken += delta.futex_woken;
        self.ctx_switches += delta.ctx_switches;
        self.finish_time = self.finish_time.max(delta.finish_time);
    }
}

/// Whole-machine counters plus the per-processor breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Per-processor counters, indexed by pid.
    pub per_proc: Vec<ProcMetrics>,
    /// Interconnect transactions: bus occupancies on the bus machine, memory
    /// module requests on the NUMA machine. The currency of fig3.
    pub interconnect_transactions: u64,
    /// Total invalidation messages sent to remote sharers.
    pub invalidations: u64,
    /// Write-backs caused by capacity evictions of Modified lines.
    pub writebacks: u64,
    /// Simulated time at which the last processor finished.
    pub total_cycles: u64,
}

impl Metrics {
    /// Creates zeroed metrics for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        Metrics {
            per_proc: vec![ProcMetrics::default(); nprocs],
            ..Metrics::default()
        }
    }

    /// Sum of loads across processors.
    pub fn loads(&self) -> u64 {
        self.per_proc.iter().map(|p| p.loads).sum()
    }

    /// Sum of stores across processors.
    pub fn stores(&self) -> u64 {
        self.per_proc.iter().map(|p| p.stores).sum()
    }

    /// Sum of RMWs across processors.
    pub fn rmws(&self) -> u64 {
        self.per_proc.iter().map(|p| p.rmws).sum()
    }

    /// Sum of cache hits across processors.
    pub fn hits(&self) -> u64 {
        self.per_proc.iter().map(|p| p.hits).sum()
    }

    /// Sum of cache misses across processors.
    pub fn misses(&self) -> u64 {
        self.per_proc.iter().map(|p| p.misses).sum()
    }

    /// Sum of shared-to-modified upgrades across processors.
    pub fn upgrades(&self) -> u64 {
        self.per_proc.iter().map(|p| p.upgrades).sum()
    }

    /// Sum of watchpoint/futex wakeups across processors.
    pub fn wakeups(&self) -> u64 {
        self.per_proc.iter().map(|p| p.wakeups).sum()
    }

    /// Sum of cycles spent blocked in `spin_while` or parked in
    /// `futex_wait` across processors.
    pub fn spin_wait_cycles(&self) -> u64 {
        self.per_proc.iter().map(|p| p.spin_wait_cycles).sum()
    }

    /// Sum of scheduler core placements across processors; 0 on machines
    /// without an oversubscription scheduler.
    pub fn ctx_switches(&self) -> u64 {
        self.per_proc.iter().map(|p| p.ctx_switches).sum()
    }

    /// Sum of futex parks across processors.
    pub fn futex_parks(&self) -> u64 {
        self.per_proc.iter().map(|p| p.futex_parks).sum()
    }

    /// Sum of waiters dequeued by `futex_wake` across processors. Equals
    /// [`Metrics::futex_parks`] on any run that completed (every parked
    /// processor must have been woken for the run to finish).
    pub fn futex_woken(&self) -> u64 {
        self.per_proc.iter().map(|p| p.futex_woken).sum()
    }

    /// Counter growth since `before` (a snapshot of this machine earlier in
    /// the same run): per-processor deltas plus machine-wide counter
    /// differences. `total_cycles` is a high-water mark, not a counter —
    /// the delta carries the current value and merges by max.
    ///
    /// # Panics
    ///
    /// If the processor counts differ.
    pub fn delta_since(&self, before: &Metrics) -> Metrics {
        assert_eq!(
            self.per_proc.len(),
            before.per_proc.len(),
            "metrics deltas need matching processor counts"
        );
        Metrics {
            per_proc: self
                .per_proc
                .iter()
                .zip(&before.per_proc)
                .map(|(now, then)| now.delta_since(then))
                .collect(),
            interconnect_transactions: self.interconnect_transactions
                - before.interconnect_transactions,
            invalidations: self.invalidations - before.invalidations,
            writebacks: self.writebacks - before.writebacks,
            total_cycles: self.total_cycles,
        }
    }

    /// Folds a later interval's [`Metrics::delta_since`] into this
    /// accumulated view. Summing every fragment's delta (in any order) onto
    /// the run's starting metrics reproduces the final metrics exactly.
    ///
    /// # Panics
    ///
    /// If the processor counts differ.
    pub fn absorb(&mut self, delta: &Metrics) {
        assert_eq!(
            self.per_proc.len(),
            delta.per_proc.len(),
            "metrics merges need matching processor counts"
        );
        for (acc, d) in self.per_proc.iter_mut().zip(&delta.per_proc) {
            acc.absorb(d);
        }
        self.interconnect_transactions += delta.interconnect_transactions;
        self.invalidations += delta.invalidations;
        self.writebacks += delta.writebacks;
        self.total_cycles = self.total_cycles.max(delta.total_cycles);
    }

    /// Global cache hit rate in `[0, 1]`; 0 when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m = Metrics::new(4);
        assert_eq!(m.per_proc.len(), 4);
        assert_eq!(m.loads(), 0);
        assert_eq!(m.hit_rate(), 0.0);
    }

    #[test]
    fn aggregation_sums_processors() {
        let mut m = Metrics::new(2);
        m.per_proc[0].loads = 3;
        m.per_proc[0].hits = 2;
        m.per_proc[0].misses = 1;
        m.per_proc[1].loads = 5;
        m.per_proc[1].stores = 7;
        m.per_proc[1].hits = 6;
        m.per_proc[1].misses = 6;
        assert_eq!(m.loads(), 8);
        assert_eq!(m.stores(), 7);
        assert_eq!(m.hits(), 8);
        assert_eq!(m.misses(), 7);
        assert!((m.hit_rate() - 8.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_helpers_cover_scheduler_and_wait_counters() {
        let mut m = Metrics::new(3);
        m.per_proc[0].upgrades = 2;
        m.per_proc[1].upgrades = 3;
        m.per_proc[0].spin_wait_cycles = 100;
        m.per_proc[2].spin_wait_cycles = 50;
        m.per_proc[1].ctx_switches = 4;
        m.per_proc[2].ctx_switches = 1;
        m.per_proc[0].futex_parks = 2;
        m.per_proc[1].futex_woken = 2;
        assert_eq!(m.upgrades(), 5);
        assert_eq!(m.spin_wait_cycles(), 150);
        assert_eq!(m.ctx_switches(), 5);
        assert_eq!(m.futex_parks(), m.futex_woken());
    }

    #[test]
    fn ops_counts_all_kinds() {
        let p = ProcMetrics {
            loads: 1,
            stores: 2,
            rmws: 3,
            ..ProcMetrics::default()
        };
        assert_eq!(p.ops(), 6);
    }
}
