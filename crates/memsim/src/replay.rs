//! Fragment-parallel replay of recorded simulations.
//!
//! A simulation is a pure function of its parameters and program, but the
//! live run is inherently serial in simulated time: the engine executes one
//! memory event after another. This module splits that timeline into
//! *fragments* so regeneration can use every host core:
//!
//! 1. **Record** ([`crate::Machine::run_recorded`]): run the workload once,
//!    normally, while the engine logs every processor's submissions (and
//!    user-level trace events) and clones the complete machine state every
//!    K simulated cycles ([`Recording`]).
//! 2. **Replay** ([`FragmentReplayer`]): re-execute the fragments
//!    *concurrently*, each from its snapshot, feeding the logged operations
//!    back into the engine instead of running processor threads. Replay of
//!    fragment `i` stops exactly where snapshot `i + 1` was captured, so
//!    per-fragment [`Metrics`] deltas and trace events stitch back together
//!    — in fragment order — into a result byte-identical to the live run.
//!
//! Replayed fragments are single-threaded and independent, so N fragments
//! scale across N workers with no synchronization beyond a grab counter.
//! The combination never beats the plain run for a *single* simulation on a
//! single core (the recording pass already runs the whole workload); the
//! payoff is on multi-core hosts, where long single runs — previously a
//! serial bottleneck — decompose into pool-sized work, composing with the
//! existing cross-cell sweep axis (`SYNCMECH_SWEEP_THREADS`).
//!
//! The environment knobs, parsed strictly like every other `SYNCMECH_*`
//! knob (garbage aborts; it never silently falls back):
//!
//! * `SYNCMECH_REPLAY_FRAGMENT` — fragment length in simulated cycles;
//!   setting it routes every [`crate::Machine::run`] through
//!   record-then-replay ([`fragment_cycles_env`]).
//! * `SYNCMECH_REPLAY_WORKERS` — host threads for the replay fan-out,
//!   defaulting to the host's parallelism ([`replay_workers_env`]).

use crate::engine::{EngineCore, LogEntry, Recorder, SnapshotState};
use crate::machine::{Latch, RunReport};
use crate::metrics::Metrics;
use crate::params::MachineParams;
use crate::pool::Pool;
use crate::Word;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use trace::Tracer;

/// A completed run's operation logs and fragment-boundary snapshots,
/// produced by [`crate::Machine::run_recorded`].
///
/// The recording owns everything replay needs: machine parameters, one log
/// per processor (every submitted request plus user-level trace events, in
/// program order), and the machine states captured at fragment boundaries.
/// `snapshots[0]` is the pre-run state, so indices `0..fragments()` each
/// name a replayable span: from snapshot `i` up to where snapshot `i + 1`
/// was captured (the last span runs to completion).
pub struct Recording {
    params: MachineParams,
    nprocs: usize,
    fragment: u64,
    logs: Arc<Vec<Vec<LogEntry>>>,
    snapshots: Vec<SnapshotState>,
    report: RunReport,
}

impl Recording {
    pub(crate) fn new(
        params: MachineParams,
        nprocs: usize,
        fragment: u64,
        recorder: Recorder,
        report: RunReport,
    ) -> Self {
        Recording {
            params,
            nprocs,
            fragment,
            logs: Arc::new(recorder.logs),
            snapshots: recorder.snapshots,
            report,
        }
    }

    /// Number of replayable fragments (equivalently, snapshots captured —
    /// at least 1, the pre-run state).
    pub fn fragments(&self) -> usize {
        self.snapshots.len()
    }

    /// The configured fragment length in simulated cycles. Snapshots land
    /// on the first engine step at or past each multiple of this.
    pub fn fragment_cycles(&self) -> u64 {
        self.fragment
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The recording pass's own result — the ground truth every replay
    /// must reproduce.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Replays from snapshot `index` until `stop_at` (a boundary in
    /// simulated cycles) or, when `None`, to completion. Returns the
    /// engine's final cumulative metrics and memory.
    fn replay_span(
        &self,
        index: usize,
        stop_at: Option<u64>,
        tracer: Option<Arc<Tracer>>,
    ) -> (Metrics, Vec<Word>) {
        let mut core = EngineCore::from_snapshot(
            self.params.clone(),
            &self.snapshots[index],
            Arc::clone(&self.logs),
            stop_at,
            tracer,
        );
        if let Err(e) = core.replay_drive() {
            // The recording pass completed cleanly, and replay re-executes
            // the same deterministic schedule; any error here is an engine
            // snapshot/restore bug, not a property of the workload.
            panic!("replay of a clean recording failed at fragment {index}: {e}");
        }
        core.into_memory()
    }

    /// Restores snapshot `index` and replays to completion — the
    /// snapshot/restore round-trip. The result equals [`Recording::report`]
    /// for every index (pinned by the determinism test suite).
    ///
    /// # Panics
    ///
    /// If `index` is out of range, or on an engine replay bug.
    pub fn resume(&self, index: usize) -> RunReport {
        let (metrics, memory) = self.replay_span(index, None, None);
        RunReport { metrics, memory }
    }
}

impl std::fmt::Debug for Recording {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recording")
            .field("nprocs", &self.nprocs)
            .field("fragment", &self.fragment)
            .field("fragments", &self.fragments())
            .finish()
    }
}

/// What one replayed fragment contributes to the stitched result.
struct FragmentOutcome {
    /// Counter growth across the fragment ([`Metrics::delta_since`]).
    delta: Metrics,
    /// Memory at the fragment's end (only the last fragment's survives).
    memory: Vec<Word>,
    /// The fragment's private tracer, absorbed into the target in order.
    tracer: Option<Arc<Tracer>>,
}

/// Replays a [`Recording`]'s fragments concurrently on the persistent
/// worker pool and stitches the results back together in fragment order.
pub struct FragmentReplayer<'a> {
    recording: &'a Recording,
    workers: usize,
}

impl<'a> FragmentReplayer<'a> {
    /// A replayer using up to `workers` host threads (the calling thread
    /// counts as one; the shortfall is leased from the worker pool).
    ///
    /// # Panics
    ///
    /// If `workers` is zero.
    pub fn new(recording: &'a Recording, workers: usize) -> Self {
        assert!(workers >= 1, "fragment replay needs at least one host worker");
        FragmentReplayer { recording, workers }
    }

    /// Replays every fragment and returns the stitched report, which equals
    /// the recording pass's own [`Recording::report`] byte for byte.
    pub fn run(&self) -> RunReport {
        self.run_traced(None)
    }

    /// Like [`FragmentReplayer::run`], additionally recording trace events
    /// into `target`. Each fragment replays into a private tracer of the
    /// target's mode and capacity; the privates are absorbed into `target`
    /// in fragment order, reproducing what a traced sequential run records
    /// (tracing is timing-invisible, so replay emits the same events).
    ///
    /// `target` must be quiescent — no concurrent recorders — and must
    /// cover the recording's processor count.
    pub fn run_traced(&self, target: Option<&Arc<Tracer>>) -> RunReport {
        let rec = self.recording;
        let n = rec.fragments();
        let run_one = |i: usize| -> FragmentOutcome {
            let frag_tracer =
                target.map(|t| Arc::new(Tracer::new(t.mode(), t.nprocs(), t.capacity())));
            // Fragment i ends exactly where snapshot i + 1 was captured;
            // the last fragment runs out the rest of the recording.
            let stop_at = rec.snapshots.get(i + 1).map(|s| s.boundary);
            let (end, memory) = rec.replay_span(i, stop_at, frag_tracer.clone());
            FragmentOutcome {
                delta: end.delta_since(&rec.snapshots[i].metrics),
                memory,
                tracer: frag_tracer,
            }
        };

        let outcomes: Vec<Mutex<Option<FragmentOutcome>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        // Fragments are claimed through a grab counter, so stragglers don't
        // convoy behind a fixed pre-partition. Never unwinds — the pool and
        // the latch depend on that.
        let worker_main = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| run_one(i))) {
                Ok(out) => {
                    *outcomes[i].lock().expect("outcome mutex poisoned") = Some(out);
                }
                Err(payload) => {
                    let mut slot = first_panic.lock().expect("panic slot poisoned");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    break;
                }
            }
        };

        let extra = (self.workers - 1).min(n.saturating_sub(1));
        {
            let replays_done = Latch::new(extra);
            let lease = Pool::global().lease(extra);
            for w in 0..extra {
                let worker_main = &worker_main;
                let replays_done = &replays_done;
                // SAFETY: `replays_done.wait()` below does not return until
                // every job has executed `count_down` as its final action,
                // so all borrows (the recording, outcomes, the counter, the
                // latch) outlive the jobs, and the lease is only dropped
                // once the workers are idle again.
                unsafe {
                    lease.dispatch(
                        w,
                        Box::new(move || {
                            worker_main();
                            replays_done.count_down();
                        }),
                    );
                }
            }
            worker_main();
            replays_done.wait();
        }
        if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }

        // Stitch in fragment order: deltas sum onto the pre-run metrics,
        // trace events append in timeline order, the last fragment's memory
        // is the final memory.
        let mut metrics = rec.snapshots[0].metrics.clone();
        let mut memory = Vec::new();
        for (i, cell) in outcomes.iter().enumerate() {
            let out = cell
                .lock()
                .expect("outcome mutex poisoned")
                .take()
                .unwrap_or_else(|| panic!("fragment {i} never produced an outcome"));
            metrics.absorb(&out.delta);
            if let (Some(target), Some(frag)) = (target, &out.tracer) {
                target.absorb(frag);
            }
            if i == n - 1 {
                memory = out.memory;
            }
        }
        debug_assert_eq!(
            metrics, rec.report.metrics,
            "stitched metrics diverged from the recording pass"
        );
        debug_assert_eq!(
            memory, rec.report.memory,
            "stitched memory diverged from the recording pass"
        );
        RunReport { metrics, memory }
    }
}

/// The policy behind [`fragment_cycles_env`], with the environment lookup
/// factored out for testability: `None` means the variable is unset (no
/// fragment replay), `Some(k)` a fragment length of `k` simulated cycles.
///
/// # Errors
///
/// Zero and non-numeric values are rejected with an actionable message —
/// a user who sets the variable meant to control replay, and a typo must
/// not silently disable it.
pub fn fragment_cycles_from(var: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = var else {
        return Ok(None);
    };
    match raw.trim().parse::<u64>() {
        Ok(0) => Err(
            "SYNCMECH_REPLAY_FRAGMENT=0: a fragment must cover at least one simulated cycle; \
             set a positive cycle count, or unset the variable to run without fragment replay"
                .to_string(),
        ),
        Ok(k) => Ok(Some(k)),
        Err(_) => Err(format!(
            "SYNCMECH_REPLAY_FRAGMENT={raw:?} is not a positive integer; set a fragment length \
             in simulated cycles like 25000, or unset the variable to run without fragment replay"
        )),
    }
}

/// Fragment length from `SYNCMECH_REPLAY_FRAGMENT`, read fresh on every
/// call (runs inside one process may toggle it); `None` when unset.
///
/// # Panics
///
/// On a zero or non-numeric value (see [`fragment_cycles_from`]).
pub fn fragment_cycles_env() -> Option<u64> {
    let var = std::env::var("SYNCMECH_REPLAY_FRAGMENT").ok();
    match fragment_cycles_from(var.as_deref()) {
        Ok(v) => v,
        Err(msg) => panic!("{msg}"),
    }
}

/// The policy behind [`replay_workers_env`]: `None` (unset) means the
/// host's available parallelism.
///
/// # Errors
///
/// Zero and non-numeric values are rejected with an actionable message.
pub fn replay_workers_from(var: Option<&str>) -> Result<usize, String> {
    let Some(raw) = var else {
        return Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1));
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(
            "SYNCMECH_REPLAY_WORKERS=0: fragment replay needs at least one host worker; \
             set a positive count, or unset the variable to use the host's parallelism"
                .to_string(),
        ),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "SYNCMECH_REPLAY_WORKERS={raw:?} is not a positive integer; set a worker count \
             like 4, or unset the variable to use the host's parallelism"
        )),
    }
}

/// Host threads for the replay fan-out: `SYNCMECH_REPLAY_WORKERS` if set,
/// otherwise the host's available parallelism.
///
/// # Panics
///
/// On a zero or non-numeric value (see [`replay_workers_from`]).
pub fn replay_workers_env() -> usize {
    let var = std::env::var("SYNCMECH_REPLAY_WORKERS").ok();
    match replay_workers_from(var.as_deref()) {
        Ok(n) => n,
        Err(msg) => panic!("{msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_env_is_validated_strictly() {
        assert_eq!(fragment_cycles_from(None).unwrap(), None);
        assert_eq!(fragment_cycles_from(Some("25000")).unwrap(), Some(25_000));
        assert_eq!(fragment_cycles_from(Some(" 7 ")).unwrap(), Some(7));
        let zero = fragment_cycles_from(Some("0")).unwrap_err();
        assert!(zero.contains("at least one simulated cycle"), "got: {zero}");
        for bad in ["", "many", "-5", "2.5"] {
            let err = fragment_cycles_from(Some(bad)).unwrap_err();
            assert!(err.contains("not a positive integer"), "{bad:?} got: {err}");
        }
    }

    #[test]
    fn replay_workers_env_is_validated_strictly() {
        assert!(replay_workers_from(None).unwrap() >= 1);
        assert_eq!(replay_workers_from(Some("4")).unwrap(), 4);
        let zero = replay_workers_from(Some("0")).unwrap_err();
        assert!(zero.contains("at least one host worker"), "got: {zero}");
        for bad in ["", "two", "-1"] {
            let err = replay_workers_from(Some(bad)).unwrap_err();
            assert!(err.contains("not a positive integer"), "{bad:?} got: {err}");
        }
    }
}
