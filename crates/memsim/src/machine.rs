//! The machine: thread orchestration around the engine.
//!
//! [`Machine::run`] no longer spawns threads: processor `0` executes on the
//! calling thread (a P = 1 simulation involves no second thread at all),
//! and processors `1..P` run as jobs on the persistent worker pool
//! ([`crate::pool`]), so a sweep reuses one set of parked workers across
//! every point instead of paying `P` spawns and joins per run.

use crate::engine::{EngineCore, EngineShared};
use crate::metrics::Metrics;
use crate::params::MachineParams;
use crate::pool::Pool;
use crate::proc::{Proc, SimAbort};
use crate::replay::{FragmentReplayer, Recording};
use crate::{SimError, Word};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Traffic and timing counters.
    pub metrics: Metrics,
    /// Final contents of the shared memory, for invariant checks.
    pub memory: Vec<Word>,
}

/// Counts outstanding worker jobs; the run completes when it hits zero.
///
/// `count_down` notifies while still holding the lock and touches nothing
/// afterwards, so the waiter cannot observe zero — and free the latch —
/// before the last worker is done with it.
pub(crate) struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    pub(crate) fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    pub(crate) fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch mutex poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    pub(crate) fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch mutex poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch mutex poisoned");
        }
    }
}

/// A configured simulated multiprocessor.
///
/// `Machine` is cheap to construct and immutable; every [`Machine::run`]
/// creates fresh caches, directory, interconnect and memory, so runs never
/// contaminate each other (only the OS threads are recycled).
#[derive(Debug, Clone)]
pub struct Machine {
    params: MachineParams,
    tracer: Option<Arc<trace::Tracer>>,
}

impl Machine {
    /// Creates a machine with the given parameters (validated on first run).
    pub fn new(params: MachineParams) -> Self {
        Machine {
            params,
            tracer: None,
        }
    }

    /// Attaches an event tracer: every run records sync events (spin waits,
    /// futex parks/wakes, context switches, and whatever kernels report via
    /// [`Proc::trace_event`]) into the tracer's per-processor rings.
    ///
    /// Recording is purely additive — the simulated schedule and every
    /// metric are bit-identical with and without a tracer attached.
    ///
    /// The tracer must cover at least as many processors as the largest
    /// `nprocs` passed to [`Machine::run`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<trace::Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<trace::Tracer>> {
        self.tracer.as_ref()
    }

    /// The machine's parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Runs `body` once per processor over a zero-initialized shared memory
    /// of `shared_words` words.
    ///
    /// `body` receives the processor handle; it is invoked concurrently from
    /// `nprocs` threads (processor 0 on the caller's own thread) but the
    /// engine serializes all memory operations deterministically.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if all unfinished processors are parked on
    /// watchpoints; [`SimError::TimeLimit`] if simulated time exceeds
    /// [`MachineParams::max_cycles`].
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `body` (so `assert!` works inside kernels),
    /// and panics on invalid configuration.
    pub fn run<F>(&self, nprocs: usize, shared_words: usize, body: F) -> Result<RunReport, SimError>
    where
        F: Fn(&mut Proc) + Send + Sync,
    {
        self.run_with_init(nprocs, vec![0; shared_words], body)
    }

    /// Like [`Machine::run`] but with explicit initial memory contents.
    ///
    /// When `SYNCMECH_REPLAY_FRAGMENT` is set the run is executed in
    /// fragment-replay mode: a recording pass followed by concurrent
    /// fragment replay on the worker pool (see [`crate::replay`]). The
    /// result — metrics, memory, and any attached tracer's contents — is
    /// byte-identical to the plain sequential run.
    pub fn run_with_init<F>(
        &self,
        nprocs: usize,
        init_memory: Vec<Word>,
        body: F,
    ) -> Result<RunReport, SimError>
    where
        F: Fn(&mut Proc) + Send + Sync,
    {
        if let Some(fragment) = crate::replay::fragment_cycles_env() {
            return self.run_fragmented(
                nprocs,
                init_memory,
                fragment,
                crate::replay::replay_workers_env(),
                body,
            );
        }
        self.run_on_pool(Pool::global(), nprocs, init_memory, body)
    }

    /// The full run path, parameterized over the worker pool (tests use a
    /// private pool to make reuse assertions deterministic).
    pub(crate) fn run_on_pool<F>(
        &self,
        pool: &Pool,
        nprocs: usize,
        init_memory: Vec<Word>,
        body: F,
    ) -> Result<RunReport, SimError>
    where
        F: Fn(&mut Proc) + Send + Sync,
    {
        let core = self.run_engine(pool, nprocs, init_memory, None, body)?;
        let (metrics, memory) = core.into_memory();
        // A completed run must have woken every processor it ever parked:
        // `futex_parks` counts park-side entries, `futex_woken` counts the
        // waker-side dequeues, and an imbalance means a waiter finished the
        // run while still in the futex queue (engine bookkeeping bug).
        debug_assert_eq!(
            metrics.futex_parks(),
            metrics.futex_woken(),
            "futex park/wake balance violated on a completed run"
        );
        Ok(RunReport { metrics, memory })
    }

    /// Runs the workload once, recording per-processor operation logs and
    /// state snapshots every `fragment` simulated cycles, so the run can be
    /// re-executed fragment-by-fragment (see [`crate::replay`]).
    ///
    /// The recording pass itself runs untraced: the machine's tracer (if
    /// any) is populated exactly once, by the stitched replay, which —
    /// because tracing is timing-invisible — records the same events a
    /// traced live run would have.
    ///
    /// # Errors
    ///
    /// The same errors as [`Machine::run`]; a failed run yields no
    /// recording.
    pub fn run_recorded<F>(
        &self,
        nprocs: usize,
        init_memory: Vec<Word>,
        fragment: u64,
        body: F,
    ) -> Result<Recording, SimError>
    where
        F: Fn(&mut Proc) + Send + Sync,
    {
        let mut core = self.run_engine(Pool::global(), nprocs, init_memory, Some(fragment), body)?;
        let recorder = core.take_recorder().expect("recording run has a recorder");
        let (metrics, memory) = core.into_memory();
        debug_assert_eq!(
            metrics.futex_parks(),
            metrics.futex_woken(),
            "futex park/wake balance violated on a completed run"
        );
        Ok(Recording::new(
            self.params.clone(),
            nprocs,
            fragment,
            recorder,
            RunReport { metrics, memory },
        ))
    }

    /// [`Machine::run_recorded`] followed by concurrent fragment replay on
    /// `workers` host threads, stitching per-fragment metrics and trace
    /// events back together in fragment order. Produces a report (and
    /// tracer contents) byte-identical to the plain sequential run.
    pub fn run_fragmented<F>(
        &self,
        nprocs: usize,
        init_memory: Vec<Word>,
        fragment: u64,
        workers: usize,
        body: F,
    ) -> Result<RunReport, SimError>
    where
        F: Fn(&mut Proc) + Send + Sync,
    {
        let recording = self.run_recorded(nprocs, init_memory, fragment, body)?;
        Ok(FragmentReplayer::new(&recording, workers).run_traced(self.tracer.as_ref()))
    }

    /// The shared live-execution path: runs the workload's processor threads
    /// to completion and returns the finished engine core. `fragment` turns
    /// on recording mode (snapshots every `fragment` cycles, per-processor
    /// op logs, no live tracing).
    fn run_engine<F>(
        &self,
        pool: &Pool,
        nprocs: usize,
        init_memory: Vec<Word>,
        fragment: Option<u64>,
        body: F,
    ) -> Result<EngineCore, SimError>
    where
        F: Fn(&mut Proc) + Send + Sync,
    {
        // The abort path unwinds processor threads with a sentinel payload;
        // filter it out of panic reporting once, process-wide.
        install_simabort_hook();

        let recording = fragment.is_some();
        // A recording pass never traces live — the stitched replay is the
        // single producer of trace events, so they are neither duplicated
        // nor subject to ring-drop differences between the two passes.
        let run_tracer = if recording { None } else { self.tracer.clone() };

        // Validates params and processor count before any worker is leased.
        let engine = Arc::new(EngineShared::new(
            self.params.clone(),
            init_memory,
            nprocs,
            run_tracer.clone(),
            fragment,
        ));
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        // One processor's whole life: run the body, then tell the engine how
        // it ended. Never unwinds — the pool and the latch depend on that.
        let proc_main = |pid: usize| {
            let mut proc = Proc::new(
                pid,
                nprocs,
                self.params.max_cycles,
                Arc::clone(&engine),
                run_tracer.clone(),
                recording,
            );
            match catch_unwind(AssertUnwindSafe(|| body(&mut proc))) {
                Ok(()) => proc.send_done(),
                Err(payload) => {
                    if payload.downcast_ref::<SimAbort>().is_none() {
                        // A genuine user panic: tell the engine so it can
                        // release the other processors, and keep the payload
                        // for the machine to re-raise.
                        proc.send_panicked();
                        let mut slot = first_panic.lock().expect("panic slot poisoned");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    // SimAbort: unwound deliberately; exit quietly.
                }
            }
        };

        {
            let workers_done = Latch::new(nprocs - 1);
            let lease = pool.lease(nprocs - 1);
            for pid in 1..nprocs {
                let proc_main = &proc_main;
                let workers_done = &workers_done;
                // SAFETY: `workers_done.wait()` below does not return until
                // every job has executed `count_down` as its final action,
                // so all borrows (body, engine, first_panic, the latch) stay
                // alive for the jobs' whole lifetime, and the lease is only
                // dropped after the workers are idle again.
                unsafe {
                    lease.dispatch(
                        pid - 1,
                        Box::new(move || {
                            proc_main(pid);
                            workers_done.count_down();
                        }),
                    );
                }
            }
            proc_main(0);
            workers_done.wait();
        }

        if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        let core = Arc::try_unwrap(engine)
            .unwrap_or_else(|_| unreachable!("all processors have dropped their engine handles"))
            .into_core();
        if let Some(err) = core.error.clone() {
            return Err(err);
        }
        Ok(core)
    }
}

/// Installs (once) a panic hook that suppresses the internal [`SimAbort`]
/// sentinel while delegating every real panic to the previous hook.
fn install_simabort_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Topology;

    fn bus(n: usize) -> Machine {
        Machine::new(MachineParams::bus_1991(n))
    }

    /// Exercises futex park/wake and watchpoint spins: pids 1.. park until
    /// pid 0 wakes them, then spin until pid 0's final store.
    fn park_then_spin(p: &mut Proc) {
        if p.pid() == 0 {
            p.delay(200);
            p.store(1, 1);
            p.futex_wake(1, usize::MAX);
            p.store(0, 1);
        } else {
            while p.futex_wait(1, 0) == 0 {}
            p.spin_until(0, 1);
        }
    }

    #[test]
    fn tracer_records_without_changing_the_simulation() {
        use trace::EventClass as C;
        let base = bus(4).run(4, 2, park_then_spin).unwrap();
        let tracer = trace::Tracer::full(4);
        let traced = bus(4)
            .with_tracer(Arc::clone(&tracer))
            .run(4, 2, park_then_spin)
            .unwrap();
        // Purely additive: identical metrics, memory, and cycle counts.
        assert_eq!(base.metrics, traced.metrics);
        assert_eq!(base.memory, traced.memory);

        // Every pid 1..4 parked exactly once (pid 0 delays past their
        // first futex_wait probe), and every park has a wake and a resume.
        assert_eq!(tracer.class_total(C::FutexPark), 3);
        assert_eq!(tracer.class_total(C::FutexPark), traced.metrics.futex_parks());
        assert_eq!(tracer.class_total(C::FutexWake), 3);
        assert_eq!(tracer.class_total(C::FutexResume), 3);
        assert_eq!(tracer.class_total(C::SpinBegin), tracer.class_total(C::SpinEnd));

        // Per-processor streams are time-ordered (the Chrome exporter and
        // the validator both rely on this).
        for pid in 0..4 {
            let evs = tracer.events(pid);
            assert!(evs.windows(2).all(|w| w[0].t <= w[1].t), "p{pid} unordered");
        }
    }

    #[test]
    fn counters_mode_counts_without_storing() {
        use trace::{EventClass, TraceMode, Tracer};
        let tracer = Arc::new(Tracer::new(TraceMode::Counters, 4, 16));
        bus(4)
            .with_tracer(Arc::clone(&tracer))
            .run(4, 2, park_then_spin)
            .unwrap();
        assert_eq!(tracer.class_total(EventClass::FutexPark), 3);
        for pid in 0..4 {
            assert!(tracer.events(pid).is_empty());
        }
    }

    #[test]
    fn single_proc_load_store() {
        let report = bus(1)
            .run(1, 4, |p| {
                p.store(0, 7);
                assert_eq!(p.load(0), 7);
                p.store(3, 9);
                assert_eq!(p.load(3), 9);
            })
            .unwrap();
        assert_eq!(report.memory, vec![7, 0, 0, 9]);
        assert!(report.metrics.total_cycles > 0);
    }

    #[test]
    fn fetch_add_is_atomic_across_procs() {
        let report = bus(8)
            .run(8, 1, |p| {
                for _ in 0..50 {
                    p.fetch_add(0, 1);
                }
            })
            .unwrap();
        assert_eq!(report.memory[0], 400);
    }

    #[test]
    fn swap_returns_old_value() {
        let report = bus(1)
            .run(1, 1, |p| {
                assert_eq!(p.swap(0, 5), 0);
                assert_eq!(p.swap(0, 9), 5);
            })
            .unwrap();
        assert_eq!(report.memory[0], 9);
    }

    #[test]
    fn cas_success_and_failure() {
        bus(1)
            .run(1, 1, |p| {
                assert_eq!(p.cas(0, 0, 3), Ok(0));
                assert_eq!(p.cas(0, 0, 7), Err(3));
                assert_eq!(p.load(0), 3);
            })
            .unwrap();
    }

    #[test]
    fn test_and_set_reports_prior_state() {
        bus(1)
            .run(1, 1, |p| {
                assert!(!p.test_and_set(0));
                assert!(p.test_and_set(0));
            })
            .unwrap();
    }

    #[test]
    fn spin_until_crosses_processors() {
        // p0 waits for p1's signal; p1 delays first so the wait really parks.
        let report = bus(2)
            .run(2, 2, |p| {
                if p.pid() == 0 {
                    p.spin_until(0, 1);
                    p.store(1, 42);
                } else {
                    p.delay(500);
                    p.store(0, 1);
                }
            })
            .unwrap();
        assert_eq!(report.memory[1], 42);
        assert_eq!(report.metrics.wakeups(), 1);
        assert!(report.metrics.per_proc[0].spin_wait_cycles > 0);
    }

    #[test]
    fn spin_while_returns_changed_value() {
        bus(2)
            .run(2, 1, |p| {
                if p.pid() == 0 {
                    let seen = p.spin_while(0, 0);
                    assert_eq!(seen, 77);
                } else {
                    p.delay(100);
                    p.store(0, 77);
                }
            })
            .unwrap();
    }

    #[test]
    fn spin_satisfied_immediately_does_not_park() {
        let report = bus(1)
            .run_with_init(1, vec![5], |p| {
                assert_eq!(p.spin_while(0, 0), 5);
                p.spin_until(0, 5);
            })
            .unwrap();
        assert_eq!(report.metrics.wakeups(), 0);
    }

    #[test]
    fn deadlock_detected() {
        let err = bus(2)
            .run(2, 1, |p| {
                p.spin_until(0, 1); // nobody ever stores 1
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_enforced() {
        let mut params = MachineParams::bus_1991(1);
        params.max_cycles = 1000;
        let err = Machine::new(params)
            .run(1, 1, |p| {
                for _ in 0..100 {
                    p.delay(100);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::TimeLimit { limit: 1000 });
    }

    #[test]
    fn user_panic_propagates() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = bus(2).run(2, 1, |p| {
                if p.pid() == 1 {
                    panic!("kernel bug");
                }
                // p0 parks forever; the abort must release it.
                p.spin_until(0, 1);
            });
        }));
        let payload = outcome.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "kernel bug");
    }

    #[test]
    fn panic_on_the_caller_thread_propagates() {
        // pid 0 runs on the calling thread now; its panics must still be
        // caught, the peers released, and the payload re-raised.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = bus(2).run(2, 1, |p| {
                if p.pid() == 0 {
                    panic!("pid0 bug");
                }
                p.spin_until(0, 1);
            });
        }));
        let payload = outcome.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "pid0 bug");
    }

    #[test]
    fn determinism_same_seedless_program() {
        let run = || {
            bus(4)
                .run(4, 2, |p| {
                    for i in 0..20 {
                        p.fetch_add(0, p.pid() as u64 + i);
                        p.delay((p.pid() as u64 * 7) % 13);
                        p.store(1, p.pid() as u64);
                    }
                })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.memory, b.memory);
    }

    #[test]
    fn cached_reads_hit_after_first_miss() {
        let report = bus(1)
            .run(1, 1, |p| {
                p.load(0);
                for _ in 0..9 {
                    p.load(0);
                }
            })
            .unwrap();
        let m = &report.metrics.per_proc[0];
        assert_eq!(m.misses, 1);
        assert_eq!(m.hits, 9);
    }

    #[test]
    fn write_invalidates_reader() {
        let report = bus(2)
            .run(2, 1, |p| {
                if p.pid() == 0 {
                    p.load(0); // cache the line shared
                    p.delay(1000);
                    p.load(0); // must miss again after p1's write
                } else {
                    p.delay(500);
                    p.store(0, 1);
                }
            })
            .unwrap();
        assert_eq!(report.metrics.per_proc[0].misses, 2);
        assert!(report.metrics.invalidations >= 1);
    }

    #[test]
    fn sharers_on_different_lines_do_not_interfere() {
        let params = MachineParams::bus_1991(2);
        let stride = params.line_words;
        let report = Machine::new(params)
            .run(2, stride * 2, move |p| {
                let mine = p.pid() * stride;
                for _ in 0..20 {
                    p.store(mine, 1);
                }
            })
            .unwrap();
        // After the first miss each processor owns its own line: all hits.
        assert_eq!(report.metrics.invalidations, 0);
        for m in &report.metrics.per_proc {
            assert_eq!(m.misses, 1);
            assert_eq!(m.hits, 19);
        }
    }

    #[test]
    fn numa_machine_runs_and_counts_transactions() {
        let machine = Machine::new(MachineParams::numa_1991(4));
        assert!(matches!(
            machine.params().topology,
            Topology::Numa { .. }
        ));
        let report = machine
            .run(4, 1, |p| {
                for _ in 0..10 {
                    p.fetch_add(0, 1);
                }
            })
            .unwrap();
        assert_eq!(report.memory[0], 40);
        assert!(report.metrics.interconnect_transactions > 0);
    }

    #[test]
    fn out_of_bounds_address_faults() {
        let err = bus(1)
            .run(1, 1, |p| {
                p.load(5);
            })
            .unwrap_err();
        assert_eq!(err, SimError::Fault { pid: 0, addr: 5 });
    }

    #[test]
    fn futex_wait_returns_immediately_on_changed_word() {
        let report = bus(1)
            .run_with_init(1, vec![3], |p| {
                // Word is 3, expected 0: no park, current value returned.
                assert_eq!(p.futex_wait(0, 0), 3);
            })
            .unwrap();
        assert_eq!(report.metrics.futex_parks(), 0);
        assert_eq!(report.metrics.wakeups(), 0);
    }

    #[test]
    fn futex_park_and_wake_crosses_processors() {
        let report = bus(2)
            .run(2, 2, |p| {
                if p.pid() == 0 {
                    let mut cur = p.load(0);
                    while cur == 0 {
                        cur = p.futex_wait(0, 0);
                        if cur == 0 {
                            cur = p.load(0);
                        }
                    }
                    assert_eq!(cur, 1);
                    p.store(1, 42);
                } else {
                    p.delay(500);
                    p.store(0, 1);
                    p.futex_wake(0, 1);
                }
            })
            .unwrap();
        assert_eq!(report.memory[1], 42);
        assert_eq!(report.metrics.futex_parks(), 1);
        assert_eq!(report.metrics.per_proc[0].wakeups, 1);
        assert!(report.metrics.per_proc[0].spin_wait_cycles > 0);
    }

    #[test]
    fn futex_wake_releases_exactly_n_in_fifo_order() {
        // Processors 1..=3 park on word 0; processor 0 wakes two, checks the
        // count, then wakes the rest. Each wakee grabs a rank from word 1 and
        // records it, so FIFO wake order is directly observable.
        let report = bus(4)
            .run(4, 6, |p| {
                if p.pid() == 0 {
                    p.delay(2000); // let all three waiters park first
                    assert_eq!(p.futex_wake(0, 2), 2);
                    p.delay(2000);
                    assert_eq!(p.futex_wake(0, 2), 1, "only one waiter left");
                } else {
                    p.delay(p.pid() as u64 * 10); // park order = pid order
                    p.futex_wait(0, 0);
                    let rank = p.fetch_add(1, 1);
                    p.store(2 + p.pid(), rank + 1);
                }
            })
            .unwrap();
        assert_eq!(report.metrics.futex_parks(), 3);
        // Park order was pid 1, 2, 3; wake order (and thus rank) must match.
        assert_eq!(&report.memory[3..6], &[1, 2, 3]);
    }

    #[test]
    fn all_parked_with_no_waker_is_lost_wakeup() {
        let err = bus(2)
            .run(2, 1, |p| {
                p.futex_wait(0, 0); // nobody will ever wake us
            })
            .unwrap_err();
        match err {
            SimError::LostWakeup { parked } => {
                assert_eq!(parked, vec![(0, 0, 0), (1, 0, 0)]);
            }
            other => panic!("expected lost wakeup, got {other:?}"),
        }
    }

    #[test]
    fn mixed_spin_and_park_blockage_is_deadlock() {
        let err = bus(2)
            .run(2, 2, |p| {
                if p.pid() == 0 {
                    p.spin_until(0, 1);
                } else {
                    p.futex_wait(1, 0);
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    fn oversub(nprocs: usize, cores: usize) -> Machine {
        let mut params = MachineParams::bus_1991(nprocs);
        params.sched = Some(crate::params::SchedParams::oversub_1991(cores));
        params.max_cycles = 50_000_000;
        Machine::new(params)
    }

    #[test]
    fn oversubscribed_counter_is_atomic_and_pays_ctx_switches() {
        let report = oversub(8, 2)
            .run(8, 1, |p| {
                for _ in 0..25 {
                    p.fetch_add(0, 1);
                }
            })
            .unwrap();
        assert_eq!(report.memory[0], 200);
        // All eight processors had to be placed on a core at least once.
        for m in &report.metrics.per_proc {
            assert!(m.ctx_switches >= 1);
        }
    }

    #[test]
    fn oversubscribed_spin_polls_to_completion() {
        // The signal crosses a spin wait even when threads outnumber cores
        // and the spinner holds a core the signaller needs.
        let report = oversub(3, 1)
            .run(3, 2, |p| {
                if p.pid() == 0 {
                    p.spin_until(0, 2);
                    p.store(1, 7);
                } else {
                    p.delay(500);
                    p.fetch_add(0, 1);
                }
            })
            .unwrap();
        assert_eq!(report.memory[1], 7);
        // The spinner burned cycles polling, not sleeping on a watchpoint.
        assert!(report.metrics.per_proc[0].spin_wait_cycles > 0);
        assert_eq!(report.metrics.per_proc[0].wakeups, 0);
    }

    #[test]
    fn oversubscribed_park_frees_the_core_and_run_is_deterministic() {
        let go = || {
            oversub(4, 1)
                .run(4, 2, |p| {
                    if p.pid() == 0 {
                        p.delay(5_000);
                        p.store(0, 1);
                        p.futex_wake(0, usize::MAX);
                    } else {
                        let mut cur = p.load(0);
                        while cur == 0 {
                            cur = p.futex_wait(0, 0);
                            if cur == 0 {
                                cur = p.load(0);
                            }
                        }
                        p.fetch_add(1, 1);
                    }
                })
                .unwrap()
        };
        let a = go();
        assert_eq!(a.memory[1], 3);
        // With one core and three sleepers, the storer could only make
        // progress because parked processors yield the core.
        assert!(a.metrics.futex_parks() >= 1);
        let b = go();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.memory, b.memory);
    }

    #[test]
    fn oversubscribed_unsatisfiable_spin_hits_time_limit() {
        // Under the scheduler, spinners poll instead of sleeping on a
        // watchpoint, so an unsatisfiable spin burns simulated time until
        // the limit instead of reporting a deadlock.
        let mut params = MachineParams::bus_1991(2);
        params.sched = Some(crate::params::SchedParams::oversub_1991(1));
        params.max_cycles = 10_000;
        let err = Machine::new(params)
            .run(2, 1, |p| {
                if p.pid() == 0 {
                    p.spin_until(0, 1);
                }
            })
            .unwrap_err();
        assert_eq!(err, SimError::TimeLimit { limit: 10_000 });
    }

    #[test]
    fn recorded_run_matches_plain_and_resumes_from_every_snapshot() {
        let machine = bus(4);
        let plain = machine.run(4, 2, park_then_spin).unwrap();
        let rec = machine
            .run_recorded(4, vec![0; 2], 100, park_then_spin)
            .unwrap();
        assert_eq!(rec.report().metrics, plain.metrics);
        assert_eq!(rec.report().memory, plain.memory);
        assert!(rec.fragments() >= 2, "one fragment only: K too large");
        // Snapshot/restore round-trip: resuming from any boundary and
        // running to completion reproduces the uninterrupted run exactly.
        for i in 0..rec.fragments() {
            let resumed = rec.resume(i);
            assert_eq!(resumed.metrics, plain.metrics, "resume from snapshot {i}");
            assert_eq!(resumed.memory, plain.memory, "resume from snapshot {i}");
        }
    }

    #[test]
    fn fragment_replay_is_byte_identical_at_any_worker_count() {
        let machine = bus(8);
        let body = |p: &mut Proc| {
            for i in 0..50 {
                p.fetch_add(0, 1);
                p.delay((p.pid() as u64 * 7 + i) % 13);
            }
        };
        let plain = machine.run(8, 1, body).unwrap();
        let rec = machine.run_recorded(8, vec![0], 200, body).unwrap();
        assert!(rec.fragments() >= 4, "want several fragments to spread");
        for workers in [1, 2, 8] {
            let rep = crate::replay::FragmentReplayer::new(&rec, workers).run();
            assert_eq!(rep.metrics, plain.metrics, "{workers} workers");
            assert_eq!(rep.memory, plain.memory, "{workers} workers");
        }
    }

    #[test]
    fn fragment_replay_covers_the_oversubscribed_scheduler() {
        // The scheduler's ready queue, core allocator, and quantum clocks
        // all live in the snapshot; an oversubscribed futex workload is the
        // worst case for restore fidelity.
        let machine = oversub(6, 2);
        let plain = machine.run(6, 2, park_then_spin).unwrap();
        let rec = machine
            .run_recorded(6, vec![0; 2], 500, park_then_spin)
            .unwrap();
        assert_eq!(rec.report().metrics, plain.metrics);
        for i in 0..rec.fragments() {
            assert_eq!(rec.resume(i).metrics, plain.metrics, "snapshot {i}");
        }
        let rep = crate::replay::FragmentReplayer::new(&rec, 4).run();
        assert_eq!(rep.metrics, plain.metrics);
        assert_eq!(rep.memory, plain.memory);
    }

    #[test]
    fn run_fragmented_routes_to_the_same_report() {
        let machine = bus(4);
        let plain = machine.run(4, 2, park_then_spin).unwrap();
        let frag = machine
            .run_fragmented(4, vec![0; 2], 150, 2, park_then_spin)
            .unwrap();
        assert_eq!(frag.metrics, plain.metrics);
        assert_eq!(frag.memory, plain.memory);
    }

    #[test]
    fn recorded_run_propagates_errors_without_a_recording() {
        let err = bus(2)
            .run_recorded(2, vec![0], 100, |p| {
                p.spin_until(0, 1); // nobody ever stores 1
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn private_pool_reuses_workers_across_runs() {
        let pool = Pool::new();
        let machine = bus(4);
        let go = |pool: &Pool| {
            machine
                .run_on_pool(pool, 4, vec![0], |p| {
                    for _ in 0..10 {
                        p.fetch_add(0, 1);
                    }
                })
                .unwrap()
        };
        let first = go(&pool);
        // pid 0 rides the caller thread: only nprocs - 1 workers leased.
        assert_eq!(pool.stats().spawned, 3);
        for i in 1..=5 {
            let again = go(&pool);
            assert_eq!(again.metrics, first.metrics, "pooled run {i} diverged");
            assert_eq!(pool.stats().spawned, 3, "run {i} spawned fresh threads");
        }
        assert_eq!(pool.stats().reused, 15);
    }
}
