//! Machine configuration.
//!
//! The parameters mirror the knobs 1991-era simulation studies report: cache
//! geometry, the relative cost of a cache hit versus an interconnect
//! transaction, and the interconnect topology. Absolute values follow the
//! conventional ratios of the period (hit = 1 cycle, bus transaction ≈ 20,
//! remote NUMA reference ≈ 2–4× a local one); the reproduction targets curve
//! *shapes*, which are insensitive to modest changes in these constants —
//! `fig7`'s ablation run demonstrates that.

/// Interconnect topology of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A single split-transaction bus with FIFO arbitration (Sequent
    /// Symmetry class). Every miss, upgrade, and remote RMW occupies the bus.
    Bus,
    /// A distributed machine with one memory module per node and a
    /// point-to-point network (BBN Butterfly class). Lines are interleaved
    /// across modules; processors are assigned to nodes round-robin.
    Numa {
        /// Number of nodes (= memory modules). Must be nonzero.
        nodes: usize,
    },
}

/// Processor scheduler for oversubscribed runs (more simulated threads than
/// cores). When [`MachineParams::sched`] is `Some`, the machine multiplexes
/// its P logical processors onto `cores` execution slots with round-robin
/// quanta, and the futex operations ([`crate::Proc::futex_wait`] /
/// [`crate::Proc::futex_wake`]) interact with the scheduler: a parked
/// processor yields its core immediately, and a wake re-enters it through the
/// ready queue.
///
/// Spin waits change meaning under the scheduler: instead of sleeping on a
/// zero-cost watchpoint, a spinning processor *polls* — it re-probes its word
/// every `spin_poll_cycles` and keeps its core busy the whole time, so it can
/// be preempted at quantum boundaries like any other processor. That is the
/// behavior that makes pure spinning collapse past 1× threads/core (`fig9`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedParams {
    /// Execution slots the logical processors are multiplexed onto.
    pub cores: usize,
    /// Cycles a processor may occupy a core before it can be preempted.
    /// Preemption only happens when another processor is waiting for a core.
    pub quantum: u64,
    /// Cycles charged each time a processor is placed on a core.
    pub ctx_switch_cycles: u64,
    /// Cycles the waker pays per processor woken by a futex wake — the
    /// modeled remote write into the wakee's parker state.
    pub wake_cycles: u64,
    /// Interval between spin-wait re-probes while busy-polling on a core.
    pub spin_poll_cycles: u64,
}

impl SchedParams {
    /// Scheduler costs consistent with the 1991-era machine ratios: a quantum
    /// spans tens of bus transactions, a context switch costs a few of them,
    /// and a wake costs about one remote write.
    pub fn oversub_1991(cores: usize) -> Self {
        SchedParams {
            cores,
            quantum: 400,
            ctx_switch_cycles: 60,
            wake_cycles: 30,
            spin_poll_cycles: 20,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineParams {
    /// Interconnect topology.
    pub topology: Topology,
    /// Words per cache line (power of two). Synchronization variables that the
    /// kernels intend to keep apart are padded to this granularity.
    pub line_words: usize,
    /// Lines per private cache. Tiny synchronization working sets never
    /// approach this, but capacity evictions are modeled (LRU) for fidelity.
    pub cache_lines: usize,
    /// Cost of an access that hits in the private cache.
    pub hit_cycles: u64,
    /// Occupancy of one bus transaction (miss fill, upgrade, remote RMW) on
    /// the [`Topology::Bus`] machine. Transactions serialize.
    pub bus_cycles: u64,
    /// Service time of a memory module on the [`Topology::Numa`] machine.
    /// Requests to the same module serialize.
    pub mem_cycles: u64,
    /// One-way network traversal cost between distinct NUMA nodes; a remote
    /// reference pays two (request + reply).
    pub hop_cycles: u64,
    /// Additional cost charged per remote sharer that must be invalidated on
    /// a write/upgrade (directory fan-out on NUMA; snoop response on the bus).
    pub inv_cycles: u64,
    /// Extra cost of an atomic read-modify-write over a plain access when the
    /// line is already owned exclusively.
    pub rmw_extra_cycles: u64,
    /// Hard cap on simulated time; exceeded ⇒ [`crate::SimError::TimeLimit`].
    pub max_cycles: u64,
    /// Oversubscription scheduler. `None` (the presets' default) gives every
    /// logical processor its own core — the classic dedicated-processor
    /// regime every pre-existing figure runs in.
    pub sched: Option<SchedParams>,
}

impl MachineParams {
    /// Bus-based cache-coherent multiprocessor with 1991-era cost ratios,
    /// sized for `nprocs` processors.
    pub fn bus_1991(nprocs: usize) -> Self {
        let _ = nprocs; // geometry below is independent of P; kept for symmetry
        MachineParams {
            topology: Topology::Bus,
            line_words: 8,
            cache_lines: 1024,
            hit_cycles: 1,
            bus_cycles: 20,
            mem_cycles: 0,
            hop_cycles: 0,
            inv_cycles: 2,
            rmw_extra_cycles: 3,
            max_cycles: u64::MAX / 4,
            sched: None,
        }
    }

    /// Distributed NUMA multiprocessor with 1991-era cost ratios: one node
    /// per four processors (minimum two nodes), remote reference ≈ 3–4× local.
    pub fn numa_1991(nprocs: usize) -> Self {
        MachineParams {
            topology: Topology::Numa {
                nodes: (nprocs.div_ceil(4)).max(2),
            },
            line_words: 8,
            cache_lines: 1024,
            hit_cycles: 1,
            bus_cycles: 0,
            mem_cycles: 12,
            hop_cycles: 10,
            inv_cycles: 4,
            rmw_extra_cycles: 3,
            max_cycles: u64::MAX / 4,
            sched: None,
        }
    }

    /// Index of the cache line containing a word address.
    pub fn line_of(&self, addr: usize) -> usize {
        addr / self.line_words
    }

    /// Home node of a line under the NUMA interleaving (always 0 on a bus).
    ///
    /// Lines are *hash*-interleaved across modules rather than taken modulo
    /// the node count: modular interleaving resonates with the strided flag
    /// layouts of the tree/dissemination barriers (e.g. a stride of 12 lines
    /// against 12 modules puts every processor's round-r flag on one module),
    /// turning a layout accident into a synthetic hot spot. Hardware of the
    /// era scrambled interleave bits for exactly this reason.
    pub fn home_node(&self, line: usize) -> usize {
        match self.topology {
            Topology::Bus => 0,
            Topology::Numa { nodes } => {
                let h = (line as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 33) % nodes as u64) as usize
            }
        }
    }

    /// Node a processor resides on (always 0 on a bus).
    pub fn node_of_proc(&self, pid: usize) -> usize {
        match self.topology {
            Topology::Bus => 0,
            Topology::Numa { nodes } => pid % nodes,
        }
    }

    /// Validates internal consistency; called by the machine constructor.
    pub fn validate(&self) {
        assert!(self.line_words.is_power_of_two(), "line_words must be a power of two");
        assert!(self.cache_lines > 0, "cache must have at least one line");
        if let Topology::Numa { nodes } = self.topology {
            assert!(nodes > 0, "NUMA machine needs at least one node");
        }
        if let Some(sched) = &self.sched {
            assert!(sched.cores > 0, "scheduler needs at least one core");
            assert!(sched.quantum > 0, "scheduler quantum must be nonzero");
            assert!(sched.spin_poll_cycles > 0, "spin poll interval must be nonzero");
        }
    }

    /// Flat cost charged per woken processor on a futex wake: the scheduler's
    /// `wake_cycles` when configured, otherwise roughly one remote write on
    /// the machine's interconnect.
    pub fn wake_cycles(&self) -> u64 {
        if let Some(sched) = &self.sched {
            return sched.wake_cycles;
        }
        match self.topology {
            Topology::Bus => self.bus_cycles + self.inv_cycles,
            Topology::Numa { .. } => self.mem_cycles + 2 * self.hop_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineParams::bus_1991(16).validate();
        MachineParams::numa_1991(16).validate();
    }

    #[test]
    fn numa_nodes_scale_with_procs() {
        let p = MachineParams::numa_1991(32);
        assert_eq!(p.topology, Topology::Numa { nodes: 8 });
        let small = MachineParams::numa_1991(2);
        assert_eq!(small.topology, Topology::Numa { nodes: 2 });
    }

    #[test]
    fn line_mapping() {
        let p = MachineParams::bus_1991(4);
        assert_eq!(p.line_of(0), 0);
        assert_eq!(p.line_of(7), 0);
        assert_eq!(p.line_of(8), 1);
    }

    #[test]
    fn bus_homes_everything_on_node_zero() {
        let p = MachineParams::bus_1991(4);
        assert_eq!(p.home_node(17), 0);
        assert_eq!(p.node_of_proc(3), 0);
    }

    #[test]
    fn numa_interleaves_lines_and_procs() {
        let p = MachineParams::numa_1991(16); // 4 nodes
        // Hash interleaving: homes are stable, in range, and balanced —
        // and crucially, strided line sequences do not collapse onto one
        // module (the resonance the hash exists to kill).
        let mut per_node = vec![0usize; 4];
        for line in 0..400 {
            let home = p.home_node(line);
            assert!(home < 4);
            assert_eq!(home, p.home_node(line), "home must be stable");
            per_node[home] += 1;
        }
        assert!(per_node.iter().all(|&c| c > 50), "imbalanced: {per_node:?}");
        // Strided accesses (the dissemination layout) stay spread out.
        let mut strided = std::collections::HashSet::new();
        for k in 0..12 {
            strided.insert(p.home_node(k * 12));
        }
        assert!(strided.len() >= 3, "stride-12 resonance: {strided:?}");
        assert_eq!(p.node_of_proc(0), 0);
        assert_eq!(p.node_of_proc(1), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_words_rejected() {
        let mut p = MachineParams::bus_1991(2);
        p.line_words = 3;
        p.validate();
    }

    #[test]
    fn sched_preset_validates_and_sets_wake_cost() {
        let mut p = MachineParams::bus_1991(8);
        assert_eq!(p.wake_cycles(), p.bus_cycles + p.inv_cycles);
        p.sched = Some(SchedParams::oversub_1991(4));
        p.validate();
        assert_eq!(p.wake_cycles(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_scheduler_rejected() {
        let mut p = MachineParams::bus_1991(2);
        p.sched = Some(SchedParams { cores: 0, ..SchedParams::oversub_1991(1) });
        p.validate();
    }
}
