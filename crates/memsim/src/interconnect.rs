//! Interconnect timing models.
//!
//! Both models expose one operation: *perform a coherence transaction issued
//! at time `t` by a processor on node `src` against the home of a line on
//! node `home`, with `extra` cycles of protocol work (invalidation fan-out,
//! RMW), and return when it completes*. Contention is what distinguishes the
//! machines:
//!
//! * **Bus** — one global FIFO resource; every transaction occupies it fully.
//!   Queuing delay at the bus is what makes test-and-set collapse as P grows.
//! * **NUMA** — one FIFO memory module per node plus per-hop network latency.
//!   A hot synchronization variable saturates *its* module while the rest of
//!   the machine stays idle — the "hot-spot" phenomenon of Butterfly studies.

use crate::params::MachineParams;
use crate::Topology;

/// Shared-resource timing state for the configured topology.
#[derive(Debug, Clone)]
pub enum Interconnect {
    /// Single bus; the field is the time the bus next becomes free.
    Bus {
        /// End of the latest scheduled transaction.
        free_at: u64,
        /// Bus occupancy per transaction.
        occupancy: u64,
    },
    /// Per-node memory modules and a point-to-point network.
    Numa {
        /// Per-module next-free times.
        module_free_at: Vec<u64>,
        /// Module service time.
        service: u64,
        /// One-way hop latency.
        hop: u64,
    },
}

impl Interconnect {
    /// Builds the model described by `params`.
    pub fn new(params: &MachineParams) -> Self {
        match params.topology {
            Topology::Bus => Interconnect::Bus {
                free_at: 0,
                occupancy: params.bus_cycles,
            },
            Topology::Numa { nodes } => Interconnect::Numa {
                module_free_at: vec![0; nodes],
                service: params.mem_cycles,
                hop: params.hop_cycles,
            },
        }
    }

    /// Schedules one transaction and returns its completion time.
    ///
    /// `extra` models protocol work serialized with the transaction
    /// (invalidation fan-out, atomic RMW execution at the memory).
    pub fn transaction(&mut self, issue: u64, src_node: usize, home_node: usize, extra: u64) -> u64 {
        match self {
            Interconnect::Bus { free_at, occupancy } => {
                let start = issue.max(*free_at);
                let done = start + *occupancy + extra;
                *free_at = done;
                done
            }
            Interconnect::Numa {
                module_free_at,
                service,
                hop,
            } => {
                let remote = src_node != home_node;
                let request_hop = if remote { *hop } else { 0 };
                let arrival = issue + request_hop;
                let module = &mut module_free_at[home_node];
                let start = arrival.max(*module);
                let served = start + *service + extra;
                *module = served;
                served + request_hop // reply traverses the network back
            }
        }
    }

    /// Completion time of a hypothetical transaction without scheduling it;
    /// used for diagnostics only.
    pub fn peek(&self, issue: u64, src_node: usize, home_node: usize, extra: u64) -> u64 {
        self.clone().transaction(issue, src_node, home_node, extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Interconnect {
        Interconnect::Bus {
            free_at: 0,
            occupancy: 20,
        }
    }

    fn numa(nodes: usize) -> Interconnect {
        Interconnect::Numa {
            module_free_at: vec![0; nodes],
            service: 12,
            hop: 10,
        }
    }

    #[test]
    fn bus_uncontended_cost() {
        let mut b = bus();
        assert_eq!(b.transaction(100, 0, 0, 0), 120);
    }

    #[test]
    fn bus_serializes_concurrent_requests() {
        let mut b = bus();
        let t1 = b.transaction(0, 0, 0, 0);
        let t2 = b.transaction(0, 0, 0, 0);
        let t3 = b.transaction(5, 0, 0, 0);
        assert_eq!(t1, 20);
        assert_eq!(t2, 40); // queued behind t1
        assert_eq!(t3, 60); // queued behind t2 despite later issue
    }

    #[test]
    fn bus_idle_gap_not_charged() {
        let mut b = bus();
        b.transaction(0, 0, 0, 0); // bus free at 20
        assert_eq!(b.transaction(1000, 0, 0, 0), 1020);
    }

    #[test]
    fn bus_extra_extends_occupancy() {
        let mut b = bus();
        assert_eq!(b.transaction(0, 0, 0, 7), 27);
        assert_eq!(b.transaction(0, 0, 0, 0), 47);
    }

    #[test]
    fn numa_local_vs_remote() {
        let mut n = numa(2);
        // Local: service only.
        assert_eq!(n.transaction(0, 0, 0, 0), 12);
        // Remote: hop + service + hop, queued behind the first at module 0.
        let mut n2 = numa(2);
        assert_eq!(n2.transaction(0, 1, 0, 0), 10 + 12 + 10);
    }

    #[test]
    fn numa_modules_are_independent() {
        let mut n = numa(2);
        let a = n.transaction(0, 0, 0, 0);
        let b = n.transaction(0, 1, 1, 0);
        // Different modules: no queuing between them.
        assert_eq!(a, 12);
        assert_eq!(b, 12);
    }

    #[test]
    fn numa_hot_module_queues() {
        let mut n = numa(2);
        let a = n.transaction(0, 0, 0, 0);
        let b = n.transaction(0, 1, 0, 0);
        assert_eq!(a, 12);
        // Remote arrives at 10, waits until 12, served to 24, reply +10.
        assert_eq!(b, 34);
    }

    #[test]
    fn peek_does_not_commit() {
        let mut b = bus();
        let peeked = b.peek(0, 0, 0, 0);
        let real = b.transaction(0, 0, 0, 0);
        assert_eq!(peeked, real);
        // The peek must not have occupied the bus.
        assert_eq!(b.transaction(0, 0, 0, 0), 40);
    }
}
